"""Ablation: the October-2011 API changes the paper highlights.

The paper motivates its re-measurement by API changes since Hill et al.
(2010): the message ceiling grew from 8 KB to 64 KB and the queue-message
expiry from 2 hours to 7 days ("Some of the earlier restrictions … such as
expiration of a message in Queue storage after 2 hours, rendered Azure
platform problematic for long-running real-world scientific applications").

This bench quantifies both on the two era configurations:

* which rungs of the 4-64 KB message ladder each era accepts;
* how many of a long-running job's pending tasks survive a 3-hour run.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import FigureData
from repro.storage import (
    KB,
    LIMITS_2010,
    LIMITS_2012,
    ManualClock,
    MessageTooLargeError,
    StorageAccountState,
)
from repro.storage.content import SyntheticContent


def run_api_era_ablation():
    sizes = [4 * KB, 8 * KB, 16 * KB, 32 * KB, 48 * KB]
    eras = [("2010 API", LIMITS_2010), ("2012 API", LIMITS_2012)]

    accepted = FigureData(
        "Ablation A1", "Message-size ladder acceptance by API era",
        "payload", [f"{s // KB} KB" for s in sizes])
    survival = FigureData(
        "Ablation A2", "Pending tasks surviving a long run (100 enqueued)",
        "hours elapsed", [0.5, 1.0, 1.5, 2.0, 2.5, 3.0])

    for era_name, limits in eras:
        ok = []
        for size in sizes:
            clock = ManualClock()
            account = StorageAccountState("ablation", clock, limits)
            q = account.queues.create_queue("tasks")
            try:
                q.put_message(SyntheticContent(size, seed=1))
                ok.append(1.0)
            except MessageTooLargeError:
                ok.append(0.0)
        accepted.add(era_name, ok, unit="1=accepted")

        clock = ManualClock()
        account = StorageAccountState("ablation", clock, limits)
        q = account.queues.create_queue("tasks")
        for i in range(100):
            q.put_message(f"task-{i}")
        remaining = []
        for _ in survival.x_values:
            clock.advance(0.5 * 3600)
            remaining.append(float(q.approximate_message_count()))
        survival.add(era_name, remaining, unit="tasks")

    return accepted, survival


def test_ablation_api_era(benchmark):
    accepted, survival = benchmark.pedantic(
        run_api_era_ablation, rounds=1, iterations=1)
    emit(accepted)
    emit(survival)

    # 2010 era rejects everything above its 6 KB usable payload.
    assert accepted.get("2010 API").values == [1.0, 0.0, 0.0, 0.0, 0.0]
    # 2012 era accepts the full ladder up to the 48 KB usable maximum.
    assert accepted.get("2012 API").values == [1.0] * 5

    # 2010 era: every pending task evaporates at the 2-hour mark.
    v2010 = survival.get("2010 API").values
    assert v2010[2] == 100.0 and v2010[3] == 0.0, v2010
    # 2012 era: all tasks survive the full 3 hours (7-day TTL).
    assert survival.get("2012 API").values == [100.0] * 6
