"""Ablation: riding through a storage outage with the paper's retry discipline.

The 2012 storage SLA promised 99.9% monthly availability — outages
happened.  The paper's framework survives them for free: workers already
sleep-and-retry on ServerBusy, and undelivered queue messages simply wait.
This bench injects a queue-service outage into a bag-of-tasks run and
measures the completion-time penalty and the observed availability (via
Storage Analytics).
"""

from __future__ import annotations

import os

from conftest import emit

from repro.bench import FigureData
from repro.cluster import Service
from repro.compute import Fabric
from repro.framework import TaskPoolApp, TaskPoolConfig
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage.analytics import attach_analytics

TASKS = 24
WORK_S = 0.5


def _handler(ctx, payload):
    yield ctx.sleep(WORK_S)
    return payload


def _run(outage_seconds):
    env = Environment()
    account = SimStorageAccount(env, seed=31)
    log, metrics = attach_analytics(account.cluster)
    if outage_seconds > 0:
        account.cluster.inject_outage(Service.QUEUE, start=5.0,
                                      duration=outage_seconds)
    fabric = Fabric(env, account)
    app = TaskPoolApp(
        TaskPoolConfig(name="ha", visibility_timeout=60.0,
                       idle_poll_interval=0.5),
        _handler)
    tasks = [f"t{i}".encode() for i in range(TASKS)]

    # The framework retries every queue op with the paper's 1-second
    # back-off, so the outage only delays the run.
    fabric.deploy(app.web_role_body(tasks, poll_interval=0.5),
                  instances=1, name="web")
    fabric.deploy(app.worker_role_body(), instances=4, name="workers")
    fabric.run_all()
    queue_metrics = metrics.service_totals("queue")
    return env.now, queue_metrics.availability, len(app.results)


def run_availability_ablation():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    outages = [0.0, 10.0, 30.0, 60.0] if full else [0.0, 10.0, 30.0]
    fig = FigureData(
        "Ablation H1",
        f"Bag-of-tasks run ({TASKS} tasks, 4 workers) through a queue outage",
        "outage seconds", outages)
    times, avail, done = [], [], []
    for seconds in outages:
        t, a, n = _run(seconds)
        times.append(t)
        avail.append(a)
        done.append(float(n))
    fig.add("completion time", times, unit="s")
    fig.add("queue availability", avail)
    fig.add("results collected", done)
    return fig


def test_ablation_availability(benchmark):
    fig = benchmark.pedantic(run_availability_ablation, rounds=1, iterations=1)
    emit(fig)

    times = fig.get("completion time").values
    avail = fig.get("queue availability").values
    done = fig.get("results collected").values

    # No tasks are ever lost, outage or not.
    assert all(d == TASKS for d in done), done
    # Longer outages delay completion monotonically...
    assert times == sorted(times)
    assert times[-1] > times[0] + 0.8 * fig.x_values[-1]
    # ...and show up as reduced availability in the analytics.
    assert avail[0] == 1.0
    assert all(a < 1.0 for a in avail[1:])
