"""Ablation: cost of the queue-based barrier (Algorithm 2).

The paper excludes synchronization time from every reported number ("The
time reported in the experiments does not include the time spent in
synchronization").  This bench measures what was excluded: the per-crossing
cost of the queue barrier as the fleet grows, which is dominated by the
1-second count-polling back-off.
"""

from __future__ import annotations

import os

from conftest import emit

from repro.bench import FigureData
from repro.compute import Deployment
from repro.framework import QueueBarrier
from repro.sim import SimStorageAccount
from repro.simkit import Environment

CROSSINGS = 5


def _barrier_worker(env, account, wid, workers, out):
    qc = account.queue_client()
    barrier = QueueBarrier(qc, "barrier", workers, env=env)
    yield from barrier.ensure_queue()
    # Stagger arrivals a little, like real phase finishes.
    yield env.timeout(0.01 * wid)
    for _ in range(CROSSINGS):
        yield from barrier.wait()
    out.append(barrier.time_in_barrier / CROSSINGS)


def run_barrier_ablation():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    worker_counts = [1, 2, 4, 8, 16, 32, 64, 96] if full else [1, 2, 4, 8, 16]
    fig = FigureData(
        "Ablation B1", f"Queue-barrier cost (mean of {CROSSINGS} crossings)",
        "workers", worker_counts)
    means, maxes = [], []
    for workers in worker_counts:
        env = Environment()
        account = SimStorageAccount(env, seed=7)
        out = []
        for w in range(workers):
            env.process(_barrier_worker(env, account, w, workers, out))
        env.run()
        means.append(sum(out) / len(out))
        maxes.append(max(out))
    fig.add("mean crossing", means, unit="s")
    fig.add("max crossing", maxes, unit="s")
    return fig


def test_ablation_barrier_cost(benchmark):
    fig = benchmark.pedantic(run_barrier_ablation, rounds=1, iterations=1)
    emit(fig)

    means = fig.get("mean crossing").values
    # Barrier cost grows with the fleet (more stragglers, more polling)...
    assert means[-1] > means[0], means
    # ...reaching at least one poll interval once arrivals spread out...
    assert means[-1] >= 0.5, means
    # ...but stays mild — nowhere near linear in the worker count, because
    # the 1 s polling back-off, not queue contention, dominates.
    assert means[-1] < 0.5 * fig.x_values[-1], means
