"""Ablation: the caching service vs direct Blob reads.

The paper (II.B) mentions "a caching service to temporarily hold data in
memory across different servers" and defers studying it to future work
(Section V).  This bench quantifies the deferred comparison: N workers
repeatedly read a hot 1 MB object either straight from Blob storage or
through a cache-aside layer on the caching service.
"""

from __future__ import annotations

import os

from conftest import emit

from repro.bench import FigureData
from repro.sim import SimStorageAccount
from repro.simkit import AllOf, Environment
from repro.storage import MB, random_content

HOT_OBJECT_BYTES = 1 * MB
READS_PER_WORKER = 20


def _reader_direct(env, account, wid):
    blob = account.blob_client()
    for _ in range(READS_PER_WORKER):
        yield from blob.download_block_blob("hot", "object")


def _reader_cached(env, account, wid):
    blob = account.blob_client()
    cache = account.cache_client()
    for _ in range(READS_PER_WORKER):
        value = yield from cache.get("hotcache", "object")
        if value is None:  # miss -> fetch from blob, then populate
            value = yield from blob.download_block_blob("hot", "object")
            yield from cache.put("hotcache", "object", value, ttl=3600)


def _run(reader, workers):
    env = Environment()
    account = SimStorageAccount(env, seed=17)

    def setup():
        blob = account.blob_client()
        cache = account.cache_client()
        yield from blob.create_container("hot")
        yield from blob.upload_blob("hot", "object",
                                    random_content(HOT_OBJECT_BYTES, seed=1))
        yield from cache.create_cache("hotcache", capacity_bytes=16 * MB)

    env.process(setup())
    env.run()
    t0 = env.now
    procs = [env.process(reader(env, account, w)) for w in range(workers)]
    env.run(until=AllOf(env, procs))
    elapsed = env.now - t0
    stats = account.cache_state.get_cache("hotcache").stats
    return elapsed, stats


def run_cache_ablation():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    worker_counts = [1, 4, 16, 48, 96] if full else [1, 4, 16, 32]
    fig = FigureData(
        "Ablation C1",
        f"Hot-object reads ({READS_PER_WORKER} x 1 MB per worker): "
        "Blob direct vs cache-aside", "workers", worker_counts)
    direct, cached, hit_rates = [], [], []
    for workers in worker_counts:
        d, _ = _run(_reader_direct, workers)
        c, stats = _run(_reader_cached, workers)
        direct.append(d)
        cached.append(c)
        hit_rates.append(stats.hit_rate)
    fig.add("blob direct", direct, unit="s")
    fig.add("cache-aside", cached, unit="s")
    fig.add("cache hit rate", hit_rates)
    return fig


def test_ablation_cache(benchmark):
    fig = benchmark.pedantic(run_cache_ablation, rounds=1, iterations=1)
    emit(fig)

    direct = fig.get("blob direct").values
    cached = fig.get("cache-aside").values
    hits = fig.get("cache hit rate").values

    # The cache wins at every scale and the gap widens with contention (the
    # hot blob is a single partition; the cache server is 16-way and fast).
    assert all(c < d for c, d in zip(cached, direct))
    assert cached[-1] < direct[-1] / 3
    # Nearly every read after the first is a hit.
    assert hits[-1] > 0.9
