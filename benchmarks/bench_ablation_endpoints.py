"""Ablation: direct TCP endpoints vs queue-mediated role communication.

The paper (Section III): "TCP messages can be sent/received among Azure
roles or can be used for communication with external services - these
messages are not currently studied in this paper."

This bench studies them: N worker pairs exchange request/reply messages
either through Queue storage (the paper's recommended coordination channel,
durable and fault-tolerant) or over direct TCP endpoints (fast, but no
durability).  The expected result — endpoints are an order of magnitude
faster, queues buy persistence — quantifies the trade-off the paper's
framework makes.
"""

from __future__ import annotations

import os

from conftest import emit

from repro.bench import FigureData
from repro.compute import EndpointRegistry
from repro.sim import SimStorageAccount
from repro.simkit import AllOf, Environment
from repro.storage import KB, random_content

MESSAGE_BYTES = 8 * KB
ROUND_TRIPS = 25


def _queue_pair(env, account, pair):
    """Request/reply over two queues (one per direction)."""
    qc = account.queue_client()
    req_q = f"req-{pair}"
    rep_q = f"rep-{pair}"

    def client():
        yield from qc.create_queue(req_q)
        yield from qc.create_queue(rep_q)
        payload = random_content(MESSAGE_BYTES, seed=pair)
        for _ in range(ROUND_TRIPS):
            yield from qc.put_message(req_q, payload)
            while True:
                msg = yield from qc.get_message(rep_q, visibility_timeout=60)
                if msg is not None:
                    break
                yield env.timeout(0.05)
            yield from qc.delete_message(rep_q, msg.message_id, msg.pop_receipt)

    def server():
        yield from qc.create_queue(req_q)
        yield from qc.create_queue(rep_q)
        served = 0
        while served < ROUND_TRIPS:
            msg = yield from qc.get_message(req_q, visibility_timeout=60)
            if msg is None:
                yield env.timeout(0.05)
                continue
            yield from qc.delete_message(req_q, msg.message_id, msg.pop_receipt)
            yield from qc.put_message(rep_q, msg.content)
            served += 1

    return client, server


def _endpoint_pair(env, registry, pair):
    """Request/reply over direct TCP endpoints."""
    client_ep = registry.register(f"client-{pair}")
    server_ep = registry.register(f"server-{pair}")
    payload = bytes(MESSAGE_BYTES)

    def client():
        for _ in range(ROUND_TRIPS):
            yield from registry.send(f"client-{pair}", f"server-{pair}", payload)
            yield from client_ep.recv()

    def server():
        for _ in range(ROUND_TRIPS):
            msg = yield from server_ep.recv()
            yield from registry.send(f"server-{pair}", f"client-{pair}",
                                     msg.payload)

    return client, server


def _run(kind, pairs):
    env = Environment()
    account = SimStorageAccount(env, seed=23)
    registry = EndpointRegistry(env, seed=23)
    procs = []
    for pair in range(pairs):
        if kind == "queue":
            client, server = _queue_pair(env, account, pair)
        else:
            client, server = _endpoint_pair(env, registry, pair)
        procs.append(env.process(client()))
        procs.append(env.process(server()))
    env.run(until=AllOf(env, procs))
    return env.now


def run_endpoints_ablation():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    pair_counts = [1, 4, 16, 48] if full else [1, 4, 16]
    fig = FigureData(
        "Ablation E1",
        f"{ROUND_TRIPS} request/reply round trips per role pair "
        f"({MESSAGE_BYTES // KB} KB messages)", "role pairs", pair_counts)
    fig.add("via Queue storage", [_run("queue", p) for p in pair_counts],
            unit="s")
    fig.add("via TCP endpoints", [_run("tcp", p) for p in pair_counts],
            unit="s")
    return fig


def test_ablation_endpoints(benchmark):
    fig = benchmark.pedantic(run_endpoints_ablation, rounds=1, iterations=1)
    emit(fig)

    queue_t = fig.get("via Queue storage").values
    tcp_t = fig.get("via TCP endpoints").values

    # Direct endpoints are at least an order of magnitude faster...
    assert all(t * 10 < q for t, q in zip(tcp_t, queue_t)), (tcp_t, queue_t)
    # ...and both channels scale with independent pairs (queues are
    # partitioned per pair; endpoints are point-to-point).
    assert queue_t[-1] < queue_t[0] * 3
    assert tcp_t[-1] < tcp_t[0] * 3
