"""Ablation: retry policies under injected fault storms (chaos runs).

The paper's only resilience mechanism is "sleep for a second before
retrying" (IV.C).  This bench runs the bag-of-tasks application under two
fault profiles from :mod:`repro.faults.profiles` — a queue throttle storm
and a partition-server failover — once per retry policy, and compares the
completion-time penalty, the retry amplification, and the observed
availability (via Storage Analytics).

Findings this bench encodes:

* Under a *probabilistic* throttle storm the paper's fast fixed 1 s retry
  actually finishes sooner — exponential back-off keeps sleeping after
  the storm has passed.  Jitter pays off in *load-coupled* throttling,
  which the storm profile deliberately is not; both results are reported.
* Exponential jitter issues dramatically fewer retries (lower
  amplification) for the same outcome — the metric a shared fabric
  operator cares about.
* Either policy rides through a partition failover; availability dips are
  visible in the analytics rollups either way.
"""

from __future__ import annotations

import os

from conftest import emit

from repro.bench import FigureData
from repro.faults.profiles import run_faulted_taskpool

PROFILES = ("throttle-storm", "failover")
POLICIES = ("fixed", "expo-jitter")


def _cells():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    tasks = 48 if full else 24
    results = {}
    for profile in PROFILES:
        for policy in POLICIES:
            results[(profile, policy)] = run_faulted_taskpool(
                profile, policy, tasks=tasks, workers=4)
    baseline = run_faulted_taskpool("none", "fixed", tasks=tasks, workers=4)
    return baseline, results


def run_fault_ablation():
    baseline, results = _cells()
    fig = FigureData(
        "Ablation R1",
        "Bag-of-tasks completion under fault profiles, by retry policy "
        f"(healthy-run baseline {baseline['completion_time']:.2f} s)",
        "fault profile", list(PROFILES))
    for policy in POLICIES:
        cells = [results[(p, policy)] for p in PROFILES]
        fig.add(f"{policy} completion",
                [c["completion_time"] for c in cells], unit="s")
        fig.add(f"{policy} penalty",
                [c["completion_time"] - baseline["completion_time"]
                 for c in cells], unit="s")
        fig.add(f"{policy} retries", [float(c["retries"]) for c in cells])
        fig.add(f"{policy} amplification",
                [c["retry_amplification"] for c in cells])
        fig.add(f"{policy} queue availability",
                [c["availability"]["queue"] for c in cells])
    return fig, baseline, results


def test_ablation_faults(benchmark):
    fig, baseline, results = benchmark.pedantic(
        run_fault_ablation, rounds=1, iterations=1)
    emit(fig)

    # Every faulted run still completes the whole bag of tasks.
    for cell in results.values():
        assert cell["completed"], cell
        assert cell["results_collected"] == cell["tasks"], cell

    # Fault injection is live: retries happened, availability dipped, and
    # the analytics expose both per policy.
    for cell in results.values():
        assert cell["retries"] > 0
        assert cell["faults_injected"]
        assert cell["availability"]["queue"] < 1.0
        assert cell["retry_amplification"] > 1.0
    assert baseline["retries"] == 0
    assert baseline["availability"]["queue"] == 1.0

    # The policies are measurably different under the throttle storm —
    # both in completion time and in retry amplification (the fixed 1 s
    # retry hammers the throttled service far harder).
    fixed = results[("throttle-storm", "fixed")]
    expo = results[("throttle-storm", "expo-jitter")]
    assert abs(fixed["completion_time"] - expo["completion_time"]) > 1.0
    assert fixed["retries"] != expo["retries"]

    # Fault injection is deterministic: identical re-runs, trace and all.
    again = run_faulted_taskpool(
        "throttle-storm", "fixed", tasks=fixed["tasks"], workers=4)
    assert again == fixed


if __name__ == "__main__":  # pragma: no cover - manual run
    fig, _, _ = run_fault_ablation()
    print(fig.to_text())
