"""Ablation: table partitioning quality.

The paper (IV.C): "Tables are partitioned on the partition keys … A single
partition can support access to a maximum of 500 entities per second.
Therefore, a good partitioning of a table can significantly boost the
performance of Table storage."

This bench runs Algorithm 5 twice at the same scale — once with the paper's
per-worker partitions and once with every worker hammering one shared
partition — and shows the throttling and serialization the bad layout buys.
"""

from __future__ import annotations

import os

from conftest import emit

from repro.bench import FigureData
from repro.core import (
    OP_INSERT,
    RunConfig,
    TableBenchConfig,
    run_bench,
    table_bench_body,
    table_phase_name,
)
from repro.storage import KB


def run_partitioning_ablation():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    workers = 48 if full else 24
    entity_count = 200 if full else 60
    size = 32 * KB

    fig = FigureData(
        "Ablation P1",
        f"Insert phase at {workers} workers, {entity_count} x 32 KB entities "
        "per worker", "layout", ["per-worker partitions", "shared partition"])

    times, retries = [], []
    for strategy in ("per-worker", "shared"):
        cfg = TableBenchConfig(
            entity_count=entity_count, entity_sizes=(size,),
            partition_strategy=strategy,
        )
        result = run_bench(lambda: table_bench_body(cfg),
                           RunConfig(workers=workers, seed=99))
        stats = result.phase(table_phase_name(OP_INSERT, size))
        times.append(stats.mean_worker_time)
        retries.append(float(stats.total_retries))
    fig.add("insert time", times, unit="s")
    fig.add("ServerBusy retries", retries)
    return fig


def test_ablation_partitioning(benchmark):
    fig = benchmark.pedantic(run_partitioning_ablation, rounds=1, iterations=1)
    emit(fig)

    good, bad = fig.get("insert time").values
    # The shared partition is substantially slower...
    assert bad > 1.5 * good, (good, bad)
    # ...and it, not the good layout, is what triggers throttling.
    good_retries, bad_retries = fig.get("ServerBusy retries").values
    assert bad_retries >= good_retries
