"""Ablation: resource provisioning / deployment timing.

The paper's future work: "We will also include resource provisioning times
and application deployment timings."  This bench supplies those numbers on
the provisioning model: time-to-first-instance and time-to-full-fleet as
the requested instance count and VM size grow.
"""

from __future__ import annotations

import os

from conftest import emit

from repro.bench import FigureData
from repro.compute import (
    Deployment,
    EXTRA_LARGE,
    ProvisioningModel,
    SMALL,
    provisioned_start,
)
from repro.sim import SimStorageAccount
from repro.simkit import Environment


def _provision_fleet(instances, vm_size, seed=0):
    env = Environment()
    account = SimStorageAccount(env, seed=seed)

    def body(ctx):
        yield ctx.sleep(0)  # instant app; we only time provisioning
        return ctx.role_id

    deployment = Deployment(env, account, body, instances=instances,
                            vm_size=vm_size)
    ready, record = provisioned_start(deployment, ProvisioningModel(seed=seed))
    env.run(until=ready)
    return record


def run_provisioning_ablation():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    counts = [1, 8, 32, 96] if full else [1, 8, 32]
    fig = FigureData(
        "Ablation D1", "Deployment provisioning time (Small vs Extra Large)",
        "instances", counts)
    for vm in (SMALL, EXTRA_LARGE):
        first, all_ready = [], []
        for n in counts:
            record = _provision_fleet(n, vm, seed=5)
            first.append(record.first_ready_at / 60)
            all_ready.append(record.all_ready_at / 60)
        fig.add(f"{vm.name}: first ready", first, unit="min")
        fig.add(f"{vm.name}: fleet ready", all_ready, unit="min")
    return fig


def test_ablation_provisioning(benchmark):
    fig = benchmark.pedantic(run_provisioning_ablation, rounds=1, iterations=1)
    emit(fig)

    small_fleet = fig.get("Small: fleet ready").values
    xl_fleet = fig.get("Extra Large: fleet ready").values
    small_first = fig.get("Small: first ready").values

    # Minutes-scale provisioning, as the 2012 fabric delivered.
    assert 3 < small_first[0] < 20
    # Bigger VMs take longer to come up.
    assert all(x > s for s, x in zip(small_fleet, xl_fleet))
    # Fleet-ready time grows with the stragglers of larger requests.
    assert small_fleet[-1] > small_fleet[0]
    # First instance is roughly size-bound, not fleet-bound: requesting many
    # must not multiply the time to the first usable instance.
    assert small_first[-1] < small_first[0] * 2.5
