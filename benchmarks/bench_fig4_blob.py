"""Figure 4: Blob storage benchmarks (upload/download throughput and time).

Paper claims this bench must reproduce:

* aggregate throughput rises with workers for uploads and downloads;
* Page blob upload throughput far exceeds Block blob upload (~60 vs ~21
  MB/s at 96 workers, a ~3x gap);
* per-worker download time *increases* with workers (each worker downloads
  the full blobs), while per-worker upload time *decreases* (fixed total).
"""

from __future__ import annotations

from conftest import emit


def test_fig4_blob_storage(benchmark, runner):
    thr, tim = benchmark.pedantic(runner.figure4, rounds=1, iterations=1)
    emit(thr)
    emit(tim)

    lo, hi = thr.x_values[0], thr.x_values[-1]
    page_up = thr.get("Page upload").values
    block_up = thr.get("Block upload").values
    page_down = thr.get("Page download").values
    block_down = thr.get("Block download").values

    # Throughput grows with workers for every curve.
    assert page_up[-1] > 2 * page_up[0]
    assert block_up[-1] > 2 * block_up[0]
    assert page_down[-1] > 2 * page_down[0]
    assert block_down[-1] > 2 * block_down[0]

    # Page upload beats block upload by roughly the paper's ~3x factor.
    ratio = page_up[-1] / block_up[-1]
    assert 1.8 <= ratio <= 4.5, f"page/block upload ratio {ratio:.2f}"

    # Whole-blob download is the fastest path of all.
    assert max(page_down[-1], block_down[-1]) > page_up[-1]

    # Upload time shrinks with workers; download time does not shrink (the
    # per-worker download load is constant, contention only adds).
    up_t = tim.get("Page upload").values
    down_t = tim.get("Page download").values
    assert up_t[-1] < up_t[0] / 2
    assert down_t[-1] >= 0.8 * down_t[0]
