"""Figure 5: Blob download one page/block at a time.

Paper claims: sequential block-wise downloading outperforms random
page-wise downloading ("The pages from the Page blob are accessed randomly,
which adds the overhead of locating the page"); at 96 workers the paper
measured >71 MB/s (page) vs >104 MB/s (block).
"""

from __future__ import annotations

from conftest import emit


def test_fig5_chunked_download(benchmark, runner):
    thr, tim = benchmark.pedantic(runner.figure5, rounds=1, iterations=1)
    emit(thr)
    emit(tim)

    page = thr.get("Page (random)").values
    block = thr.get("Block (sequential)").values

    # Sequential block reads beat random page reads at every scale.
    assert all(b > p for p, b in zip(page, block)), (page, block)

    # The saturation gap matches the paper's 104/71 ~ 1.46 ratio loosely.
    ratio = block[-1] / page[-1]
    assert 1.15 <= ratio <= 2.2, f"block/page chunked ratio {ratio:.2f}"

    # Both saturate: the last doubling of workers gains little throughput.
    if len(page) >= 3:
        assert page[-1] < 1.5 * page[-2]

    # Chunked downloads are slower than whole-blob streaming of Fig 4 at the
    # top scale (the paper's max: 104-71 vs 165 MB/s).
    f4_thr, _ = runner.figure4()
    stream = f4_thr.get("Block download").values
    assert stream[-1] > block[-1] > page[-1]
