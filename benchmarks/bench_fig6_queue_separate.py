"""Figure 6: Queue storage benchmarks, separate queue per worker.

Paper claims this bench must reproduce:

* Peek is the fastest operation ("no synchronization needed on the server
  end"), Put pays replica synchronization, Get (incl. delete) is the most
  expensive ("extra state needs to be maintained across all copies");
* the queue scales very well: per-worker time drops as workers grow;
* the unexplained 16 KB Get anomaly ("took significantly more time than
  other message sizes (both smaller and larger ones)").
"""

from __future__ import annotations

from conftest import emit

from repro.storage import KB


def test_fig6_queue_separate(benchmark, runner, scale):
    figs = benchmark.pedantic(runner.figure6, rounds=1, iterations=1)
    for fig in figs.values():
        emit(fig)

    put = figs["Fig 6a"]
    peek = figs["Fig 6b"]
    get = figs["Fig 6c"]

    for size in scale.queue_message_sizes:
        label = f"{size // KB} KB"
        put_t = put.get(label).values
        peek_t = peek.get(label).values
        get_t = get.get(label).values
        # Peek < Put < Get at every worker count.
        assert all(pk < pt < gt for pk, pt, gt
                   in zip(peek_t, put_t, get_t)), label
        # Near-linear scaling: per-worker time at the top scale is a small
        # fraction of the single-worker time.
        speedup = put_t[0] / put_t[-1]
        assert speedup > put.x_values[-1] * 0.5, (label, speedup)

    # The 16 KB Get anomaly: slower than both 8 KB and 32 KB.
    g16 = get.get("16 KB").values
    g8 = get.get("8 KB").values
    g32 = get.get("32 KB").values
    assert all(a > 1.2 * b for a, b in zip(g16, g8))
    assert all(a > 1.2 * b for a, b in zip(g16, g32))
