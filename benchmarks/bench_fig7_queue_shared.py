"""Figure 7: Queue storage benchmarks, single shared queue with think time.

Paper claims this bench must reproduce:

* contention on one shared queue makes each operation slower than the
  separate-queue scenario of Fig 6;
* "the time taken by an operation reduces as the think time increases; in
  some cases, the time reduces by a factor of almost two";
* with the total transaction count held constant, per-worker time falls as
  workers grow ("As the number of workers starts increasing, the time
  starts decreasing").
"""

from __future__ import annotations

from conftest import emit

from repro.storage import KB


def test_fig7_queue_shared(benchmark, runner, scale):
    figs = benchmark.pedantic(runner.figure7, rounds=1, iterations=1)
    for fig in figs.values():
        emit(fig)

    think_lo = f"think {scale.shared_think_times[0]:.0f}s"
    think_hi = f"think {scale.shared_think_times[-1]:.0f}s"

    get = figs["Fig 7c"]
    put = figs["Fig 7a"]

    # Longer think time never hurts, and helps measurably somewhere.
    lo = get.get(think_lo).values
    hi = get.get(think_hi).values
    assert all(h <= l * 1.10 for l, h in zip(lo, hi))
    assert any(h < l * 0.85 for l, h in zip(lo, hi)), (lo, hi)

    # Per-worker time decreases as workers grow (fixed total transactions).
    assert lo[-1] < lo[0]
    put_lo = put.get(think_lo).values
    assert put_lo[-1] < put_lo[0]

    # Contention: shared-queue per-op cost >= the separate-queue cost of
    # Fig 6 at the top worker count (same 32 KB size).
    sep = runner.queue_separate_sweep()
    shared = runner.queue_shared_sweep()
    top = scale.worker_counts[-1]
    from repro.core import OP_GET, phase_name, shared_phase_name
    sep_get = sep[top].phase(phase_name(OP_GET, 32 * KB)).mean_op_time
    shared_get = shared[top].phase(
        shared_phase_name(OP_GET, scale.shared_think_times[0])).mean_op_time
    assert shared_get >= 0.9 * sep_get, (shared_get, sep_get)
