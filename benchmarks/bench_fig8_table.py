"""Figure 8: Table storage benchmarks (Insert/Query/Update/Delete).

Paper claims this bench must reproduce:

* "The timings are almost constant till 4 concurrent clients for all entity
  sizes across all four operations";
* "updating a table is the most time consuming process" and "the least
  expensive process is querying";
* "For entity sizes 32 KB and 64 KB, the time taken for all of the four
  operations increases drastically with increasing number of worker role
  instances".
"""

from __future__ import annotations

from conftest import emit

from repro.storage import KB


def test_fig8_table_storage(benchmark, runner, scale):
    figs = benchmark.pedantic(runner.figure8, rounds=1, iterations=1)
    for fig in figs.values():
        emit(fig)

    insert = figs["Fig 8a"]
    query = figs["Fig 8b"]
    update = figs["Fig 8c"]
    delete = figs["Fig 8d"]
    workers = insert.x_values

    for size in scale.table_entity_sizes:
        label = f"{size // KB} KB"
        q = query.get(label).values
        u = update.get(label).values
        i = insert.get(label).values
        d = delete.get(label).values
        # Query cheapest, Update most expensive, at every worker count.
        assert all(qq < min(ii, dd, uu) for qq, ii, dd, uu
                   in zip(q, i, d, u)), label
        assert all(uu > max(ii, dd) for uu, ii, dd in zip(u, i, d)), label

    # Flat until 4 workers: within 15% of the 1-worker time.
    idx4 = max(k for k, w in enumerate(workers) if w <= 4)
    for size in scale.table_entity_sizes:
        label = f"{size // KB} KB"
        for fig in (insert, query, update, delete):
            v = fig.get(label).values
            assert v[idx4] <= 1.15 * v[0], (fig.figure_id, label, v)

    # 32/64 KB blow up with workers far more than 4 KB does.
    big = update.get("64 KB").values
    small = update.get("4 KB").values
    big_growth = big[-1] / big[0]
    small_growth = small[-1] / small[0]
    assert big_growth > small_growth * 1.15, (big_growth, small_growth)
    assert big_growth > 1.3, big_growth
