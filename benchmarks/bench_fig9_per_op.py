"""Figure 9: per-operation time for Table and Queue storage services.

Paper claim: "It is evident from Figure 9 that the Queue storage scales
better than the Table storage as the number of workers increases."
"""

from __future__ import annotations

from conftest import emit


def test_fig9_per_operation_time(benchmark, runner):
    fig = benchmark.pedantic(runner.figure9, rounds=1, iterations=1)
    emit(fig)

    q_put = fig.get("queue put").values
    q_peek = fig.get("queue peek").values
    q_get = fig.get("queue get").values
    t_query = fig.get("table query").values
    t_update = fig.get("table update").values

    # Queue per-op times stay near-flat as workers grow (separate queues ->
    # separate partition servers).  At 96 workers the account-wide 5,000
    # tx/s target starts to graze the fleet's aggregate rate, so allow the
    # mild drift the real platform would also show; the paper's claim is
    # the *relative* one checked below.
    assert q_put[-1] <= 1.3 * q_put[0]
    assert q_peek[-1] <= 2.0 * q_peek[0]

    # Table per-op times grow with workers (range-server contention):
    # queue scales better than table.
    queue_growth = q_get[-1] / q_get[0]
    table_growth = t_update[-1] / t_update[0]
    assert table_growth > queue_growth, (table_growth, queue_growth)

    # Within each service the per-op ordering holds at the top scale.
    assert q_peek[-1] < q_put[-1] < q_get[-1]
    assert t_query[-1] < t_update[-1]
