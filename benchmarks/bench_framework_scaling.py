"""Benchmark: the Section III framework's own scaling.

The paper recommends the framework ("The effectiveness of this framework
has been proven in several applications, such as … Crayons [9] and
Twister4Azure [15]") and separately recommends multiple task queues
("we recommend usage of multiple queues as and when possible").  This
bench measures both: task throughput of the framework as workers scale,
with one task-assignment queue versus four.
"""

from __future__ import annotations

import os

from conftest import emit

from repro.bench import FigureData
from repro.compute import Fabric
from repro.framework import TaskPoolApp, TaskPoolConfig
from repro.sim import SimStorageAccount
from repro.simkit import Environment

TASK_WORK_S = 0.2


def _handler(ctx, payload):
    yield ctx.sleep(TASK_WORK_S)
    return None  # side-effect-free micro tasks; results not collected


def _run(workers, task_queues, n_tasks):
    env = Environment()
    account = SimStorageAccount(env, seed=41)
    fabric = Fabric(env, account)
    app = TaskPoolApp(
        TaskPoolConfig(name="scale", task_queues=task_queues,
                       visibility_timeout=30.0, idle_poll_interval=0.25,
                       collect_results=False),
        _handler)
    tasks = [f"t{i}".encode() for i in range(n_tasks)]
    fabric.deploy(app.web_role_body(tasks, poll_interval=0.25),
                  instances=1, name="web")
    fabric.deploy(app.worker_role_body(), instances=workers, name="workers")
    fabric.run_all()
    return n_tasks / env.now  # tasks per simulated second


def run_framework_scaling():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    worker_counts = [1, 2, 4, 8, 16, 32] if full else [1, 2, 4, 8, 16]
    n_tasks = 256 if full else 96
    fig = FigureData(
        "Framework F1",
        f"Task-pool throughput ({n_tasks} x {TASK_WORK_S}s tasks)",
        "workers", worker_counts)
    for queues in (1, 4):
        fig.add(f"{queues} task queue{'s' if queues > 1 else ''}",
                [_run(w, queues, n_tasks) for w in worker_counts],
                unit="tasks/s")
    return fig


def test_framework_scaling(benchmark):
    fig = benchmark.pedantic(run_framework_scaling, rounds=1, iterations=1)
    emit(fig)

    one_q = fig.get("1 task queue").values
    four_q = fig.get("4 task queues").values

    # The framework scales: more workers, more tasks/second.
    assert one_q[-1] > 2.5 * one_q[0]
    assert four_q[-1] > 2.5 * four_q[0]
    # Multiple queues never hurt, and help at the top scale (the paper's
    # recommendation) — within jitter at low scale.
    assert four_q[-1] >= 0.9 * one_q[-1]
