"""Table I: virtual machine configurations available for Azure roles."""

from __future__ import annotations

from conftest import emit

from repro.bench import figure_table1
from repro.compute import EXTRA_LARGE, EXTRA_SMALL, TABLE_I


def test_table1_vm_sizes(benchmark):
    fig = benchmark.pedantic(figure_table1, rounds=1, iterations=1)
    emit(fig)
    # The paper's Table I rows, exactly.
    assert [v.name for v in TABLE_I] == [
        "Extra Small", "Small", "Medium", "Large", "Extra Large",
    ]
    assert EXTRA_SMALL.shared_core and EXTRA_SMALL.memory_mb == 768
    assert EXTRA_LARGE.cpu_cores == 8 and EXTRA_LARGE.memory_mb == 14 * 1024
    assert [v.storage_gb for v in TABLE_I] == [20, 225, 490, 1000, 2040]
    # Memory doubles up the ladder from Small (1.75 GB) to Extra Large (14 GB).
    mems = [v.memory_mb for v in TABLE_I[1:]]
    assert all(b == 2 * a for a, b in zip(mems, mems[1:]))
