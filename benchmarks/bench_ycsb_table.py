"""Benchmark: YCSB core workloads on the simulated Table service.

Connects the reproduction to the benchmark family the paper's related work
cites (YCSB, Cooper et al. SoCC'10): the same Table service that produces
Figure 8 under AzureBench's uniform workloads is driven by YCSB's skewed
mixes.  Expected shapes: read-only C is the cheapest per op; update-heavy
A the dearest; zipfian skew concentrates load on each shard's hot rows but
per-worker partitions keep the 500 ent/s target out of reach.
"""

from __future__ import annotations

import dataclasses
import os

from conftest import emit

from repro.bench import FigureData
from repro.core import RunConfig, run_bench
from repro.workloads import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    ycsb_worker_body,
)


def run_ycsb_bench():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    workers = 16 if full else 8
    record_count = 200 if full else 60
    ops = 150 if full else 60

    workloads = [dataclasses.replace(w, record_count=record_count)
                 for w in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C)]
    fig = FigureData(
        "YCSB Y1",
        f"YCSB core workloads on Table storage ({workers} workers, "
        f"{ops} ops/worker)", "workload", [w.name for w in workloads])

    read_ms, update_ms, overall_ms = [], [], []
    for wl in workloads:
        result = run_bench(
            lambda w=wl: ycsb_worker_body(w, ops_per_worker=ops),
            RunConfig(workers=workers, seed=55))
        phases = {n: result.phase(n) for n in result.phase_names()}
        total_time = sum(p.mean_worker_time for p in phases.values())
        total_ops = sum(p.total_ops for p in phases.values())
        overall_ms.append(1000 * total_time * workers / total_ops)
        read = phases.get("ycsb_read")
        update = phases.get("ycsb_update")
        read_ms.append(1000 * read.mean_op_time if read else 0.0)
        update_ms.append(1000 * update.mean_op_time if update else 0.0)

    fig.add("overall", overall_ms, unit="ms/op")
    fig.add("read", read_ms, unit="ms/op")
    fig.add("update", update_ms, unit="ms/op")
    return fig


def test_ycsb_workloads(benchmark):
    fig = benchmark.pedantic(run_ycsb_bench, rounds=1, iterations=1)
    emit(fig)

    overall = fig.get("overall").values
    a_ms, b_ms, c_ms = overall

    # Update-heavy A is the most expensive mix, read-only C the cheapest.
    assert a_ms > b_ms > c_ms, overall

    # Reads cost about the same regardless of the mix around them.
    reads = fig.get("read").values
    assert max(reads) < 1.5 * min(r for r in reads if r > 0)

    # Updates dominate A's cost (they are the dearest table op, Fig 8).
    updates = fig.get("update").values
    assert updates[0] > reads[0]
