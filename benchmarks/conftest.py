"""Shared fixtures for the figure-regeneration benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only            # quick scale
    pytest benchmarks/ --benchmark-only --jobs 4   # parallel sweeps
    AZUREBENCH_FULL=1 pytest benchmarks/ --benchmark-only   # paper scale

Each bench regenerates one table/figure of the paper, prints the series
(use ``-s`` to see them mid-run; they also land in the captured output),
and asserts the paper's qualitative claims about that figure.  ``--jobs``
fans the sweeps behind the figures over a process pool; the numbers are
byte-identical to a serial run (docs/performance.md), only faster.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureRunner, active_scale


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=None, metavar="N",
        help="fan sweep cells over N worker processes (default: serial)")


@pytest.fixture(scope="session")
def runner(request) -> FigureRunner:
    """One FigureRunner per session so figures share cached sweeps."""
    return FigureRunner(active_scale(),
                        jobs=request.config.getoption("--jobs"))


@pytest.fixture(scope="session")
def scale():
    return active_scale()


def emit(fig) -> None:
    """Print one figure's series table (shown with pytest -s)."""
    print()
    print(fig.to_text())
