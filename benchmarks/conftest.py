"""Shared fixtures for the figure-regeneration benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only            # quick scale
    AZUREBENCH_FULL=1 pytest benchmarks/ --benchmark-only   # paper scale

Each bench regenerates one table/figure of the paper, prints the series
(use ``-s`` to see them mid-run; they also land in the captured output),
and asserts the paper's qualitative claims about that figure.
"""

from __future__ import annotations

import pytest

from repro.bench import FigureRunner, active_scale


@pytest.fixture(scope="session")
def runner() -> FigureRunner:
    """One FigureRunner per session so figures share cached sweeps."""
    return FigureRunner(active_scale())


@pytest.fixture(scope="session")
def scale():
    return active_scale()


def emit(fig) -> None:
    """Print one figure's series table (shown with pytest -s)."""
    print()
    print(fig.to_text())
