#!/usr/bin/env python3
"""An operator's view: Storage Analytics over a live workload.

Runs a mixed blob/queue/table workload (with a cache-aside layer and a
mid-run queue outage), then renders what a 2012 operator would have read
out of Storage Analytics: per-operation latency/availability rollups,
throttle counts, and hourly traffic sparklines.

    python examples/analytics_dashboard.py
"""

from collections import defaultdict

from repro.analysis import sparkline
from repro.cluster import Service
from repro.sim import SimStorageAccount, retrying
from repro.simkit import AllOf, Environment
from repro.storage import KB, MB, random_content
from repro.storage.analytics import attach_analytics

WORKERS = 6
MINUTES = 30.0


def worker(env, account, wid):
    """A chatty mixed workload: blobs, queue messages, table rows, cache."""
    blob = account.blob_client()
    queue = account.queue_client()
    table = account.table_client()
    cache = account.cache_client()
    yield from retrying(env, lambda: blob.create_container("appdata"))
    yield from retrying(env, lambda: queue.create_queue("events"))
    yield from retrying(env, lambda: table.create_table("State"))
    yield from retrying(env, lambda: cache.create_cache(
        "hot", capacity_bytes=8 * MB))

    i = 0
    while env.now < MINUTES * 60:
        i += 1
        # Publish an event, process one.
        yield from retrying(env, lambda: queue.put_message(
            "events", random_content(2 * KB, seed=wid * 1000 + i)))
        msg = yield from retrying(env, lambda: queue.get_message(
            "events", visibility_timeout=60))
        if msg is not None:
            yield from retrying(env, lambda m=msg: queue.delete_message(
                "events", m.message_id, m.pop_receipt))
        # Update worker state in the table (upsert).
        yield from retrying(env, lambda: table.insert_or_replace(
            "State", f"w{wid}", "status", {"Tick": i}))
        # Cache-aside read of a shared hot object.
        value = yield from cache.get("hot", "config")
        if value is None:
            if wid == 0 and i == 1:
                yield from retrying(env, lambda: blob.upload_blob(
                    "appdata", "config", random_content(256 * KB, seed=9)))
            try:
                value = yield from blob.download_block_blob("appdata", "config")
                yield from cache.put("hot", "config", value, ttl=300)
            except Exception:
                pass  # config not uploaded yet
        yield env.timeout(4.0 + 0.5 * wid)


def main():
    env = Environment()
    account = SimStorageAccount(env, seed=77)
    log, metrics = attach_analytics(account.cluster)
    # A 90-second queue incident in the middle of the run.
    account.cluster.inject_outage(Service.QUEUE, start=600.0, duration=90.0)

    procs = [env.process(worker(env, account, w)) for w in range(WORKERS)]
    env.run(until=AllOf(env, procs))

    print(f"simulated {env.now / 60:.0f} minutes, {len(log)} requests logged\n")

    # -- per-operation rollup -----------------------------------------------
    print(f"{'service':8s} {'operation':18s} {'reqs':>6s} {'avail':>7s} "
          f"{'avg ms':>7s} {'throttles':>9s}")
    per_op = defaultdict(list)
    for record in log:
        per_op[(record.service, record.operation)].append(record)
    for (service, op), records in sorted(per_op.items()):
        ok = sum(1 for r in records if r.ok)
        avail = ok / len(records)
        avg_ms = 1000 * sum(r.end_to_end_latency for r in records) / len(records)
        throttles = sum(1 for r in records if r.throttled)
        print(f"{service:8s} {op:18s} {len(records):>6d} {avail:>6.1%} "
              f"{avg_ms:>7.1f} {throttles:>9d}")

    # -- traffic sparklines (per 2-minute bucket) ---------------------------
    print("\ntraffic per 2-minute bucket:")
    buckets = int(MINUTES / 2)
    for service in ("blob", "queue", "table", "cache"):
        counts = [0] * buckets
        for record in log:
            if record.service == service:
                b = min(buckets - 1, int(record.time // 120))
                counts[b] += 1
        print(f"  {service:6s} {sparkline(counts)}  (total {sum(counts)})")

    # errors during the incident window
    incident = log.records(service="queue", since=600.0, until=690.0)
    failed = sum(1 for r in incident if not r.ok)
    print(f"\nincident window (t=600..690s): {len(incident)} queue requests, "
          f"{failed} rejected, overall queue availability "
          f"{metrics.service_totals('queue').availability:.2%}")
    cache_stats = account.cache_state.get_cache("hot").stats
    print(f"cache hit rate: {cache_stats.hit_rate:.1%} "
          f"({cache_stats.hits} hits / {cache_stats.misses} misses)")


if __name__ == "__main__":
    main()
