#!/usr/bin/env python3
"""Monte-Carlo pi on the paper's generic application framework (Section III).

A web role splits the sampling into independent tasks and posts them on a
task-assignment queue; worker roles pull tasks, sample, and report partial
counts through a results queue; a termination-indicator queue drives the
progress display.  Mid-run we crash a worker to demonstrate the queue's
built-in fault tolerance: its task reappears and another instance finishes
it.

    python examples/bag_of_tasks_pi.py [workers] [tasks]
"""

import json
import sys

import numpy as np

from repro.compute import Fabric
from repro.framework import TaskPoolApp, TaskPoolConfig
from repro.sim import SimStorageAccount
from repro.simkit import Environment

SAMPLES_PER_TASK = 200_000


def pi_handler(ctx, payload):
    """Worker-side task: sample points, count hits inside the unit circle."""
    task = json.loads(payload.decode())
    rng = np.random.default_rng(task["task_id"])
    xy = rng.random((task["samples"], 2))
    hits = int(np.count_nonzero((xy ** 2).sum(axis=1) <= 1.0))
    # Simulated compute time: sampling is cheap but not free.
    yield ctx.sleep(0.002 * task["samples"] / 1000)
    return json.dumps({"task_id": task["task_id"], "hits": hits,
                       "samples": task["samples"]}).encode()


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    n_tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 32

    env = Environment()
    account = SimStorageAccount(env, seed=42)
    fabric = Fabric(env, account)

    tasks = [json.dumps({"task_id": i, "samples": SAMPLES_PER_TASK}).encode()
             for i in range(n_tasks)]
    app = TaskPoolApp(
        TaskPoolConfig(name="pi", task_queues=2, visibility_timeout=30.0),
        pi_handler)

    fabric.deploy(app.web_role_body(tasks, poll_interval=0.5),
                  instances=1, name="web")
    worker_dep = fabric.deploy(app.worker_role_body(), instances=workers,
                               name="workers")
    fabric.start_all()

    # Chaos: recycle one worker mid-run (the fabric does this in real life).
    def chaos(env):
        yield env.timeout(1.0)
        print(f"[t={env.now:6.2f}s] fabric recycles worker #0 mid-task")
        worker_dep.fail_instance(0, cause="role recycled")

    env.process(chaos(env))
    env.run()

    total_hits = total_samples = 0
    for result in app.results:
        r = json.loads(result.payload.decode())
        total_hits += r["hits"]
        total_samples += r["samples"]
    pi = 4.0 * total_hits / total_samples

    print(f"workers           : {workers} (1 crashed and was not restarted)")
    print(f"tasks             : {n_tasks} submitted, "
          f"{len(app.results)} results collected")
    print(f"samples           : {total_samples:,}")
    print(f"pi estimate       : {pi:.6f}  (error {abs(pi - np.pi):.2e})")
    print(f"simulated runtime : {env.now:.1f}s")
    per_worker = [p for p in worker_dep.results() if p is not None]
    print(f"tasks per worker  : {per_worker}")
    assert len(app.results) >= n_tasks  # fault tolerance held


if __name__ == "__main__":
    main()
