#!/usr/bin/env python3
"""Crayons-style GIS polygon overlay on the Azure framework (paper [9]).

The paper's authors built Crayons, a cloud GIS system whose workload — map
overlay over spatial tiles — is heavily skewed: a few dense urban tiles
carry most of the polygons.  This example shows why their queue-based task
pool beats static partitioning on such skew:

1. tile data is uploaded to Blob storage (one blob per tile);
2. tile descriptors go on the task-assignment queue;
3. worker roles pull tiles dynamically, fetch the blob, "overlay" the
   polygons (simulated compute proportional to the polygon product), and
   write result summaries to Table storage;
4. the run is compared against an idealized static partitioning of the
   same tiles.

    python examples/gis_overlay.py [workers] [grid]
"""

import json
import sys

from repro.compute import Fabric
from repro.framework import TaskPoolApp, TaskPoolConfig
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import random_content
from repro.workloads import GISTile, gis_tiles

#: Simulated seconds per (base x overlay) polygon pair.
OVERLAY_COST = 4e-6


def make_handler(container):
    def handler(ctx, payload):
        tile = GISTile.from_message(payload)
        blob = ctx.account.blob_client()
        table = ctx.account.table_client()
        # Fetch the tile's polygon data from Blob storage.
        yield from blob.download_block_blob(container, f"tile-{tile.tile_id}")
        # Overlay: compute time scales with the polygon product (skewed!).
        yield ctx.sleep(OVERLAY_COST * tile.base_polygons * tile.overlay_polygons)
        # Persist a result row.
        yield from table.insert(
            "OverlayResults", f"worker-{ctx.role_id}", f"tile-{tile.tile_id}",
            {"Intersections": tile.base_polygons * tile.overlay_polygons // 7,
             "Tile": tile.tile_id})
        return json.dumps({"tile": tile.tile_id,
                           "worker": ctx.role_id}).encode()

    return handler


def upload_tiles(env, account, tiles, container):
    """Seed Blob storage with one blob per tile (untimed setup)."""
    def setup():
        blob = account.blob_client()
        table = account.table_client()
        yield from blob.create_container(container)
        yield from table.create_table("OverlayResults")
        for tile in tiles:
            yield from blob.upload_blob(
                container, f"tile-{tile.tile_id}",
                random_content(tile.data_bytes, seed=tile.tile_id))

    env.process(setup())
    env.run()


def static_partition_makespan(tiles, workers):
    """Idealized static split: contiguous tile ranges per worker."""
    per = max(1, len(tiles) // workers)
    spans = [tiles[i * per:(i + 1) * per] for i in range(workers)]
    spans[-1].extend(tiles[workers * per:])
    loads = [sum(OVERLAY_COST * t.base_polygons * t.overlay_polygons
                 for t in span) for span in spans]
    return max(loads) if loads else 0.0


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    grid = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    container = "gis-tiles"

    tiles = gis_tiles(grid=grid, seed=7)
    total_polygons = sum(t.base_polygons + t.overlay_polygons for t in tiles)
    dens = sorted(t.base_polygons * t.overlay_polygons for t in tiles)
    print(f"grid            : {grid}x{grid} = {len(tiles)} tiles, "
          f"{total_polygons:,} polygons")
    print(f"skew            : densest tile {dens[-1]:,} pairs vs "
          f"median {dens[len(dens) // 2]:,}")

    env = Environment()
    account = SimStorageAccount(env, seed=3)
    upload_tiles(env, account, tiles, container)
    t_setup = env.now

    fabric = Fabric(env, account)
    app = TaskPoolApp(
        TaskPoolConfig(name="gis", visibility_timeout=600.0,
                       collect_results=True),
        make_handler(container))
    fabric.deploy(app.web_role_body([t.to_message() for t in tiles],
                                    poll_interval=0.5),
                  instances=1, name="web")
    fabric.deploy(app.worker_role_body(), instances=workers, name="workers")
    fabric.run_all()

    dynamic_time = env.now - t_setup
    static_time = static_partition_makespan(tiles, workers)
    results = account.state.tables.get_table("OverlayResults")

    print(f"workers         : {workers}")
    print(f"tiles completed : {results.entity_count()} "
          f"(rows in Table storage)")
    print(f"dynamic pool    : {dynamic_time:8.1f}s simulated "
          "(queue task pool, incl. storage I/O)")
    print(f"static split    : {static_time:8.1f}s simulated "
          "(compute only, no I/O — an optimistic bound)")
    if static_time > 0:
        print(f"-> dynamic load balancing wins on skew whenever "
              f"{dynamic_time:.0f}s < {static_time:.0f}s: "
              f"{'YES' if dynamic_time < static_time else 'no (I/O bound)'}")


if __name__ == "__main__":
    main()
