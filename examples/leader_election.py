#!/usr/bin/env python3
"""Leader election over blob leases — the classic 2012 Azure pattern.

Azure (2012) had no lock service; applications elected a leader by racing
to acquire the one-minute exclusive lease on a well-known blob.  The leader
renews its lease as a heartbeat; if it crashes, the lease lapses and a
standby takes over within a lease duration.

This example runs four replicas of a "scheduler" role: only the lease
holder does work (appending heartbeat rows to Table storage); we crash the
leader mid-run and watch a standby win the next election.

    python examples/leader_election.py
"""

from repro.compute import Deployment
from repro.sim import SimStorageAccount
from repro.simkit import Environment
from repro.storage import LeaseConflictError

LOCK_CONTAINER = "coordination"
LOCK_BLOB = "scheduler-leader"
RUN_SECONDS = 400.0
HEARTBEAT = 20.0


def scheduler(ctx):
    """A replica: try to lead; if leading, heartbeat; else stand by."""
    env = ctx.env
    table = ctx.account.table_client()
    # Direct data-plane access for the lease (the sim client API charges
    # timing for blob ops; lease calls are small metadata ops).
    lock = ctx.account.state.blobs.get_container(LOCK_CONTAINER) \
        .get_block_blob(LOCK_BLOB)

    terms = 0
    beats = 0
    lease_id = None
    while env.now < RUN_SECONDS:
        if lease_id is None:
            try:
                lease_id = lock.acquire_lease()
                terms += 1
                print(f"[t={env.now:6.1f}s] replica {ctx.role_id} "
                      f"becomes leader (term {terms})")
            except LeaseConflictError:
                yield ctx.sleep(5.0)  # standby: retry the election later
                continue
        # Leading: do the leader-only work, then heartbeat the lease.
        yield from table.insert(
            "Heartbeats", f"replica-{ctx.role_id}", f"{env.now:012.3f}",
            {"Leader": ctx.role_id, "Time": env.now})
        beats += 1
        yield ctx.sleep(HEARTBEAT)
        try:
            lock.renew_lease(lease_id)
        except LeaseConflictError:
            # We lost the lease (e.g. broken by an operator): step down.
            print(f"[t={env.now:6.1f}s] replica {ctx.role_id} lost the lease")
            lease_id = None
    return {"replica": ctx.role_id, "terms": terms, "heartbeats": beats}


def main():
    env = Environment()
    account = SimStorageAccount(env, seed=11)

    def setup():
        blob = account.blob_client()
        table = account.table_client()
        yield from blob.create_container(LOCK_CONTAINER)
        yield from blob.upload_blob(LOCK_CONTAINER, LOCK_BLOB, b"lock")
        yield from table.create_table("Heartbeats")

    env.process(setup())
    env.run()

    deployment = Deployment(env, account, scheduler, instances=4,
                            name="scheduler")
    deployment.start()

    def chaos(env):
        # Kill whoever leads at t=120 s; the lease lapses <= 60 s later.
        yield env.timeout(120.0)
        lock = account.state.blobs.get_container(LOCK_CONTAINER) \
            .get_block_blob(LOCK_BLOB)
        rows = account.state.tables.get_table("Heartbeats")
        leaders = [e["Leader"] for pk in rows.partitions()
                   for e in rows.query_partition(pk)]
        victim = leaders[-1]
        print(f"[t={env.now:6.1f}s] CHAOS: crashing leader "
              f"replica {victim} (no lease release!)")
        deployment.fail_instance(victim, cause="power loss")

    env.process(chaos(env))
    env.run()

    results = [r for r in deployment.results() if r]
    print("\nfinal tally:")
    for r in sorted(results, key=lambda d: d["replica"]):
        print(f"  replica {r['replica']}: terms led={r['terms']}, "
              f"heartbeats={r['heartbeats']}")
    leaders_with_terms = [r for r in results if r["terms"] > 0]
    print(f"\n{len(leaders_with_terms)} replica(s) led during the run; "
          "failover happened within one lease duration of the crash.")
    heartbeat_rows = account.state.tables.get_table("Heartbeats")
    print(f"heartbeat rows in Table storage: {heartbeat_rows.entity_count()}")


if __name__ == "__main__":
    main()
