#!/usr/bin/env python3
"""The queue-based barrier of paper Algorithm 2, step by step.

Azure (2012) has no barrier primitive, so AzureBench synchronizes worker
roles through a queue: each arriving worker puts a message and then polls
the approximate message count until it reaches ``workers x sync_count``.
The messages are never deleted — that is the trick: deleting them races
with workers still polling, so instead each phase waits for the
*accumulated* total.

    python examples/queue_barrier_demo.py [workers] [phases]
"""

import sys

from repro.framework import QueueBarrier
from repro.sim import SimStorageAccount
from repro.simkit import Environment


def worker(env, account, wid, workers, phases, log):
    queue = account.queue_client()
    barrier = QueueBarrier(queue, "sync-queue", workers, env=env)
    yield from barrier.ensure_queue()

    for phase in range(phases):
        # Simulate uneven phase work (worker 0 fastest, last one slowest).
        work = 0.5 + wid * 1.5
        yield env.timeout(work)
        log.append((env.now, wid, phase, "arrived"))
        yield from barrier.wait()
        log.append((env.now, wid, phase, "crossed"))

    return barrier.time_in_barrier


def main():
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    phases = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    env = Environment()
    account = SimStorageAccount(env, seed=1)
    log = []
    procs = [env.process(worker(env, account, w, workers, phases, log))
             for w in range(workers)]
    env.run()

    for phase in range(phases):
        arrivals = [(t, w) for t, w, p, k in log
                    if p == phase and k == "arrived"]
        crossings = [(t, w) for t, w, p, k in log
                     if p == phase and k == "crossed"]
        first_cross = min(t for t, _ in crossings)
        last_arrive = max(t for t, _ in arrivals)
        print(f"phase {phase}: arrivals "
              + ", ".join(f"w{w}@{t:5.1f}s" for t, w in sorted(arrivals))
              + f" | all crossed at >= {first_cross:5.1f}s "
              f"(last arrival {last_arrive:5.1f}s) "
              f"{'OK' if first_cross >= last_arrive else 'BROKEN'}")

    sync_queue = account.state.queues.get_queue("sync-queue")
    print(f"\nmessages left in the barrier queue: "
          f"{sync_queue.approximate_message_count()} "
          f"(= workers x phases = {workers * phases}; never deleted!)")
    waits = [p.value for p in procs]
    print("per-worker total barrier time (s): "
          + ", ".join(f"w{i}={t:.1f}" for i, t in enumerate(waits)))
    print("(the fastest worker waits longest — it always arrives first)")


if __name__ == "__main__":
    main()
