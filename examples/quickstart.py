#!/usr/bin/env python3
"""Quickstart: a tour of the emulated Azure storage services.

Runs against the in-process, thread-safe emulator (no cloud account, no
network): Blob (block + page), Queue (visibility timeouts), and Table
(schema-less entities, ETags, filters).

    python examples/quickstart.py
"""

from repro.emulator import EmulatorAccount
from repro.storage import MB, ETagMismatchError, ManualClock


def blob_tour(account):
    print("== Blob storage ==")
    blob = account.blob_client()
    blob.create_container("quickstart")

    # Block blob: stage blocks, then commit an ordered list.
    blob.put_block("quickstart", "greeting", "block-1", b"hello, ")
    blob.put_block("quickstart", "greeting", "block-2", b"azure ")
    blob.put_block("quickstart", "greeting", "block-3", b"storage!")
    blob.put_block_list("quickstart", "greeting",
                        ["block-1", "block-2", "block-3"])
    text = blob.download_block_blob("quickstart", "greeting").to_bytes()
    print(f"  block blob says: {text.decode()}")

    # Page blob: fixed-size, 512-byte-aligned random access.
    blob.create_page_blob("quickstart", "random-access", 1 * MB)
    blob.put_page("quickstart", "random-access", 512, b"X" * 512)
    page = blob.get_page("quickstart", "random-access", 512, 512)
    print(f"  page blob read back {page.size} bytes at offset 512")
    zeros = blob.get_page("quickstart", "random-access", 0, 512)
    print(f"  unwritten pages read as zeros: {zeros.to_bytes()[:4]!r}...")


def queue_tour(account):
    print("== Queue storage ==")
    queue = account.queue_client()
    queue.create_queue("jobs")
    for i in range(3):
        queue.put_message("jobs", f"job-{i}".encode())
    print(f"  enqueued 3 messages; count = {queue.get_message_count('jobs')}")

    peeked = queue.peek_message("jobs")
    print(f"  peek (no state change): {peeked.content.to_bytes().decode()}")

    msg = queue.get_message("jobs", visibility_timeout=30)
    print(f"  got {msg.content.to_bytes().decode()} "
          f"(invisible for 30s unless deleted)")
    queue.delete_message("jobs", msg.message_id, msg.pop_receipt)
    print(f"  deleted it; count = {queue.get_message_count('jobs')}")

    # The fault-tolerance mechanism: an undeleted message reappears.
    msg = queue.get_message("jobs", visibility_timeout=5)
    print(f"  got {msg.content.to_bytes().decode()} and 'crashed' "
          "(never deleted)")
    account.state.clock.advance(5)
    back = queue.get_message("jobs", visibility_timeout=30)
    print(f"  after the visibility timeout it reappeared: "
          f"{back.content.to_bytes().decode()} "
          f"(dequeue_count={back.dequeue_count})")


def table_tour(account):
    print("== Table storage ==")
    table = account.table_client()
    table.create_table("Sensors")

    # Schema-less: entities in one table can have different properties.
    table.insert("Sensors", "room-1", "2012-01-01T00", {"TempC": 21.5})
    table.insert("Sensors", "room-1", "2012-01-01T01",
                 {"TempC": 22.0, "Humidity": 40})
    table.insert("Sensors", "room-2", "2012-01-01T00", {"TempC": 18.0})

    hot = table.query("Sensors", "TempC gt 20")
    print(f"  filter 'TempC gt 20' matched {len(hot)} entities")

    # Optimistic concurrency via ETags.
    entity = table.get("Sensors", "room-1", "2012-01-01T00")
    table.update("Sensors", "room-1", "2012-01-01T00", {"TempC": 23.0},
                 etag=entity.etag)
    try:
        table.update("Sensors", "room-1", "2012-01-01T00", {"TempC": 0.0},
                     etag=entity.etag)  # stale!
    except ETagMismatchError:
        print("  stale ETag update rejected (optimistic concurrency works)")

    # The wildcard '*' is the unconditional update of paper Algorithm 5.
    table.update("Sensors", "room-1", "2012-01-01T00", {"TempC": 24.0},
                 etag="*")
    print(f"  final TempC = "
          f"{table.get('Sensors', 'room-1', '2012-01-01T00')['TempC']}")


def main():
    account = EmulatorAccount(clock=ManualClock())
    blob_tour(account)
    queue_tour(account)
    table_tour(account)
    print(f"== done; account stores {account.state.bytes_used} bytes ==")


if __name__ == "__main__":
    main()
