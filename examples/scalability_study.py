#!/usr/bin/env python3
"""A miniature Figure-4 scalability study from the public API.

Sweeps worker counts over the Blob benchmark (paper Algorithm 1) on the
simulated fabric and prints throughput/time series next to the paper's
reported maxima.

    python examples/scalability_study.py            # quick sweep
    AZUREBENCH_FULL=1 python examples/scalability_study.py   # paper scale
"""

import os

from repro.bench import PAPER_ANCHORS
from repro.core import (
    PHASE_BLOCK_FULL_DOWNLOAD,
    PHASE_BLOCK_UPLOAD,
    PHASE_PAGE_FULL_DOWNLOAD,
    PHASE_PAGE_UPLOAD,
    BlobBenchConfig,
    RunConfig,
    blob_bench_body,
    sweep_workers,
)

PHASES = [
    ("page upload", PHASE_PAGE_UPLOAD, "blob_max_upload_mbps"),
    ("block upload", PHASE_BLOCK_UPLOAD, "blob_block_upload_mbps"),
    ("page download", PHASE_PAGE_FULL_DOWNLOAD, None),
    ("block download", PHASE_BLOCK_FULL_DOWNLOAD, "blob_max_download_mbps"),
]


def main():
    full = os.environ.get("AZUREBENCH_FULL") == "1"
    worker_counts = [1, 2, 4, 8, 16, 32, 48, 64, 80, 96] if full \
        else [1, 2, 4, 8, 16, 32]
    cfg = BlobBenchConfig(total_chunks=100 if full else 48,
                          repeats=3 if full else 1)

    print(f"sweeping workers {worker_counts} "
          f"({'paper' if full else 'quick'} scale)...")
    sweep = sweep_workers(lambda: blob_bench_body(cfg), worker_counts,
                          RunConfig(seed=2012))

    header = f"{'workers':>8}" + "".join(
        f"{label:>16}" for label, _, _ in PHASES)
    print("\nThroughput (MB/s):")
    print(header)
    for w, result in sweep.items():
        row = f"{w:>8}"
        for _, phase, _ in PHASES:
            row += f"{result.phase(phase).throughput_mb_per_s:>16.1f}"
        print(row)

    print("\nPer-worker time (s):")
    print(header)
    for w, result in sweep.items():
        row = f"{w:>8}"
        for _, phase, _ in PHASES:
            row += f"{result.phase(phase).mean_worker_time:>16.1f}"
        print(row)

    top = sweep[worker_counts[-1]]
    print(f"\nAt {worker_counts[-1]} workers vs the paper's 96-worker maxima:")
    for label, phase, anchor_key in PHASES:
        measured = top.phase(phase).throughput_mb_per_s
        if anchor_key:
            anchor = PAPER_ANCHORS[anchor_key]
            print(f"  {label:15s} {measured:7.1f} MB/s   "
                  f"(paper: {anchor.value:.0f} {anchor.unit}, {anchor.where})")
        else:
            print(f"  {label:15s} {measured:7.1f} MB/s")


if __name__ == "__main__":
    main()
