"""AzureBench reproduction.

A from-scratch Python reproduction of *AzureBench: Benchmarking the Storage
Services of the Azure Cloud Platform* (Agarwal & Prasad, IPDPS Workshops
2012), including:

* :mod:`repro.simkit` -- a discrete-event simulation kernel,
* :mod:`repro.storage` -- the Azure (2012) Blob/Queue/Table data planes,
* :mod:`repro.cluster` -- the storage fabric performance model,
* :mod:`repro.sim` -- simulated storage clients,
* :mod:`repro.emulator` -- a thread-safe local emulator (Azurite-equivalent),
* :mod:`repro.compute` -- web/worker role substrate (paper Table I),
* :mod:`repro.framework` -- the generic bag-of-tasks application framework
  (paper Section III) and the queue barrier (Algorithm 2),
* :mod:`repro.core` -- the AzureBench benchmark algorithms (paper Section IV),
* :mod:`repro.bench` -- reporting/regeneration of the paper's figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
