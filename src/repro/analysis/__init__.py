"""Analysis utilities: scalability metrics and terminal charts."""

from .charts import ascii_chart, sparkline
from .scaling import (
    USLFit,
    crossover,
    efficiency,
    fit_usl,
    knee_point,
    saturation_point,
    speedup,
)

__all__ = [
    "speedup",
    "efficiency",
    "saturation_point",
    "knee_point",
    "crossover",
    "USLFit",
    "fit_usl",
    "ascii_chart",
    "sparkline",
]
