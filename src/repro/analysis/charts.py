"""Terminal (ASCII) charts for benchmark series — no plotting dependency.

Renders :class:`~repro.bench.report.FigureData` line charts good enough to
eyeball the paper's shapes in a terminal or a text log. ::

    from repro.analysis import ascii_chart
    print(ascii_chart(fig, height=12))
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["ascii_chart", "sparkline"]

_MARKERS = "ox+*#@%&"
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a series."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return _BLOCKS[4] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 2)) + 1
        out.append(_BLOCKS[idx])
    return "".join(out)


def ascii_chart(fig, *, width: int = 64, height: int = 14,
                logy: bool = False) -> str:
    """Render a FigureData as an ASCII line chart with a legend.

    X positions follow sample order (the paper's worker counts are roughly
    log-spaced already); Y is linear unless ``logy``.
    """
    import math

    series = fig.series
    if not series:
        return f"{fig.figure_id}: (no series)"
    n = len(fig.x_values)
    if n < 2:
        return f"{fig.figure_id}: (need >= 2 points)"

    def ty(v: float) -> float:
        if logy:
            return math.log10(max(v, 1e-12))
        return v

    all_vals = [ty(v) for s in series for v in s.values]
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        marker = _MARKERS[si % len(_MARKERS)]
        prev_col = prev_row = None
        for i, v in enumerate(s.values):
            col = round(i * (width - 1) / (n - 1))
            frac = (ty(v) - lo) / (hi - lo)
            row = (height - 1) - round(frac * (height - 1))
            if prev_col is not None:
                # Sparse line: fill intermediate columns by interpolation.
                for c in range(prev_col + 1, col):
                    t = (c - prev_col) / (col - prev_col)
                    r = round(prev_row + (row - prev_row) * t)
                    if grid[r][c] == " ":
                        grid[r][c] = "."
            grid[row][col] = marker
            prev_col, prev_row = col, row

    top_label = f"{(10 ** hi if logy else hi):.3g}"
    bottom_label = f"{(10 ** lo if logy else lo):.3g}"
    pad = max(len(top_label), len(bottom_label))
    lines = [f"{fig.figure_id}: {fig.title}"]
    for r, row in enumerate(grid):
        label = top_label if r == 0 else bottom_label if r == height - 1 else ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    x_first, x_last = str(fig.x_values[0]), str(fig.x_values[-1])
    axis = " " * pad + " +" + "-" * width
    xlab = (" " * (pad + 2) + x_first
            + " " * max(1, width - len(x_first) - len(x_last))
            + x_last)
    lines.append(axis)
    lines.append(xlab + f"   ({fig.x_label})")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}"
        + (f" [{s.unit}]" if s.unit else "")
        for i, s in enumerate(series))
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)
