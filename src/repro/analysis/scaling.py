"""Scalability analysis of benchmark sweeps.

Quantifies the shapes the paper describes in prose: speedup and parallel
efficiency curves, saturation ("the throughput … increases with increasing
number of worker role instances" — until where?), knees, crossovers between
competing series, and a Universal-Scalability-Law fit separating contention
from coherency costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

__all__ = [
    "speedup",
    "efficiency",
    "saturation_point",
    "knee_point",
    "crossover",
    "USLFit",
    "fit_usl",
]


def _validate(workers: Sequence[float], values: Sequence[float]) -> None:
    if len(workers) != len(values):
        raise ValueError(f"{len(workers)} workers vs {len(values)} values")
    if len(workers) < 2:
        raise ValueError("need at least two points")
    if any(w <= 0 for w in workers):
        raise ValueError("worker counts must be positive")
    if list(workers) != sorted(workers):
        raise ValueError("worker counts must be increasing")


def speedup(workers: Sequence[float], times: Sequence[float]) -> List[float]:
    """Speedup relative to the smallest worker count: ``t_1 / t_n``.

    ``times`` are per-worker completion times of a fixed total workload
    (the paper's upload phases), so perfect scaling gives speedup == n.
    """
    _validate(workers, times)
    if any(t <= 0 for t in times):
        raise ValueError("times must be positive")
    base = times[0] * workers[0]
    return [base / t / 1.0 for t in times]


def efficiency(workers: Sequence[float], times: Sequence[float]) -> List[float]:
    """Parallel efficiency: speedup / (n / n_min)."""
    s = speedup(workers, times)
    n0 = workers[0]
    return [si / (w / n0) for si, w in zip(s, workers)]


def saturation_point(workers: Sequence[float], throughput: Sequence[float],
                     *, threshold: float = 0.05) -> Optional[float]:
    """First worker count where throughput stops growing meaningfully.

    Returns the x where the marginal gain of the next doubling drops below
    ``threshold`` (fractional), or None if the series never saturates.
    """
    _validate(workers, throughput)
    for i in range(len(workers) - 1):
        if throughput[i] <= 0:
            continue
        gain = (throughput[i + 1] - throughput[i]) / throughput[i]
        if gain < threshold:
            return float(workers[i])
    return None


def knee_point(workers: Sequence[float], times: Sequence[float],
               *, threshold: float = 0.20) -> Optional[float]:
    """First worker count where a (flat-ish) time series starts climbing.

    Used on the paper's Figure 8 curves: "almost constant till 4 concurrent
    clients" — the knee is where time exceeds the initial plateau by
    ``threshold`` (fractional).
    """
    _validate(workers, times)
    base = times[0]
    if base <= 0:
        raise ValueError("times must be positive")
    for w, t in zip(workers, times):
        if t > base * (1 + threshold):
            return float(w)
    return None


def crossover(workers: Sequence[float], series_a: Sequence[float],
              series_b: Sequence[float]) -> Optional[float]:
    """Interpolated x where series A overtakes series B (or None).

    Returns the first crossing point going left to right; series equal at a
    sample count as crossing there.
    """
    _validate(workers, series_a)
    _validate(workers, series_b)
    diff = [a - b for a, b in zip(series_a, series_b)]
    for i in range(len(diff) - 1):
        d0, d1 = diff[i], diff[i + 1]
        if d0 == 0:
            return float(workers[i])
        if d0 * d1 < 0:
            # Linear interpolation of the zero crossing.
            frac = abs(d0) / (abs(d0) + abs(d1))
            return float(workers[i] + frac * (workers[i + 1] - workers[i]))
    if diff[-1] == 0:
        return float(workers[-1])
    return None


@dataclass(frozen=True)
class USLFit:
    """Universal Scalability Law fit: C(n) = n / (1 + a(n-1) + b n(n-1)).

    ``alpha`` is contention (serialization), ``beta`` coherency (crosstalk);
    ``peak_workers`` the n maximizing throughput (infinite if beta == 0).
    """

    alpha: float
    beta: float
    gamma: float  # throughput of one worker (scale factor)
    residual: float

    def predict(self, n: float) -> float:
        return self.gamma * n / (1 + self.alpha * (n - 1)
                                 + self.beta * n * (n - 1))

    @property
    def peak_workers(self) -> float:
        if self.beta <= 0:
            return float("inf")
        return float(np.sqrt((1 - self.alpha) / self.beta))


def fit_usl(workers: Sequence[float], throughput: Sequence[float]) -> USLFit:
    """Least-squares USL fit to a throughput-vs-workers series."""
    _validate(workers, throughput)
    n = np.asarray(workers, dtype=float)
    x = np.asarray(throughput, dtype=float)
    if np.any(x <= 0):
        raise ValueError("throughput must be positive")

    gamma0 = x[0] / n[0]

    def residuals(params):
        alpha, beta, gamma = params
        pred = gamma * n / (1 + alpha * (n - 1) + beta * n * (n - 1))
        return pred - x

    result = least_squares(
        residuals, x0=[0.05, 0.001, gamma0],
        bounds=([0.0, 0.0, 1e-12], [1.0, 1.0, np.inf]),
    )
    alpha, beta, gamma = result.x
    return USLFit(alpha=float(alpha), beta=float(beta), gamma=float(gamma),
                  residual=float(np.sqrt(np.mean(result.fun ** 2))))
