"""Backend selection: run one benchmark body on the DES fabric or the emulator.

Role bodies are written once, in simkit style (``yield from client.op(...)``,
``yield env.timeout(...)``).  A :class:`Backend` decides what that means:

* :class:`SimBackend` — the default: bodies run as discrete-event processes
  over :class:`~repro.sim.clients.SimStorageAccount`, timing comes from the
  cluster cost model, and runs are bit-reproducible under a seed.
* :class:`EmulatorBackend` — bodies run in real threads over an
  :class:`~repro.emulator.clients.EmulatorAccount`.  Client calls are bound
  to never-yielding generator shims (so ``yield from`` returns the blocking
  result immediately) and a per-thread trampoline turns ``env.timeout``
  yields into scaled wall-clock sleeps.  Timing is wall-clock and therefore
  not reproducible — this backend exists to exercise the benchmark bodies
  against the concurrent emulator, not to regenerate the paper's numbers.

Both go through the same operation pipeline (:mod:`repro.pipeline`), so
fault plans, throttles, and Storage Analytics behave identically.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, List

from .compute import Deployment
from .compute.roles import RoleContext
from .core.metrics import BenchResult, PhaseRecorder, set_phase_hook
from .emulator import EmulatorAccount
from .emulator.clients import _EmulatorClientBase
from .observability import Tracer, sim_worker_resolver, thread_worker_resolver
from .pipeline import derive_client_class, locked_local_method, shim_method
from .sim import SimStorageAccount
from .simkit import Environment

__all__ = ["Backend", "SimBackend", "EmulatorBackend", "GeoBackend",
           "ServiceBackend", "BACKENDS", "get_backend"]


def _collect(config, recorders, trace=None) -> BenchResult:
    """Validate worker return values and wrap them up."""
    bad = [r for r in recorders if not isinstance(r, PhaseRecorder)]
    if bad:
        raise RuntimeError(
            f"{len(bad)} worker(s) did not return a PhaseRecorder "
            f"(first: {bad[0]!r}); check the role body for failures"
        )
    return BenchResult(config.workers, recorders, label=config.label,
                       trace=trace)


@contextmanager
def _maybe_trace(config, account, worker_resolver):
    """Install a Tracer on the account when ``config.trace`` asks for one.

    The metrics phase hook is global, so it is installed only for the
    duration of the run (concurrent traced runs in one process would
    race — benchmark runs are sequential by construction).
    """
    if not config.trace:
        yield None
        return
    tracer = Tracer(trace_id=config.label or "run",
                    worker_resolver=worker_resolver)
    tracer.install(account)
    set_phase_hook(tracer.on_phase)
    try:
        yield tracer
    finally:
        set_phase_hook(None)


class Backend:
    """What a benchmark backend must provide (structural protocol)."""

    #: CLI name: ``"sim"`` or ``"emulator"``.
    name: str

    def run(self, body_factory: Callable[[], Callable],
            config) -> BenchResult:  # pragma: no cover - protocol
        """Run ``config.workers`` instances of the body to completion.

        ``body_factory`` builds a fresh role body (bodies close over
        benchmark configs); each instance must return its
        :class:`~repro.core.metrics.PhaseRecorder`.  ``config`` is a
        :class:`~repro.core.runner.RunConfig`.
        """
        raise NotImplementedError


class SimBackend(Backend):
    """Discrete-event backend: the paper-faithful, seeded default."""

    name = "sim"

    def _make_account(self, env: Environment, config):
        return SimStorageAccount(
            env, limits=config.limits, calibration=config.calibration,
            seed=config.seed, fifo_jitter_seed=config.fifo_jitter_seed,
        )

    def run(self, body_factory, config) -> BenchResult:
        env = Environment()
        account = self._make_account(env, config)
        if config.instrument is not None:
            config.instrument(account)
        deployment = Deployment(
            env, account, body_factory(),
            instances=config.workers, vm_size=config.vm_size,
            name="azurebench",
        )
        with _maybe_trace(config, account,
                          sim_worker_resolver(env)) as tracer:
            recorders = deployment.run()
        return _collect(config, recorders, trace=tracer)


class GeoBackend(SimBackend):
    """DES backend over a geo-replicated (RA-GRS) account.

    Bodies run unchanged against :class:`~repro.geo.account.GeoAccount`
    clients: every call crosses the primary's pipeline, mutations land
    on the asynchronous replication log, and reads fall back to the
    read-only secondary during region outages.  With no fault plan
    installed the figures match the plain ``sim`` backend's shape
    (primary timing is identical; the replicator runs in the
    background), which makes this the drop-in way to regenerate a
    figure *while* a region is failing.
    """

    name = "geo"

    def __init__(self, lag_s: float = 2.0) -> None:
        self.lag_s = lag_s

    def _make_account(self, env: Environment, config):
        from .geo import GeoAccount
        return GeoAccount(
            env, limits=config.limits, calibration=config.calibration,
            seed=config.seed, fifo_jitter_seed=config.fifo_jitter_seed,
            lag_s=self.lag_s,
        )


# -- emulator backend --------------------------------------------------------

class _EmulatorTimeout:
    """Sleep marker yielded by :meth:`EmulatorEnv.timeout`."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds


class EmulatorEnv:
    """The slice of the simkit ``Environment`` surface role bodies use.

    ``now`` reads the account's clock in *virtual* seconds (wall seconds
    divided by ``time_scale``); ``timeout`` returns a marker the worker
    trampoline turns into a scaled ``time.sleep``.  One virtual second
    therefore costs ``time_scale`` wall seconds everywhere.
    """

    def __init__(self, account: EmulatorAccount, time_scale: float) -> None:
        self._account = account
        self.time_scale = time_scale

    @property
    def now(self) -> float:
        return self._account.state.clock.now() / self.time_scale

    def timeout(self, delay: float = 0.0) -> _EmulatorTimeout:
        return _EmulatorTimeout(delay)


_SHIM_DOC = "Emulator client whose methods are never-yielding generators."

_ShimBlobClient = derive_client_class(
    "_ShimBlobClient", "blob", _EmulatorClientBase,
    method_factory=shim_method, local_factory=locked_local_method,
    doc=_SHIM_DOC)
_ShimQueueClient = derive_client_class(
    "_ShimQueueClient", "queue", _EmulatorClientBase,
    method_factory=shim_method, local_factory=locked_local_method,
    doc=_SHIM_DOC)
_ShimTableClient = derive_client_class(
    "_ShimTableClient", "table", _EmulatorClientBase,
    method_factory=shim_method, local_factory=locked_local_method,
    doc=_SHIM_DOC)
_ShimCacheClient = derive_client_class(
    "_ShimCacheClient", "cache", _EmulatorClientBase,
    method_factory=shim_method, local_factory=locked_local_method,
    doc=_SHIM_DOC)


class ShimAccount:
    """An emulator account dressed up as a :class:`SimStorageAccount`.

    Its clients are generator shims, so sim-style bodies (``yield from
    client.op(...)``) drive the thread-safe emulator unchanged.
    """

    _CLIENTS = {
        "blob_client": _ShimBlobClient,
        "queue_client": _ShimQueueClient,
        "table_client": _ShimTableClient,
        "cache_client": _ShimCacheClient,
    }

    def __init__(self, account: EmulatorAccount, env: EmulatorEnv) -> None:
        self.emulator = account
        self.env = env
        self.state = account.state
        self.cache_state = account.cache_state
        self.pipeline = account.pipeline

    def _make(self, kind: str):
        client = self._CLIENTS[kind](self.emulator)
        client.env = self.env  # QueueBarrier's fallback clock source
        return client

    def blob_client(self):
        return self._make("blob_client")

    def queue_client(self):
        return self._make("queue_client")

    def table_client(self):
        return self._make("table_client")

    def cache_client(self):
        return self._make("cache_client")


def _trampoline(gen, env: EmulatorEnv):
    """Drive one role body to completion on the current thread."""
    try:
        value = next(gen)
        while True:
            if not isinstance(value, _EmulatorTimeout):
                raise TypeError(
                    f"emulator backend cannot wait on {value!r}; role "
                    f"bodies may only yield env.timeout(...) sleeps and "
                    f"client calls")
            if value.seconds > 0:
                time.sleep(value.seconds * env.time_scale)
            value = gen.send(None)
    except StopIteration as stop:
        return stop.value


class EmulatorBackend(Backend):
    """Threaded backend over the in-process emulator.

    ``time_scale`` compresses virtual time: the bodies' one-second barrier
    polls and think times sleep ``time_scale`` wall seconds each.  The
    cost model does not exist here, so ``config.seed`` and
    ``config.calibration`` are ignored; measured throughputs reflect the
    host machine, not the 2012 fabric.
    """

    name = "emulator"

    def __init__(self, time_scale: float = 0.01) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        self.time_scale = time_scale

    def run(self, body_factory, config) -> BenchResult:
        account = EmulatorAccount(
            limits=config.limits, fifo_jitter_seed=config.fifo_jitter_seed,
        )
        env = EmulatorEnv(account, self.time_scale)
        shim = ShimAccount(account, env)
        if config.instrument is not None:
            config.instrument(shim)
        body = body_factory()
        results: List[object] = [None] * config.workers
        failures: List[BaseException] = []

        def work(role_id: int) -> None:
            ctx = RoleContext(
                env, role_id=role_id, instance_count=config.workers,
                account=shim, vm_size=config.vm_size, role_name="azurebench",
            )
            try:
                results[role_id] = _trampoline(body(ctx), env)
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,),
                             name=f"azurebench#{i}", daemon=True)
            for i in range(config.workers)
        ]
        with _maybe_trace(config, account,
                          thread_worker_resolver()) as tracer:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if failures:
            raise failures[0]
        return _collect(config, results, trace=tracer)


# -- service backend ---------------------------------------------------------

class _ServiceEnv:
    """The ``env`` surface for bodies running against a live cluster.

    There is no local account clock here (state lives across sockets on
    the data nodes), so virtual time is wall time since the run began,
    divided by ``time_scale`` — the same contract as
    :class:`EmulatorEnv`.
    """

    def __init__(self, time_scale: float) -> None:
        self.time_scale = time_scale
        self._origin = time.monotonic()

    @property
    def now(self) -> float:
        return (time.monotonic() - self._origin) / self.time_scale

    def timeout(self, delay: float = 0.0) -> _EmulatorTimeout:
        return _EmulatorTimeout(delay)


class _ServiceShimAccount:
    """A live SN/DN cluster dressed up as a ``SimStorageAccount``.

    Clients are the wire shims from :mod:`repro.service.client` — each
    ``*_client()`` call opens its own signed HTTP connections, so every
    worker thread talks to the cluster over its own sockets, like real
    role instances would.
    """

    def __init__(self, endpoints_for, account: str, key: str,
                 env: _ServiceEnv) -> None:
        self._endpoints_for = endpoints_for
        self._account = account
        self._key = key
        self.env = env
        self._next = 0

    def _connection(self):
        from .service.client import ServiceConnection
        endpoints = self._endpoints_for(self._next)
        self._next += 1
        return ServiceConnection(endpoints, self._account, self._key)

    def _make(self, cls):
        client = cls(self._connection())
        client.env = self.env  # QueueBarrier's fallback clock source
        return client

    def blob_client(self):
        from .service.client import WireBlobClient
        return self._make(WireBlobClient)

    def queue_client(self):
        from .service.client import WireQueueClient
        return self._make(WireQueueClient)

    def table_client(self):
        from .service.client import WireTableClient
        return self._make(WireTableClient)

    def cache_client(self):
        raise NotImplementedError(
            "the co-located cache has no wire protocol; run cache "
            "workloads on the sim or emulator backend")


class ServiceBackend(Backend):
    """Threaded backend over a live in-process SN/DN cluster.

    Each worker thread drives signed HTTP requests through the service
    nodes, which route to the data-node shards — the full request path a
    real 2012 deployment exercised (auth, routing, fan-out) minus the
    datacenter network.  Like the emulator backend, timing is wall-clock
    and machine-dependent; this backend validates the wire tier and the
    benchmark bodies, not the paper's numbers.
    """

    name = "service"

    def __init__(self, time_scale: float = 0.01, nodes: int = 1,
                 dn: int = 2, enforce_targets: bool = False) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        self.time_scale = time_scale
        self.nodes = nodes
        self.dn = dn
        self.enforce_targets = enforce_targets

    def run(self, body_factory, config) -> BenchResult:
        if config.trace:
            raise NotImplementedError(
                "tracing hooks into the in-process pipeline; the service "
                "backend's pipeline lives across sockets — use --backend "
                "sim or emulator for traced runs")
        from .service import DEV_KEY, TenantConfig, TenantDirectory
        from .service.cluster import ClusterRunner, ServiceCluster

        tenants = TenantDirectory([TenantConfig.development(
            limits=config.limits, enforce_targets=self.enforce_targets)])
        cluster = ServiceCluster(
            nodes=self.nodes, dn=self.dn, tenants=tenants,
            fifo_jitter_seed=config.fifo_jitter_seed)
        runner = ClusterRunner(cluster)
        runner.start()
        try:
            env = _ServiceEnv(self.time_scale)
            shim = _ServiceShimAccount(
                lambda i: cluster.endpoints(i % self.nodes),
                tenants.accounts()[0], DEV_KEY, env)
            if config.instrument is not None:
                config.instrument(shim)
            body = body_factory()
            results: List[object] = [None] * config.workers
            failures: List[BaseException] = []

            def work(role_id: int) -> None:
                ctx = RoleContext(
                    env, role_id=role_id, instance_count=config.workers,
                    account=shim, vm_size=config.vm_size,
                    role_name="azurebench",
                )
                try:
                    results[role_id] = _trampoline(body(ctx), env)
                except BaseException as exc:  # surfaced after join
                    failures.append(exc)

            threads = [
                threading.Thread(target=work, args=(i,),
                                 name=f"azurebench#{i}", daemon=True)
                for i in range(config.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if failures:
                raise failures[0]
            return _collect(config, results)
        finally:
            runner.stop()


BACKENDS = {"sim": SimBackend, "emulator": EmulatorBackend,
            "geo": GeoBackend, "service": ServiceBackend}


def get_backend(backend) -> Backend:
    """Resolve a backend instance from a name or pass one through."""
    if isinstance(backend, Backend):
        return backend
    try:
        return BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from "
            f"{sorted(BACKENDS)}") from None
