"""Reporting and figure-regeneration layer of the reproduction."""

from .compare import ComparisonRow, compare_to_paper, comparison_table
from .executor import SweepExecutor, default_jobs, run_chaos_matrix
from .figures import (
    BenchScale,
    FigureRunner,
    PAPER_SCALE,
    QUICK_SCALE,
    SWEEP_BUILDERS,
    active_scale,
    build_body_factory,
    figure_table1,
)
from .paper import PAPER_ANCHORS, PaperAnchor, qualitative_claims
from .reportgen import generate_report
from .report import FigureData, Series, format_table

__all__ = [
    "BenchScale",
    "FigureRunner",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "SWEEP_BUILDERS",
    "SweepExecutor",
    "active_scale",
    "build_body_factory",
    "default_jobs",
    "run_chaos_matrix",
    "figure_table1",
    "FigureData",
    "Series",
    "format_table",
    "PAPER_ANCHORS",
    "PaperAnchor",
    "qualitative_claims",
    "ComparisonRow",
    "compare_to_paper",
    "comparison_table",
    "generate_report",
]
