"""Paper-vs-measured comparison: anchors and qualitative claims.

Turns a :class:`~repro.bench.figures.FigureRunner`'s sweeps into a verdict
table — for each number the paper reports, the measured value, the ratio,
and whether the qualitative claim behind the figure holds.  Used by the
``EXPERIMENTS.md`` generator and by the reproduction-audit test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import (
    OP_GET,
    OP_INSERT,
    OP_PEEK,
    OP_PUT,
    OP_QUERY,
    OP_UPDATE,
    PHASE_BLOCK_FULL_DOWNLOAD,
    PHASE_BLOCK_SEQ_DOWNLOAD,
    PHASE_BLOCK_UPLOAD,
    PHASE_PAGE_RANDOM_DOWNLOAD,
    PHASE_PAGE_UPLOAD,
    phase_name,
    shared_phase_name,
    table_phase_name,
)
from ..storage import KB
from .figures import FigureRunner
from .paper import PAPER_ANCHORS
from .report import format_table

__all__ = ["ComparisonRow", "compare_to_paper", "comparison_table"]


@dataclass
class ComparisonRow:
    """One paper-vs-measured line."""

    key: str
    description: str
    paper_value: Optional[float]
    measured: float
    unit: str
    holds: bool
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper_value in (None, 0):
            return None
        return self.measured / self.paper_value


def compare_to_paper(runner: FigureRunner) -> List[ComparisonRow]:
    """Evaluate every anchor and shape claim against the runner's sweeps.

    Anchor throughputs are compared at the sweep's top worker count; the
    paper measured at 96, so with a quick-scale runner expect ratios below
    one — the *holds* flag for anchors therefore checks the ratio only when
    the sweep reaches 96 workers, and always checks the shape claims.
    """
    rows: List[ComparisonRow] = []
    scale = runner.scale
    top = scale.worker_counts[-1]
    at_paper_scale = top >= 96
    blob = runner.blob_sweep()[top]
    qsep = runner.queue_separate_sweep()
    qshared = runner.queue_shared_sweep()
    table = runner.table_sweep()

    def anchor_row(key, phase, note=""):
        anchor = PAPER_ANCHORS[key]
        measured = blob.phase(phase).throughput_mb_per_s
        holds = True
        if at_paper_scale:
            ratio = measured / anchor.value
            holds = 0.5 <= ratio <= 1.5
        rows.append(ComparisonRow(
            key=key, description=anchor.quote[:60] + "…",
            paper_value=anchor.value, measured=measured, unit="MB/s",
            holds=holds, note=note or f"at {top} workers"))

    anchor_row("blob_max_download_mbps", PHASE_BLOCK_FULL_DOWNLOAD)
    anchor_row("blob_max_upload_mbps", PHASE_PAGE_UPLOAD)
    anchor_row("blob_block_upload_mbps", PHASE_BLOCK_UPLOAD)
    anchor_row("blob_page_chunk_download_mbps", PHASE_PAGE_RANDOM_DOWNLOAD)
    anchor_row("blob_block_chunk_download_mbps", PHASE_BLOCK_SEQ_DOWNLOAD)

    # -- shape claims ----------------------------------------------------
    def claim(key, description, measured, holds, unit="", note=""):
        rows.append(ComparisonRow(key=key, description=description,
                                  paper_value=None, measured=measured,
                                  unit=unit, holds=holds, note=note))

    page_up = blob.phase(PHASE_PAGE_UPLOAD).throughput_mb_per_s
    block_up = blob.phase(PHASE_BLOCK_UPLOAD).throughput_mb_per_s
    # The ~3x gap is a saturation effect; below 96 workers only the
    # ordering is required.
    gap_holds = (1.8 <= page_up / block_up <= 4.5 if at_paper_scale
                 else page_up > block_up)
    claim("fig4_upload_page_gt_block",
          "page upload ~3x block upload (at saturation)",
          page_up / block_up, gap_holds, unit="ratio")

    rand = blob.phase(PHASE_PAGE_RANDOM_DOWNLOAD).throughput_mb_per_s
    seq = blob.phase(PHASE_BLOCK_SEQ_DOWNLOAD).throughput_mb_per_s
    claim("fig5_block_gt_page", "sequential block > random page reads",
          seq / rand, seq > rand, unit="ratio")

    def pick(ladder, preferred=32 * KB):
        return preferred if preferred in ladder else ladder[len(ladder) // 2]

    size = pick(scale.queue_message_sizes)
    tsize = pick(scale.table_entity_sizes)
    q_top = qsep[top]
    peek = q_top.phase(phase_name(OP_PEEK, size)).mean_worker_time
    put = q_top.phase(phase_name(OP_PUT, size)).mean_worker_time
    get = q_top.phase(phase_name(OP_GET, size)).mean_worker_time
    claim("fig6_peek_lt_put_lt_get", "Peek < Put < Get", get / peek,
          peek < put < get, unit="get/peek")

    if {8 * KB, 16 * KB, 32 * KB} <= set(scale.queue_message_sizes):
        g16 = q_top.phase(phase_name(OP_GET, 16 * KB)).mean_worker_time
        g8 = q_top.phase(phase_name(OP_GET, 8 * KB)).mean_worker_time
        g32 = q_top.phase(phase_name(OP_GET, 32 * KB)).mean_worker_time
        claim("fig6_get_16k_anomaly", "16 KB Get slower than 8 and 32 KB",
              g16 / max(g8, g32), g16 > g8 and g16 > g32, unit="ratio")

    lo_think = scale.shared_think_times[0]
    hi_think = scale.shared_think_times[-1]
    get_lo = qshared[top].phase(
        shared_phase_name(OP_GET, lo_think)).mean_worker_time
    get_hi = qshared[top].phase(
        shared_phase_name(OP_GET, hi_think)).mean_worker_time
    # Think-time relief is a contention effect: it needs enough workers on
    # the shared queue to matter.  Below saturation only require "no harm".
    think_ratio = get_lo / get_hi if get_hi else 1.0
    think_holds = (think_ratio > 1.15 if at_paper_scale
                   else get_hi <= get_lo * 1.10)
    claim("fig7_think_time_helps",
          "longer think time lowers shared-queue op time (under contention)",
          think_ratio, think_holds,
          unit="ratio", note=f"think {lo_think:g}s vs {hi_think:g}s")

    t_top = table[top]
    tq = t_top.phase(table_phase_name(OP_QUERY, tsize)).mean_worker_time
    tu = t_top.phase(table_phase_name(OP_UPDATE, tsize)).mean_worker_time
    ti = t_top.phase(table_phase_name(OP_INSERT, tsize)).mean_worker_time
    claim("fig8_query_cheapest_update_dearest",
          "query cheapest, update dearest", tu / tq,
          tq < ti < tu, unit="update/query")

    lo_w = scale.worker_counts[0]
    big_size = max(scale.table_entity_sizes)
    small_size = min(scale.table_entity_sizes)
    big_growth = (
        table[top].phase(table_phase_name(OP_UPDATE, big_size)).mean_worker_time
        / table[lo_w].phase(table_phase_name(OP_UPDATE, big_size)).mean_worker_time)
    small_growth = (
        table[top].phase(table_phase_name(OP_UPDATE, small_size)).mean_worker_time
        / table[lo_w].phase(table_phase_name(OP_UPDATE, small_size)).mean_worker_time)
    claim("fig8_big_entities_blow_up",
          "largest entity size grows with workers more than smallest",
          big_growth / small_growth, big_growth > small_growth,
          unit="growth ratio")

    q_growth = (qsep[top].phase(phase_name(OP_GET, size)).mean_op_time
                / qsep[lo_w].phase(phase_name(OP_GET, size)).mean_op_time)
    t_growth = (table[top].phase(table_phase_name(OP_UPDATE, tsize)).mean_op_time
                / table[lo_w].phase(table_phase_name(OP_UPDATE, tsize)).mean_op_time)
    claim("fig9_queue_scales_better",
          "queue per-op time grows less than table per-op time",
          t_growth / q_growth, t_growth >= q_growth, unit="ratio")

    return rows


def comparison_table(rows: List[ComparisonRow]) -> str:
    """Render comparison rows as an aligned text table."""
    out = [["claim / anchor", "paper", "measured", "ratio", "holds"]]
    for row in rows:
        out.append([
            row.key,
            f"{row.paper_value:g} {row.unit}" if row.paper_value is not None
            else "(shape)",
            f"{row.measured:.3g} {row.unit}",
            f"{row.ratio:.2f}" if row.ratio is not None else "-",
            "yes" if row.holds else "NO",
        ])
    return format_table(out)
