"""Parallel sweep execution: fan independent cells over a process pool.

Every figure in the paper is a sweep over independent worker counts, and
every cell of that sweep (one ``label@workers`` benchmark run) builds its
own seeded :class:`~repro.simkit.environment.Environment` and storage
account from scratch.  Cells therefore share *nothing* at runtime — the
only coupling is the deterministic seed each cell derives from the scale
— so a campaign can fan its cells out over a
:class:`concurrent.futures.ProcessPoolExecutor` and merge the results in
serial order without moving a single simulated number: a parallel run is
bit-identical to the serial one, cell for cell (pinned by
``tests/bench/test_parallel_equivalence.py``).

Cells are described by plain picklable data — ``(scale, label,
workers, backend-name)`` — and rebuilt inside the pool worker through
:func:`repro.bench.figures.build_body_factory`, so no closures cross the
process boundary.  Checkpointed cells are resolved in the parent before
anything is submitted (the checkpoint file never travels either), and
each finished cell is persisted the moment its future completes, exactly
as the serial path writes it.

:func:`run_chaos_matrix` applies the same fan-out to the chaos harness's
seed matrices: one seeded :func:`~repro.chaos.runner.run_chaos` per
process, verdicts merged in seed order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.metrics import BenchResult
from ..core.runner import RunConfig, run_bench

__all__ = ["SweepExecutor", "default_jobs", "run_chaos_matrix"]


def default_jobs() -> int:
    """A sensible ``--jobs`` default: every core the scheduler grants us."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_cell(scale, label: str, workers: int, backend: str) -> BenchResult:
    """Pool worker: run one sweep cell from its picklable description.

    Mirrors the serial path's per-cell ``RunConfig`` exactly: the cell
    re-seeds its own fresh environment from ``scale.seed``, so the result
    is bit-identical no matter which process (or how many siblings) ran
    it.  Tracing and instrument hooks are never set here — runners that
    need them stay serial (``FigureRunner._parallel_eligible``).
    """
    from .figures import build_body_factory

    config = RunConfig(seed=scale.seed, workers=workers,
                       label=f"{label}@{workers}", backend=backend)
    return run_bench(build_body_factory(scale, label), config)


def _run_chaos_cell(figure: str, profile: str, seed: int,
                    retry_budget: int, splice: bool):
    """Pool worker: one seeded chaos run; only the verdict crosses back."""
    from ..chaos import run_chaos

    return run_chaos(figure, profile, seed, retry_budget=retry_budget,
                     splice=splice)


class SweepExecutor:
    """Fans sweep cells out over ``jobs`` worker processes.

    The executor owns scheduling only; what a cell *is* lives in
    :mod:`repro.bench.figures` (the sweep registry) and what it *means*
    in :mod:`repro.core.runner`.  Results come back keyed exactly like
    the serial sweeps: ``{label: {workers: BenchResult}}``, iteration
    order matching the serial path (labels as given, worker counts as
    the scale orders them).
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def run_sweeps(self, scale, labels: Sequence[str], *,
                   backend: str = "sim",
                   checkpoint=None) -> Dict[str, Dict[int, BenchResult]]:
        """Run every cell of ``labels`` x ``scale.worker_counts``.

        Checkpoint hits load in the parent and are never submitted;
        misses run in the pool and land in the checkpoint as their
        futures complete.  The merged mapping is ordered like the serial
        sweeps regardless of completion order.
        """
        cells: List[Tuple[str, int]] = [
            (label, workers)
            for label in labels for workers in scale.worker_counts]
        results: Dict[Tuple[str, int], BenchResult] = {}
        pending: List[Tuple[str, int]] = []
        for label, workers in cells:
            cached = (checkpoint.get(f"{label}@{workers}")
                      if checkpoint is not None else None)
            if cached is not None:
                results[(label, workers)] = cached
            else:
                pending.append((label, workers))

        if pending:
            if self.jobs == 1:
                for label, workers in pending:
                    result = _run_cell(scale, label, workers, backend)
                    if checkpoint is not None:
                        checkpoint.put(f"{label}@{workers}", result)
                    results[(label, workers)] = result
            else:
                max_workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = {
                        pool.submit(_run_cell, scale, label, workers,
                                    backend): (label, workers)
                        for label, workers in pending
                    }
                    for future in as_completed(futures):
                        label, workers = futures[future]
                        result = future.result()
                        if checkpoint is not None:
                            checkpoint.put(f"{label}@{workers}", result)
                        results[(label, workers)] = result

        # Ordered merge: serial iteration order, whatever finished first.
        return {
            label: {workers: results[(label, workers)]
                    for workers in scale.worker_counts}
            for label in labels
        }


def run_chaos_matrix(figure: str, profile: str, seeds: Sequence[int], *,
                     jobs: Optional[int] = None, retry_budget: int = 64,
                     splice: bool = False) -> Dict[int, object]:
    """Run one chaos workload across a seed matrix, optionally in parallel.

    Returns ``{seed: ChaosVerdict}`` in the order seeds were given.
    Each seed is fully independent (its own schedule, environment, and
    account), so the fan-out cannot change any verdict — a parallel
    matrix equals running ``repro chaos --seed s`` once per seed.
    """
    seeds = list(seeds)
    if jobs is None or jobs <= 1 or len(seeds) <= 1:
        return {seed: _run_chaos_cell(figure, profile, seed, retry_budget,
                                      splice)
                for seed in seeds}
    verdicts: Dict[int, object] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(seeds))) as pool:
        futures = {
            pool.submit(_run_chaos_cell, figure, profile, seed,
                        retry_budget, splice): seed
            for seed in seeds
        }
        for future in as_completed(futures):
            verdicts[futures[future]] = future.result()
    return {seed: verdicts[seed] for seed in seeds}
