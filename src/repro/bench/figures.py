"""Regeneration harness for every table and figure in the paper.

:class:`FigureRunner` runs the AzureBench sweeps on the simulated fabric and
shapes the results into :class:`~repro.bench.report.FigureData` matching the
paper's plots:

* Table I — VM configurations,
* Fig 4   — Blob storage throughput & time (upload + whole-blob download),
* Fig 5   — Blob download one page/block at a time,
* Fig 6   — Queue benchmarks, separate queue per worker (Put/Peek/Get),
* Fig 7   — Queue benchmarks, single shared queue (think times),
* Fig 8   — Table storage (Insert/Query/Update/Delete),
* Fig 9   — Per-operation time, Queue vs Table.

Sweep results are cached per scale so figures sharing a run (4 & 5; 6 & 9;
8 & 9) do not recompute it.  ``QUICK_SCALE`` keeps the full suite fast for
CI; ``PAPER_SCALE`` uses the paper's parameters (AZUREBENCH_FULL=1).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..compute import TABLE_I
from ..core import (
    OP_DELETE,
    OP_GET,
    OP_INSERT,
    OP_PEEK,
    OP_PUT,
    OP_QUERY,
    OP_UPDATE,
    PHASE_BLOCK_FULL_DOWNLOAD,
    PHASE_BLOCK_SEQ_DOWNLOAD,
    PHASE_BLOCK_UPLOAD,
    PHASE_PAGE_FULL_DOWNLOAD,
    PHASE_PAGE_RANDOM_DOWNLOAD,
    PHASE_PAGE_UPLOAD,
    BenchResult,
    BlobBenchConfig,
    RunConfig,
    SeparateQueueBenchConfig,
    SharedQueueBenchConfig,
    TableBenchConfig,
    blob_bench_body,
    phase_name,
    separate_queue_bench_body,
    shared_phase_name,
    shared_queue_bench_body,
    run_bench,
    table_bench_body,
    table_phase_name,
)
from ..storage import KB, MB
from .report import FigureData, format_table

__all__ = [
    "BenchScale",
    "MINI_SCALE",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "SWEEP_BUILDERS",
    "active_scale",
    "build_body_factory",
    "FigureRunner",
    "figure_table1",
]


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes of one benchmarking campaign."""

    name: str
    worker_counts: Tuple[int, ...]
    blob_total_chunks: int
    blob_repeats: int
    queue_total_messages: int
    queue_message_sizes: Tuple[int, ...]
    shared_total_transactions: int
    shared_think_times: Tuple[float, ...]
    table_entity_count: int
    table_entity_sizes: Tuple[int, ...]
    seed: int = 2012


#: Fast scale: full sweep in well under a minute.
QUICK_SCALE = BenchScale(
    name="quick",
    worker_counts=(1, 2, 4, 8, 16, 32),
    blob_total_chunks=64,
    blob_repeats=1,
    queue_total_messages=2_000,
    queue_message_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
    shared_total_transactions=2_000,
    shared_think_times=(1.0, 3.0, 5.0),
    table_entity_count=100,
    table_entity_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
)

#: Minimal scale for unit tests (e.g. serial-vs-parallel equivalence):
#: every sweep still exercises each figure's phases, but the full label
#: matrix runs in a couple of seconds.
MINI_SCALE = BenchScale(
    name="mini",
    worker_counts=(1, 2),
    blob_total_chunks=4,
    blob_repeats=1,
    queue_total_messages=24,
    queue_message_sizes=(4 * KB,),
    shared_total_transactions=24,
    shared_think_times=(1.0,),
    table_entity_count=6,
    table_entity_sizes=(4 * KB,),
)

#: The paper's parameters (Section IV): 100 MB blobs x 10 repeats, 20,000
#: queue messages, 500 entities, up to 96 workers.
PAPER_SCALE = BenchScale(
    name="paper",
    worker_counts=(1, 2, 4, 8, 16, 32, 48, 64, 80, 96),
    blob_total_chunks=100,
    blob_repeats=10,
    queue_total_messages=20_000,
    queue_message_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
    shared_total_transactions=20_000,
    shared_think_times=(1.0, 2.0, 3.0, 4.0, 5.0),
    table_entity_count=500,
    table_entity_sizes=(4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB),
)


def active_scale() -> BenchScale:
    """``PAPER_SCALE`` when AZUREBENCH_FULL=1, else ``QUICK_SCALE``."""
    return PAPER_SCALE if os.environ.get("AZUREBENCH_FULL") == "1" else QUICK_SCALE


# -- sweep registry ----------------------------------------------------------
# One entry per worker-count sweep behind the figures.  Builders are
# module-level functions of the scale so a sweep cell can be described by
# plain picklable data (scale, label, workers) and reconstructed inside a
# process-pool worker (:mod:`repro.bench.executor`) — the serial runner
# and the parallel executor build bodies through the same table.

def _blob_bodies(scale: BenchScale) -> Callable[[], Callable]:
    cfg = BlobBenchConfig(
        total_chunks=scale.blob_total_chunks,
        repeats=scale.blob_repeats,
        seed=scale.seed,
    )
    return lambda: blob_bench_body(cfg)


def _queue_separate_bodies(scale: BenchScale) -> Callable[[], Callable]:
    cfg = SeparateQueueBenchConfig(
        total_messages=scale.queue_total_messages,
        message_sizes=scale.queue_message_sizes,
        seed=scale.seed,
    )
    return lambda: separate_queue_bench_body(cfg)


def _queue_shared_bodies(scale: BenchScale) -> Callable[[], Callable]:
    cfg = SharedQueueBenchConfig(
        total_transactions=scale.shared_total_transactions,
        think_times=scale.shared_think_times,
        seed=scale.seed,
    )
    return lambda: shared_queue_bench_body(cfg)


def _table_bodies(scale: BenchScale) -> Callable[[], Callable]:
    cfg = TableBenchConfig(
        entity_count=scale.table_entity_count,
        entity_sizes=scale.table_entity_sizes,
        seed=scale.seed,
    )
    return lambda: table_bench_body(cfg)


#: Sweep label -> builder, in the serial execution order of ``all``.
SWEEP_BUILDERS: Dict[str, Callable[[BenchScale], Callable[[], Callable]]] = {
    "fig4/5": _blob_bodies,
    "fig6": _queue_separate_bodies,
    "fig7": _queue_shared_bodies,
    "fig8": _table_bodies,
}


def build_body_factory(scale: BenchScale, label: str) -> Callable[[], Callable]:
    """Zero-arg factory of fresh role bodies for one sweep label."""
    try:
        builder = SWEEP_BUILDERS[label]
    except KeyError:
        raise KeyError(
            f"unknown sweep {label!r}; choose from "
            f"{', '.join(sorted(SWEEP_BUILDERS))}") from None
    return builder(scale)


def figure_table1() -> FigureData:
    """Table I: VM configurations of Windows Azure roles."""
    fig = FigureData(
        "Table I", "Virtual machine configurations for web/worker roles",
        "VM Size", [v.name for v in TABLE_I],
    )
    fig.add("CPU Cores", [(-1.0 if v.shared_core else float(v.cpu_cores))
                          for v in TABLE_I],
            unit="cores; -1=shared")
    fig.add("Memory", [v.memory_mb / 1024 for v in TABLE_I], unit="GB")
    fig.add("Storage", [float(v.storage_gb) for v in TABLE_I], unit="GB")
    fig.notes = "Extra Small reports a shared core (-1 in the cores column)."
    return fig


class FigureRunner:
    """Runs and caches the sweeps behind Figures 4-9."""

    #: Sweep label -> cache attribute, in serial execution order.
    _SWEEP_CACHES = {
        "fig4/5": "_blob",
        "fig6": "_queue_sep",
        "fig7": "_queue_shared",
        "fig8": "_table",
    }

    def __init__(self, scale: Optional[BenchScale] = None, *,
                 backend: object = "sim", trace: bool = False,
                 checkpoint: Optional[object] = None,
                 instrument: Optional[Callable] = None,
                 jobs: Optional[int] = None,
                 arrivals: Optional[object] = None) -> None:
        self.scale = scale if scale is not None else active_scale()
        #: Which backend runs the sweeps: "sim" (default, seeded DES) or
        #: "emulator" (threaded, wall-clock); see :mod:`repro.backend`.
        self.backend = backend
        #: Opt-in trace-level observability (:mod:`repro.observability`):
        #: each sweep run carries a Tracer, reachable via :meth:`traces`.
        self.trace = trace
        #: Optional run store with ``get(label)``/``put(label, result)``
        #: (e.g. :class:`repro.chaos.checkpoint.RunCheckpoint`): completed
        #: ``label@workers`` cells are persisted as they finish and loaded
        #: instead of re-run, so an interrupted campaign resumes where it
        #: stopped.  Key it by :meth:`campaign_key`.
        self.checkpoint = checkpoint
        #: Optional per-run account hook (``RunConfig.instrument``).
        self.instrument = instrument
        #: Fan independent sweep cells out over this many worker processes
        #: (:class:`repro.bench.executor.SweepExecutor`).  ``None``/``1``
        #: keeps the serial path; parallel runs are cell-for-cell
        #: bit-identical to serial ones because every cell re-seeds its own
        #: fresh environment from the scale's seed either way.  Tracing and
        #: instrumented runs hold live objects that cannot cross a process
        #: boundary, so they always run serially regardless of ``jobs``.
        self.jobs = jobs
        #: Optional open-loop arrival spec
        #: (:class:`repro.traffic.ArrivalSpec`): worker starts in every
        #: sweep cell are staggered at the spec's seeded instants
        #: (``RunConfig.arrivals``).  Changes every number, so it is part
        #: of :meth:`campaign_key`; like tracing it pins sweeps to the
        #: serial path (the parallel executor rebuilds configs from the
        #: scale alone and would silently drop the spec).
        self.arrivals = arrivals
        self._blob: Optional[Dict[int, BenchResult]] = None
        self._queue_sep: Optional[Dict[int, BenchResult]] = None
        self._queue_shared: Optional[Dict[int, BenchResult]] = None
        self._table: Optional[Dict[int, BenchResult]] = None

    def campaign_key(self) -> str:
        """Fingerprint of everything that shapes the sweep numbers.

        Two runners agree on a campaign key iff their checkpointed cells
        are interchangeable: same scale (sizes, worker counts, seed) and
        same backend.  Tracing does not change the numbers (the tracer
        only reads the clock), so it is deliberately not part of the key.
        """
        backend = getattr(self.backend, "name", None) or str(self.backend)
        key: Dict[str, object] = {"scale": asdict(self.scale),
                                  "backend": backend}
        if self.arrivals is not None:
            # Only when set, so pre-existing campaign keys stay stable.
            key["arrivals"] = self.arrivals.describe()
        payload = json.dumps(key, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _parallel_eligible(self) -> bool:
        """Can sweeps fan out over a process pool?

        Tracing and instrument hooks hold live objects (tracers, fault
        plans, audit state) the parent needs after the run — those cells
        cannot cross a process boundary and stay serial.  Backend
        *instances* may carry unpicklable state, so only the registered
        backend names parallelize.
        """
        return (self.jobs is not None and self.jobs > 1
                and not self.trace
                and self.instrument is None
                and self.arrivals is None
                and isinstance(self.backend, str))

    def _cell_result(self, config: RunConfig, body_factory) -> BenchResult:
        """The single lookup-or-run path for one sweep cell.

        Checks the checkpoint first; only a miss enters
        :func:`~repro.core.runner.run_bench`, and the fresh result is
        persisted before it is returned.  Both the serial sweep and the
        parallel executor's checkpoint pre-pass resolve cells through
        this one helper, so there is exactly one place that decides
        whether a cell re-runs.
        """
        cached = (self.checkpoint.get(config.label)
                  if self.checkpoint is not None else None)
        if cached is not None:
            return cached
        result = run_bench(body_factory, config)
        if self.checkpoint is not None:
            self.checkpoint.put(config.label, result)
        return result

    def _sweep(self, label: str) -> Dict[int, BenchResult]:
        """One worker-count sweep, checkpointing each completed cell."""
        if self._parallel_eligible():
            from .executor import SweepExecutor
            return SweepExecutor(self.jobs).run_sweeps(
                self.scale, [label], backend=self.backend,
                checkpoint=self.checkpoint)[label]
        body_factory = build_body_factory(self.scale, label)
        base = RunConfig(seed=self.scale.seed, label=label,
                         backend=self.backend, trace=self.trace,
                         instrument=self.instrument,
                         arrivals=self.arrivals)
        results: Dict[int, BenchResult] = {}
        for workers in self.scale.worker_counts:
            config = replace(base, workers=workers,
                             label=f"{label}@{workers}")
            results[workers] = self._cell_result(config, body_factory)
        return results

    def prefetch(self, labels: Optional[List[str]] = None) -> None:
        """Warm the sweep caches, fanning cells out when ``jobs`` > 1.

        With a process pool this runs the *whole* remaining cell matrix
        (every missing sweep x every worker count) in one fan-out, so a
        multi-figure campaign (``repro all --jobs N``) keeps all N workers
        busy across sweep boundaries instead of draining one sweep at a
        time.  Serial runners get the same effect lazily, so this is a
        no-op for them.
        """
        if labels is None:
            labels = list(self._SWEEP_CACHES)
        missing = [label for label in labels
                   if getattr(self, self._SWEEP_CACHES[label]) is None]
        if not missing or not self._parallel_eligible():
            return
        from .executor import SweepExecutor
        sweeps = SweepExecutor(self.jobs).run_sweeps(
            self.scale, missing, backend=self.backend,
            checkpoint=self.checkpoint)
        for label, results in sweeps.items():
            setattr(self, self._SWEEP_CACHES[label], results)

    # -- sweeps (cached) -------------------------------------------------
    def blob_sweep(self) -> Dict[int, BenchResult]:
        if self._blob is None:
            self._blob = self._sweep("fig4/5")
        return self._blob

    def queue_separate_sweep(self) -> Dict[int, BenchResult]:
        if self._queue_sep is None:
            self._queue_sep = self._sweep("fig6")
        return self._queue_sep

    def queue_shared_sweep(self) -> Dict[int, BenchResult]:
        if self._queue_shared is None:
            self._queue_shared = self._sweep("fig7")
        return self._queue_shared

    def table_sweep(self) -> Dict[int, BenchResult]:
        if self._table is None:
            self._table = self._sweep("fig8")
        return self._table

    def traces(self) -> List[Tuple[str, int, object]]:
        """Tracers collected by the sweeps run so far, in sweep order.

        Returns ``[(label, workers, tracer), ...]`` — one entry per traced
        run (``trace=True``), e.g. ``("fig6@4", 4, <Tracer>)``.  Empty when
        tracing is off or no sweep has run yet.
        """
        out: List[Tuple[str, int, object]] = []
        for sweep in (self._blob, self._queue_sep,
                      self._queue_shared, self._table):
            if not sweep:
                continue
            for workers, result in sweep.items():
                tracer = getattr(result, "trace", None)
                if tracer is not None:
                    out.append((result.label, workers, tracer))
        return out

    # -- figures -----------------------------------------------------------
    def figure4(self) -> Tuple[FigureData, FigureData]:
        """Fig 4(a) throughput and 4(b) time of Blob storage benchmarks."""
        sweep = self.blob_sweep()
        workers = list(sweep)
        thr = FigureData("Fig 4a", "Blob storage benchmarks - throughput",
                         "workers", workers)
        tim = FigureData("Fig 4b", "Blob storage benchmarks - time",
                         "workers", workers)
        phases = [
            ("Page upload", PHASE_PAGE_UPLOAD),
            ("Block upload", PHASE_BLOCK_UPLOAD),
            ("Page download", PHASE_PAGE_FULL_DOWNLOAD),
            ("Block download", PHASE_BLOCK_FULL_DOWNLOAD),
        ]
        for label, key in phases:
            thr.add(label,
                    [sweep[w].phase(key).throughput_mb_per_s for w in workers],
                    unit="MB/s")
            tim.add(label,
                    [sweep[w].phase(key).mean_worker_time for w in workers],
                    unit="s")
        return thr, tim

    def figure5(self) -> Tuple[FigureData, FigureData]:
        """Fig 5: blob download one page/block at a time."""
        sweep = self.blob_sweep()
        workers = list(sweep)
        thr = FigureData("Fig 5a", "Chunked blob download - throughput",
                         "workers", workers)
        tim = FigureData("Fig 5b", "Chunked blob download - time",
                         "workers", workers)
        phases = [
            ("Page (random)", PHASE_PAGE_RANDOM_DOWNLOAD),
            ("Block (sequential)", PHASE_BLOCK_SEQ_DOWNLOAD),
        ]
        for label, key in phases:
            thr.add(label,
                    [sweep[w].phase(key).throughput_mb_per_s for w in workers],
                    unit="MB/s")
            tim.add(label,
                    [sweep[w].phase(key).mean_worker_time for w in workers],
                    unit="s")
        return thr, tim

    def figure6(self) -> Dict[str, FigureData]:
        """Fig 6(a-c): Put/Peek/Get time, separate queue per worker."""
        sweep = self.queue_separate_sweep()
        workers = list(sweep)
        out: Dict[str, FigureData] = {}
        for panel, op in (("Fig 6a", OP_PUT), ("Fig 6b", OP_PEEK),
                          ("Fig 6c", OP_GET)):
            fig = FigureData(
                panel, f"Queue benchmarks, separate queue per worker - "
                       f"{op.capitalize()} Message", "workers", workers)
            for size in self.scale.queue_message_sizes:
                fig.add(f"{size // KB} KB",
                        [sweep[w].phase(phase_name(op, size)).mean_worker_time
                         for w in workers],
                        unit="s")
            out[panel] = fig
        return out

    def figure7(self) -> Dict[str, FigureData]:
        """Fig 7(a-c): Put/Peek/Get time on a single shared queue."""
        sweep = self.queue_shared_sweep()
        workers = list(sweep)
        out: Dict[str, FigureData] = {}
        for panel, op in (("Fig 7a", OP_PUT), ("Fig 7b", OP_PEEK),
                          ("Fig 7c", OP_GET)):
            fig = FigureData(
                panel, f"Queue benchmarks, single shared queue - "
                       f"{op.capitalize()} Message (32 KB)", "workers", workers)
            for think in self.scale.shared_think_times:
                fig.add(f"think {think:.0f}s",
                        [sweep[w].phase(
                            shared_phase_name(op, think)).mean_worker_time
                         for w in workers],
                        unit="s")
            out[panel] = fig
        return out

    def figure8(self) -> Dict[str, FigureData]:
        """Fig 8(a-d): Insert/Query/Update/Delete time of Table storage."""
        sweep = self.table_sweep()
        workers = list(sweep)
        out: Dict[str, FigureData] = {}
        for panel, op in (("Fig 8a", OP_INSERT), ("Fig 8b", OP_QUERY),
                          ("Fig 8c", OP_UPDATE), ("Fig 8d", OP_DELETE)):
            fig = FigureData(
                panel, f"Table storage - {op.capitalize()}",
                "workers", workers)
            for size in self.scale.table_entity_sizes:
                fig.add(f"{size // KB} KB",
                        [sweep[w].phase(
                            table_phase_name(op, size)).mean_worker_time
                         for w in workers],
                        unit="s")
            out[panel] = fig
        return out

    def figure9(self, *, queue_size: Optional[int] = None,
                table_size: Optional[int] = None) -> FigureData:
        """Fig 9: per-operation time for Table and Queue services.

        "The reported time is the average time taken by an operation, i.e.
        the division of total time taken by all the worker roles to finish
        that operation, and the number of workers."
        """
        def pick(ladder, preferred=32 * KB):
            return preferred if preferred in ladder else ladder[len(ladder) // 2]

        if queue_size is None:
            queue_size = pick(self.scale.queue_message_sizes)
        if table_size is None:
            table_size = pick(self.scale.table_entity_sizes)
        qsweep = self.queue_separate_sweep()
        tsweep = self.table_sweep()
        workers = list(qsweep)
        fig = FigureData(
            "Fig 9", "Per-operation time, Queue (put/peek/get) vs Table "
                     f"(insert/query/update/delete) at {queue_size // KB} KB",
            "workers", workers)
        for op in (OP_PUT, OP_PEEK, OP_GET):
            fig.add(f"queue {op}",
                    [qsweep[w].phase(
                        phase_name(op, queue_size)).mean_op_time * 1000
                     for w in workers],
                    unit="ms/op")
        for op in (OP_INSERT, OP_QUERY, OP_UPDATE, OP_DELETE):
            fig.add(f"table {op}",
                    [tsweep[w].phase(
                        table_phase_name(op, table_size)).mean_op_time * 1000
                     for w in workers],
                    unit="ms/op")
        return fig

    def all_figures(self) -> List[FigureData]:
        """Every figure, in paper order (runs all sweeps)."""
        self.prefetch()
        f4a, f4b = self.figure4()
        f5a, f5b = self.figure5()
        out = [figure_table1(), f4a, f4b, f5a, f5b]
        out.extend(self.figure6().values())
        out.extend(self.figure7().values())
        out.extend(self.figure8().values())
        out.append(self.figure9())
        return out
