"""Paper-reported anchor values, for paper-vs-measured comparison.

Only numbers the paper states in text are recorded (the figures themselves
are not machine-readable); each entry cites the sentence it comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PaperAnchor", "PAPER_ANCHORS", "qualitative_claims"]


@dataclass(frozen=True)
class PaperAnchor:
    """One number the paper reports, with its provenance."""

    key: str
    value: float
    unit: str
    where: str
    quote: str


PAPER_ANCHORS: Dict[str, PaperAnchor] = {
    anchor.key: anchor
    for anchor in [
        PaperAnchor(
            "blob_max_download_mbps", 165.0, "MB/s", "IV.A / Fig 4",
            "The maximum throughput for blob download process was 165 MB/s, "
            "achieved for Block blob download using 96 workers",
        ),
        PaperAnchor(
            "blob_max_upload_mbps", 60.0, "MB/s", "IV.A / Fig 4",
            "the maximum throughput for blob upload process was 60 MB/s, "
            "realized for Page upload process using 96 workers",
        ),
        PaperAnchor(
            "blob_block_upload_mbps", 21.0, "MB/s", "IV.A / Fig 4",
            "The maximum throughput for a Block blob upload process was only "
            "a little over 21 MB/s using 96 workers",
        ),
        PaperAnchor(
            "blob_page_chunk_download_mbps", 71.0, "MB/s", "IV.A / Fig 5",
            "The maximum throughput achieved by Page wise blob downloading "
            "was more than 71 MB/s using 96 workers",
        ),
        PaperAnchor(
            "blob_block_chunk_download_mbps", 104.0, "MB/s", "IV.A / Fig 5",
            "The Block wise blob downloading for the same amount of worker "
            "roles was more than 104 MB/s",
        ),
        PaperAnchor(
            "queue_max_message_kb", 64.0, "KB", "IV.B",
            "The maximum size of a message supported by Azure cloud is 64 KB",
        ),
        PaperAnchor(
            "queue_usable_payload_bytes", 49152.0, "B", "IV.B",
            "48 KB (49152 Bytes to be precise) is the maximum usable size of "
            "an Azure queue message",
        ),
        PaperAnchor(
            "queue_messages_per_second", 500.0, "msg/s", "IV.B",
            "A single queue can only handle up to 500 messages per second",
        ),
        PaperAnchor(
            "partition_entities_per_second", 500.0, "ent/s", "IV.C",
            "A single partition can support access to a maximum of 500 "
            "entities per second",
        ),
        PaperAnchor(
            "account_transactions_per_second", 5000.0, "tx/s", "IV",
            "Windows Azure storage services can handle up to 5,000 "
            "transactions (entities/messages/blobs) per second",
        ),
        PaperAnchor(
            "account_bandwidth_gbps", 3.0, "GB/s", "IV",
            "there is a maximum bandwidth support for up to 3 GB per second "
            "for a single storage account",
        ),
        PaperAnchor(
            "blob_throughput_mbps", 60.0, "MB/s", "IV.A",
            "The throughput of a blob is up to 60 MB per second",
        ),
    ]
}


def qualitative_claims() -> Dict[str, str]:
    """The shape claims a reproduction must preserve (checked by tests)."""
    return {
        "fig4_upload_page_gt_block":
            "Page blob upload throughput exceeds Block blob upload "
            "throughput (roughly 3x at 96 workers).",
        "fig4_download_time_grows":
            "Per-worker download time increases with worker count (each "
            "worker downloads the full blobs).",
        "fig4_upload_time_shrinks":
            "Per-worker upload time decreases with worker count (fixed "
            "total upload is split).",
        "fig5_block_gt_page":
            "Sequential block-wise download outperforms random page-wise "
            "download.",
        "fig6_peek_lt_put_lt_get":
            "Peek is the fastest queue op, Get (incl. delete) the most "
            "expensive.",
        "fig6_get_16k_anomaly":
            "Get on 16 KB messages is consistently slower than both smaller "
            "and larger sizes.",
        "fig6_queue_scales":
            "Separate queues per worker scale: per-worker time drops as "
            "workers grow.",
        "fig7_think_time_helps":
            "On a single shared queue, longer think time lowers per-op time "
            "(up to ~2x).",
        "fig8_query_cheapest_update_dearest":
            "Querying is the least expensive table op, updating the most.",
        "fig8_flat_until_4":
            "Table op times are almost constant up to 4 concurrent clients.",
        "fig8_big_entities_blow_up":
            "At 32/64 KB entity sizes, times increase drastically with "
            "worker count.",
        "fig9_queue_scales_better":
            "Queue storage scales better than Table storage as workers grow.",
    }
