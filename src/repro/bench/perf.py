"""Performance-regression harness: kernel throughput + sweep wall-clock.

Continuous perf tracking (Rehr et al.: perf numbers are only trustworthy
when tracked over time) for the two hot layers this codebase optimizes:

* **kernel events/sec** — how fast :class:`~repro.simkit.environment.
  Environment` turns over its event loop, measured with the dominant
  sleep-then-resume pattern (``yield env.timeout(...)`` ping processes);
* **sweep wall-clock** — how long one figure campaign takes serially vs
  fanned out with :class:`~repro.bench.executor.SweepExecutor`.

:func:`run_perf` packages both into the ``BENCH_core.json`` document.
The committed copy (``benchmarks/perf/BENCH_core.json``) is the
trajectory future PRs regress against: CI re-measures and
:func:`check_regression` fails the build when kernel events/sec drops
more than ``tolerance`` (default 30%) below the committed baseline.
Absolute rates vary between machines — the committed numbers carry their
host fingerprint, and the wide tolerance absorbs runner-to-runner noise
while still catching real kernel regressions (which historically cost
2x, not 1.3x).

Simulated *numbers* are out of scope here by design: byte-identity of
figures/CSVs is enforced by the equivalence tests, so this harness only
ever measures wall-clock, never results.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "kernel_events_per_sec",
    "sweep_wall_clock",
    "run_perf",
    "check_regression",
    "load_bench",
    "write_bench",
]

BENCH_SCHEMA_VERSION = 1

#: Default kernel microbenchmark shape: 100 concurrent sleepers x 2,000
#: round trips each -> ~200k events per repetition.
KERNEL_PROCS = 100
KERNEL_ROUNDS = 2000
KERNEL_REPEATS = 5


def _ping(env, rounds: int):
    for _ in range(rounds):
        yield env.timeout(1.0)


def kernel_events_per_sec(*, procs: int = KERNEL_PROCS,
                          rounds: int = KERNEL_ROUNDS,
                          repeats: int = KERNEL_REPEATS) -> Dict[str, float]:
    """Events/sec through the DES kernel on the sleep-then-resume path.

    Best-of-``repeats`` is reported (the standard microbenchmark defence
    against scheduler noise — the *fastest* run is the least disturbed
    measurement of the code itself).
    """
    from ..simkit import Environment

    best = 0.0
    events = 0
    for _ in range(repeats):
        env = Environment()
        for i in range(procs):
            env.process(_ping(env, rounds), name=f"perf-ping-{i}")
        start = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - start
        events = env.events_processed
        if elapsed > 0:
            best = max(best, events / elapsed)
    return {
        "procs": procs,
        "rounds": rounds,
        "repeats": repeats,
        "events": events,
        "events_per_sec": round(best, 1),
    }


def sweep_wall_clock(labels: List[str], scale, *,
                     jobs: int) -> Dict[str, object]:
    """Wall-clock of one sweep campaign, serial then with ``jobs`` procs.

    Each leg runs the full ``labels`` x ``scale.worker_counts`` matrix
    from scratch (no checkpoint, no shared cache), so the two legs do
    identical simulated work and the ratio is a pure scheduling number.
    """
    from .executor import SweepExecutor

    start = time.perf_counter()
    SweepExecutor(1).run_sweeps(scale, labels)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    SweepExecutor(jobs).run_sweeps(scale, labels)
    parallel_s = time.perf_counter() - start

    return {
        "labels": list(labels),
        "scale": scale.name,
        "cells": len(labels) * len(scale.worker_counts),
        "serial_s": round(serial_s, 3),
        "jobs": jobs,
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
    }


def _host() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def run_perf(*, quick: bool = False, jobs: Optional[int] = None,
             baseline: Optional[dict] = None,
             log: Callable[[str], None] = print) -> dict:
    """Measure the full perf surface and return the BENCH_core document.

    ``quick`` shrinks the sweep leg to the fig6 campaign (CI-smoke
    budget); the full run times every figure sweep.  ``baseline`` (a
    previously written document) is carried into the output so the
    trajectory stays in one file.
    """
    from .executor import default_jobs
    from .figures import QUICK_SCALE, SWEEP_BUILDERS

    if jobs is None:
        jobs = default_jobs()

    log(f"kernel: {KERNEL_PROCS} procs x {KERNEL_ROUNDS} rounds, "
        f"best of {KERNEL_REPEATS} ...")
    kernel = kernel_events_per_sec()
    log(f"kernel: {kernel['events_per_sec']:,.0f} events/sec")

    labels = ["fig6"] if quick else list(SWEEP_BUILDERS)
    log(f"sweep: {labels} at {QUICK_SCALE.name} scale, serial vs "
        f"--jobs {jobs} ...")
    sweeps = sweep_wall_clock(labels, QUICK_SCALE, jobs=jobs)
    log(f"sweep: serial {sweeps['serial_s']:.2f}s, "
        f"parallel {sweeps['parallel_s']:.2f}s "
        f"(speedup {sweeps['speedup']}x at jobs={jobs})")

    doc = {
        "schema": BENCH_SCHEMA_VERSION,
        "host": _host(),
        "kernel": kernel,
        "sweeps": sweeps,
    }
    if baseline is not None:
        doc["baseline"] = {
            "kernel_events_per_sec":
                baseline.get("kernel", {}).get("events_per_sec"),
            "host": baseline.get("host"),
        }
    return doc


def load_bench(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path!r} has BENCH schema {doc.get('schema')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}")
    return doc


def write_bench(doc: dict, path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_regression(current: dict, baseline: dict, *,
                     tolerance: float = 0.30,
                     log: Callable[[str], None] = print) -> bool:
    """True when current kernel throughput is within ``tolerance`` of base.

    The gate is one-sided: faster is always fine, slower than
    ``(1 - tolerance) * baseline`` fails.
    """
    base_rate = baseline.get("kernel", {}).get("events_per_sec")
    rate = current.get("kernel", {}).get("events_per_sec")
    if not base_rate or not rate:
        raise ValueError("both documents need kernel.events_per_sec")
    floor = (1.0 - tolerance) * base_rate
    ok = rate >= floor
    verdict = "ok" if ok else "REGRESSION"
    log(f"kernel events/sec: {rate:,.0f} vs baseline {base_rate:,.0f} "
        f"(floor {floor:,.0f} at -{tolerance:.0%}): {verdict}")
    return ok


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Tiny standalone entry point (``python -m repro.bench.perf``)."""
    from ..cli import main as cli_main
    return cli_main(["perf"] + list(argv or sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
