"""Performance-regression harness: kernel throughput + sweep wall-clock.

Continuous perf tracking (Rehr et al.: perf numbers are only trustworthy
when tracked over time) for the two hot layers this codebase optimizes:

* **kernel events/sec** — how fast :class:`~repro.simkit.environment.
  Environment` turns over its event loop, measured with the dominant
  sleep-then-resume pattern (``yield env.timeout(...)`` ping processes);
* **sweep wall-clock** — how long one figure campaign takes serially vs
  fanned out with :class:`~repro.bench.executor.SweepExecutor`.

:func:`run_perf` packages both into the ``BENCH_core.json`` document.
The committed copy (``benchmarks/perf/BENCH_core.json``) is the
trajectory future PRs regress against: CI re-measures and
:func:`check_regression` fails the build when kernel events/sec drops
more than ``tolerance`` (default 30%) below the committed baseline.
Absolute rates vary between machines — the committed numbers carry their
host fingerprint, and the wide tolerance absorbs runner-to-runner noise
while still catching real kernel regressions (which historically cost
2x, not 1.3x).

Simulated *numbers* are out of scope here by design: byte-identity of
figures/CSVs is enforced by the equivalence tests, so this harness only
ever measures wall-clock, never results.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "kernel_events_per_sec",
    "flock_load_metrics",
    "sweep_wall_clock",
    "run_perf",
    "check_regression",
    "load_bench",
    "write_bench",
]

#: Schema 2 adds the calendar-scheduler kernel figure
#: (``kernel_calendar``) and the flock-mode scale figure (``flock``).
BENCH_SCHEMA_VERSION = 2

#: Default kernel microbenchmark shape: 100 concurrent sleepers x 2,000
#: round trips each -> ~200k events per repetition.
KERNEL_PROCS = 100
KERNEL_ROUNDS = 2000
KERNEL_REPEATS = 5


def _ping(env, rounds: int):
    for _ in range(rounds):
        yield env.timeout(1.0)


def kernel_events_per_sec(*, procs: int = KERNEL_PROCS,
                          rounds: int = KERNEL_ROUNDS,
                          repeats: int = KERNEL_REPEATS,
                          scheduler: str = "heap") -> Dict[str, float]:
    """Events/sec through the DES kernel on the sleep-then-resume path.

    Best-of-``repeats`` is reported (the standard microbenchmark defence
    against scheduler noise — the *fastest* run is the least disturbed
    measurement of the code itself).  ``scheduler`` selects the kernel
    event queue under test (heap reference or calendar).
    """
    from ..simkit import Environment

    best = 0.0
    events = 0
    for _ in range(repeats):
        env = Environment(scheduler=scheduler)
        for i in range(procs):
            env.process(_ping(env, rounds), name=f"perf-ping-{i}")
        start = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - start
        events = env.events_processed
        if elapsed > 0:
            best = max(best, events / elapsed)
    return {
        "procs": procs,
        "rounds": rounds,
        "repeats": repeats,
        "scheduler": scheduler,
        "events": events,
        "events_per_sec": round(best, 1),
    }


def flock_load_metrics(*, clients: int = 1_000_000,
                       per_client_rate: float = 0.001,
                       duration: float = 10.0,
                       flock_size: int = 8192) -> Dict[str, object]:
    """Flock-mode ops/sec + peak RSS: the million-client scale figure.

    Runs one seeded open-loop ``repro load`` with the columnar flock
    path on the calendar scheduler; the offered rate is
    ``clients * per_client_rate`` ops/s.  Peak RSS is the process
    high-water mark, so run this before anything memory-hungry when the
    number matters.
    """
    from ..traffic import ArrivalSpec, LoadConfig, run_load

    config = LoadConfig(
        arrivals=ArrivalSpec(rate=per_client_rate),
        duration=duration, mix="queue", clients=clients,
        flock_size=flock_size, scheduler="calendar")
    result = run_load(config)
    res = result.resources or {}
    ops = result.aggregator.total_completions
    wall = res.get("wall_clock_s") or 0.0
    return {
        "clients": clients,
        "per_client_rate": per_client_rate,
        "duration_s": duration,
        "flock_size": flock_size,
        "ops": ops,
        "ops_per_sec": round(ops / wall, 1) if wall > 0 else None,
        "peak_rss_mb": res.get("peak_rss_mb"),
        "kernel_events_per_sec": res.get("kernel_events_per_sec"),
    }


def sweep_wall_clock(labels: List[str], scale, *,
                     jobs: int) -> Dict[str, object]:
    """Wall-clock of one sweep campaign, serial then with ``jobs`` procs.

    Each leg runs the full ``labels`` x ``scale.worker_counts`` matrix
    from scratch (no checkpoint, no shared cache), so the two legs do
    identical simulated work and the ratio is a pure scheduling number.
    """
    from .executor import SweepExecutor

    start = time.perf_counter()
    SweepExecutor(1).run_sweeps(scale, labels)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    SweepExecutor(jobs).run_sweeps(scale, labels)
    parallel_s = time.perf_counter() - start

    return {
        "labels": list(labels),
        "scale": scale.name,
        "cells": len(labels) * len(scale.worker_counts),
        "serial_s": round(serial_s, 3),
        "jobs": jobs,
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
    }


def _host() -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def run_perf(*, quick: bool = False, jobs: Optional[int] = None,
             baseline: Optional[dict] = None,
             log: Callable[[str], None] = print) -> dict:
    """Measure the full perf surface and return the BENCH_core document.

    ``quick`` shrinks the sweep leg to the fig6 campaign (CI-smoke
    budget); the full run times every figure sweep.  ``baseline`` (a
    previously written document) is carried into the output so the
    trajectory stays in one file.
    """
    from .executor import default_jobs
    from .figures import QUICK_SCALE, SWEEP_BUILDERS

    if jobs is None:
        jobs = default_jobs()

    log(f"kernel: {KERNEL_PROCS} procs x {KERNEL_ROUNDS} rounds, "
        f"best of {KERNEL_REPEATS}, heap vs calendar ...")
    kernel = kernel_events_per_sec()
    log(f"kernel (heap): {kernel['events_per_sec']:,.0f} events/sec")
    kernel_calendar = kernel_events_per_sec(scheduler="calendar")
    log(f"kernel (calendar): "
        f"{kernel_calendar['events_per_sec']:,.0f} events/sec")

    if quick:
        flock = flock_load_metrics(clients=100_000, per_client_rate=0.001,
                                   duration=5.0, flock_size=2048)
    else:
        flock = flock_load_metrics()
    log(f"flock: {flock['clients']:,} clients -> "
        f"{flock['ops_per_sec']:,.0f} ops/sec at "
        f"{flock['peak_rss_mb']} MB peak RSS")

    labels = ["fig6"] if quick else list(SWEEP_BUILDERS)
    log(f"sweep: {labels} at {QUICK_SCALE.name} scale, serial vs "
        f"--jobs {jobs} ...")
    sweeps = sweep_wall_clock(labels, QUICK_SCALE, jobs=jobs)
    log(f"sweep: serial {sweeps['serial_s']:.2f}s, "
        f"parallel {sweeps['parallel_s']:.2f}s "
        f"(speedup {sweeps['speedup']}x at jobs={jobs})")

    doc = {
        "schema": BENCH_SCHEMA_VERSION,
        "host": _host(),
        "kernel": kernel,
        "kernel_calendar": kernel_calendar,
        "flock": flock,
        "sweeps": sweeps,
    }
    if baseline is not None:
        doc["baseline"] = {
            "kernel_events_per_sec":
                baseline.get("kernel", {}).get("events_per_sec"),
            "host": baseline.get("host"),
        }
        cal = baseline.get("kernel_calendar", {}).get("events_per_sec")
        if cal:
            doc["baseline"]["kernel_calendar_events_per_sec"] = cal
    return doc


def load_bench(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path!r} has BENCH schema {doc.get('schema')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}")
    return doc


def write_bench(doc: dict, path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_regression(current: dict, baseline: dict, *,
                     tolerance: float = 0.30,
                     log: Callable[[str], None] = print) -> bool:
    """True when current kernel throughput is within ``tolerance`` of base.

    The gate is one-sided: faster is always fine, slower than
    ``(1 - tolerance) * baseline`` fails.  The heap kernel figure is
    mandatory; the calendar figure is gated too whenever both documents
    carry it (schema 2), so neither scheduler can silently regress.
    """
    base_rate = baseline.get("kernel", {}).get("events_per_sec")
    rate = current.get("kernel", {}).get("events_per_sec")
    if not base_rate or not rate:
        raise ValueError("both documents need kernel.events_per_sec")
    gates = [("kernel (heap)", rate, base_rate)]
    cal = current.get("kernel_calendar", {}).get("events_per_sec")
    base_cal = baseline.get("kernel_calendar", {}).get("events_per_sec")
    if cal and base_cal:
        gates.append(("kernel (calendar)", cal, base_cal))
    ok = True
    for label, cur, base in gates:
        floor = (1.0 - tolerance) * base
        good = cur >= floor
        ok = ok and good
        verdict = "ok" if good else "REGRESSION"
        log(f"{label} events/sec: {cur:,.0f} vs baseline {base:,.0f} "
            f"(floor {floor:,.0f} at -{tolerance:.0%}): {verdict}")
    return ok


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Tiny standalone entry point (``python -m repro.bench.perf``)."""
    from ..cli import main as cli_main
    return cli_main(["perf"] + list(argv or sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
