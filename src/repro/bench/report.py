"""Plain-text reporting of benchmark series (the paper's figures as tables)."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import List, Sequence, Union

__all__ = ["Series", "FigureData", "format_table"]

Number = Union[int, float]


@dataclass
class Series:
    """One line of a figure: a name plus y-values over the shared x-axis."""

    name: str
    values: List[float]
    unit: str = ""


@dataclass
class FigureData:
    """One figure: shared x-axis plus any number of series."""

    figure_id: str
    title: str
    x_label: str
    x_values: List[Union[Number, str]]
    series: List[Series] = field(default_factory=list)
    notes: str = ""

    def add(self, name: str, values: Sequence[float], unit: str = "") -> "Series":
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(self.x_values)} x points"
            )
        s = Series(name, values, unit)
        self.series.append(s)
        return s

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series {name!r} in {self.figure_id}; "
                       f"have {[s.name for s in self.series]}")

    def to_rows(self) -> List[List[str]]:
        header = [self.x_label] + [
            f"{s.name}" + (f" [{s.unit}]" if s.unit else "") for s in self.series
        ]
        rows = [header]
        for i, x in enumerate(self.x_values):
            rows.append([_fmt(x)] + [_fmt(s.values[i]) for s in self.series])
        return rows

    def to_text(self) -> str:
        lines = [f"{self.figure_id}: {self.title}"]
        if self.notes:
            lines.append(f"  ({self.notes})")
        lines.append(format_table(self.to_rows()))
        return "\n".join(lines)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        for row in self.to_rows():
            writer.writerow(row)
        return buf.getvalue()


def _fmt(value: Union[Number, str]) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def format_table(rows: Sequence[Sequence[str]]) -> str:
    """Align rows into a monospace table."""
    if not rows:
        return ""
    widths = [max(len(str(row[i])) for row in rows if i < len(row))
              for i in range(max(len(r) for r in rows))]
    lines = []
    for j, row in enumerate(rows):
        cells = [str(c).rjust(widths[i]) if i > 0 else str(c).ljust(widths[i])
                 for i, c in enumerate(row)]
        lines.append("  " + "  ".join(cells))
        if j == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)
