"""One-shot reproduction report: figures + audit + scalability analysis.

``python -m repro report`` (or :func:`generate_report`) runs the sweeps at
the requested scale and produces a single text document: every figure as a
table and an ASCII chart, the paper-vs-measured audit, and derived analysis
(saturation points, knees, USL contention fits).
"""

from __future__ import annotations

import io
from typing import Optional

from ..analysis import ascii_chart, fit_usl, knee_point, saturation_point
from ..core import (
    OP_UPDATE,
    PHASE_BLOCK_UPLOAD,
    PHASE_PAGE_UPLOAD,
    table_phase_name,
)
from ..storage import KB
from .compare import compare_to_paper, comparison_table
from .figures import BenchScale, FigureRunner, figure_table1
from .paper import qualitative_claims

__all__ = ["generate_report"]


def generate_report(runner: Optional[FigureRunner] = None, *,
                    scale: Optional[BenchScale] = None,
                    charts: bool = True) -> str:
    """Build the full reproduction report as a string."""
    if runner is None:
        runner = FigureRunner(scale)
    out = io.StringIO()
    w = out.write

    w("=" * 72 + "\n")
    w("AzureBench reproduction report\n")
    w(f"scale: {runner.scale.name} "
      f"(workers {list(runner.scale.worker_counts)})\n")
    w("=" * 72 + "\n\n")

    # -- figures -------------------------------------------------------------
    figures = [figure_table1()]
    f4a, f4b = runner.figure4()
    f5a, f5b = runner.figure5()
    figures += [f4a, f4b, f5a, f5b]
    figures += list(runner.figure6().values())
    figures += list(runner.figure7().values())
    figures += list(runner.figure8().values())
    figures.append(runner.figure9())

    for fig in figures:
        w(fig.to_text() + "\n")
        if charts and len(fig.x_values) >= 2 and fig.series and \
                not isinstance(fig.x_values[0], str):
            w("\n" + ascii_chart(fig, width=56, height=10) + "\n")
        w("\n")

    # -- audit ---------------------------------------------------------------
    w("-" * 72 + "\n")
    w("Paper-vs-measured audit\n")
    w("-" * 72 + "\n")
    rows = compare_to_paper(runner)
    w(comparison_table(rows) + "\n")
    holds = sum(1 for r in rows if r.holds)
    w(f"\n{holds}/{len(rows)} checks hold "
      f"({len(qualitative_claims())} claims catalogued).\n\n")

    # -- analysis --------------------------------------------------------
    w("-" * 72 + "\n")
    w("Scalability analysis\n")
    w("-" * 72 + "\n")
    workers = list(runner.scale.worker_counts)
    blob = runner.blob_sweep()
    for label, phase in (("page upload", PHASE_PAGE_UPLOAD),
                         ("block upload", PHASE_BLOCK_UPLOAD)):
        thr = [blob[n].phase(phase).throughput_mb_per_s for n in workers]
        sat = saturation_point(workers, thr)
        try:
            fit = fit_usl(workers, thr)
            w(f"{label:14s}: saturates at ~{sat or '>' + str(workers[-1])} "
              f"workers; USL alpha={fit.alpha:.3f} beta={fit.beta:.5f} "
              f"(peak ~{fit.peak_workers:.0f} workers)\n")
        except Exception as exc:  # pragma: no cover - diagnostic path
            w(f"{label:14s}: USL fit failed ({exc})\n")

    table = runner.table_sweep()
    for size in runner.scale.table_entity_sizes:
        times = [table[n].phase(
            table_phase_name(OP_UPDATE, size)).mean_worker_time
            for n in workers]
        knee = knee_point(workers, times)
        w(f"table update {size // KB:3d} KB: knee at "
          f"{knee if knee is not None else 'beyond ' + str(workers[-1])} "
          f"workers\n")

    return out.getvalue()
