"""Chaos conformance harness: run workloads under fault schedules and
check that the operation history satisfies the platform's invariants.

The benchmark suite answers "how fast"; this package answers "still
correct?".  A chaos run takes any figure workload (or the bag-of-tasks
application), composes a seeded fault schedule from the named profiles in
:mod:`repro.faults.profiles` — optionally plus worker-role crash/restart
events driven through :mod:`repro.compute.supervisor` — records the full
operation history (client-level audit + the Tracer span stream + Storage
Analytics), and checks conformance invariants over it:

* **queue message conservation** — every acked put is consumed exactly
  once unless loss was injected; duplicates appear only when duplicate
  delivery was injected or a visibility timeout genuinely expired;
* **blob integrity** — downloaded bytes match the digests of prior
  writes, chunk by chunk;
* **table conformance** — two ETag-conditional updates against the same
  ETag never both succeed; the insert/delete ledger balances against the
  final entity count;
* **analytics conservation** — Storage Analytics ingress/egress totals
  reconcile with the traced span payloads;
* **termination** — the workload completes within a bounded retry budget.

Layering: this package sits on top of everything (bench, faults,
observability, compute), so nothing inside ``repro`` imports it.
"""

from .checkpoint import RunCheckpoint
from .dnfailover import build_dn_workload, run_dn_failover
from .history import History, OpRecord, audit_account
from .invariants import (
    Violation,
    check_analytics_conservation,
    check_blob_integrity,
    check_history,
    check_queue_conservation,
    check_table_conformance,
    check_termination,
)
from .ledger import QueueLedger, ledger_from_events
from .runner import (
    CHAOS_SCALE,
    ChaosRun,
    chaos_workloads,
    run_chaos,
    run_chaos_taskpool,
)
from .schedule import ChaosSchedule, CrashEvent, build_schedule
from .verdict import ChaosRunError, ChaosVerdict

__all__ = [
    "RunCheckpoint",
    "build_dn_workload",
    "run_dn_failover",
    "History",
    "OpRecord",
    "audit_account",
    "Violation",
    "check_analytics_conservation",
    "check_blob_integrity",
    "check_history",
    "check_queue_conservation",
    "check_table_conformance",
    "check_termination",
    "QueueLedger",
    "ledger_from_events",
    "CHAOS_SCALE",
    "ChaosRun",
    "chaos_workloads",
    "run_chaos",
    "run_chaos_taskpool",
    "ChaosSchedule",
    "CrashEvent",
    "build_schedule",
    "ChaosRunError",
    "ChaosVerdict",
]
