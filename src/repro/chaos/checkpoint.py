"""Run checkpoint/resume for figure campaigns.

A :class:`RunCheckpoint` persists every completed benchmark run (one
``label@workers`` cell of a sweep) to a JSON file the moment it
finishes, atomically.  A driver killed mid-campaign resumes by handing
the same checkpoint to a fresh :class:`~repro.bench.figures.FigureRunner`:
completed cells load from disk, the interrupted cell and everything
after it re-run — and because seeded sim runs are deterministic, the
resumed campaign's figures are identical to an uninterrupted one's
(pinned by ``tests/chaos/test_checkpoint.py``).

The file is keyed by a fingerprint of the campaign parameters (scale,
backend, trace flag).  Loading a checkpoint written under different
parameters raises — mixing cells from different campaigns would produce
silently wrong figures.

Live ``Tracer`` objects are not serialized: restored results carry
``trace=None``.  Checkpoint figure campaigns that need traces must
re-run (tracing is for diagnosis, the CSVs don't read it).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from ..core.metrics import BenchResult, PhaseRecord

__all__ = ["RunCheckpoint"]

_VERSION = 1

_RECORD_FIELDS = ("name", "worker_id", "start", "end", "ops", "nbytes",
                  "retries")


class RunCheckpoint:
    """Append-only store of completed benchmark runs, one JSON file."""

    def __init__(self, path: str, campaign_key: str) -> None:
        self.path = str(path)
        self.campaign_key = campaign_key
        self._runs: Dict[str, dict] = {}
        if os.path.exists(self.path):
            self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != _VERSION:
            raise ValueError(
                f"checkpoint {self.path!r} has version "
                f"{data.get('version')!r}, expected {_VERSION}")
        if data.get("campaign_key") != self.campaign_key:
            raise ValueError(
                f"checkpoint {self.path!r} belongs to campaign "
                f"{data.get('campaign_key')!r}, not {self.campaign_key!r}; "
                f"refusing to mix cells across campaigns")
        self._runs = dict(data.get("runs", {}))

    def _flush(self) -> None:
        payload = {
            "version": _VERSION,
            "campaign_key": self.campaign_key,
            "runs": self._runs,
        }
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".checkpoint-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self.path)  # atomic: never a torn checkpoint
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- the store ---------------------------------------------------------
    def labels(self) -> List[str]:
        return sorted(self._runs)

    def __contains__(self, label: str) -> bool:
        return label in self._runs

    def get(self, label: str) -> Optional[BenchResult]:
        """The completed run stored under ``label``, or None."""
        entry = self._runs.get(label)
        if entry is None:
            return None
        records = [PhaseRecord(**rec) for rec in entry["records"]]
        return BenchResult.from_records(entry["workers"], records,
                                        label=entry["label"])

    def put(self, label: str, result: BenchResult) -> None:
        """Store a completed run and flush to disk immediately."""
        self._runs[label] = {
            "label": result.label,
            "workers": result.workers,
            "records": [
                {f: getattr(rec, f) for f in _RECORD_FIELDS}
                for rec in result.records
            ],
        }
        self._flush()
