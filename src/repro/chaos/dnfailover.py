"""DN failure-domain chaos: crash a data node under open-loop load.

:func:`run_dn_failover` boots a real (in-process, socket-speaking) SN/DN
cluster with R-way shard replication and health-checked membership, dispatches
a seeded open-loop write/read workload against it over the wire, and
crash-stops the data node(s) named by the profile's ``DN_CRASH`` specs
mid-run.  The failure domain (:mod:`repro.service.membership`) must then
detect the death by missed heartbeats, heal the consistent-hash ring, and
re-replicate under-owned shards — while the campaign keeps writing.

Afterwards the campaign verifies the two promises the failure domain makes:

* **zero committed-write loss** — every client-acked write (blob bytes by
  digest, queue message payloads by multiset, table rows by key/value) is
  still readable with the right content;
* **bounded unavailability** — the wall-clock gap between the kill and the
  completed rebalance stays within the heartbeat + rebalance window the
  :class:`~repro.service.membership.FailureDomainConfig` implies.

The verdict carries only deterministic evidence (the seeded schedule, the
workload digest, scheduled counts), so two runs with the same seed produce
byte-identical verdict JSON; measured timings (detection latency, heal time,
per-window error counts) go to stderr and the optional windows CSV artifact.
"""

from __future__ import annotations

import hashlib
import sys
import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Tuple

from ..faults.spec import DN_KINDS, FaultKind
from ..storage.errors import StorageError
from .invariants import Violation
from .schedule import build_schedule
from .verdict import ChaosRunError, ChaosVerdict

__all__ = ["DNOp", "build_dn_workload", "workload_digest", "run_dn_failover"]

#: Fixed resource names (>= 3 chars: container-name rules).
DN_CONTAINER = "chaosblobs"
DN_QUEUE = "chaosq"
DN_TABLE = "chaost"
DN_PARTITION = "chaos"

#: Read targets created before arrivals start.
PRELOAD = 8

#: (weight, kind) — the seeded op mix; writes dominate because the loss
#: check is about committed writes surviving the crash.
_MIX: Tuple[Tuple[float, str], ...] = (
    (0.30, "blob.upload"),
    (0.15, "blob.download"),
    (0.25, "queue.put"),
    (0.20, "table.insert"),
    (0.10, "table.get"),
)


@dataclass(frozen=True)
class DNOp:
    """One scheduled campaign operation."""

    index: int
    at: float  # virtual seconds
    kind: str
    key: str


def _payload(seed: int, index: int, nbytes: int = 512) -> bytes:
    stamp = f"dnfail:{seed}:{index}:".encode()
    reps = nbytes // len(stamp) + 1
    return (stamp * reps)[:nbytes]


def build_dn_workload(seed: int, *, rate: float = 8.0,
                      duration: float = 35.0) -> List[DNOp]:
    """The deterministic op schedule — a pure function of the seed."""
    rng = Random(f"{seed}:dnfailover:ops")
    total = sum(w for w, _ in _MIX)
    out: List[DNOp] = []
    at = 0.0
    index = 0
    while True:
        at += rng.expovariate(rate)
        if at >= duration:
            break
        draw = rng.random() * total
        for weight, kind in _MIX:
            draw -= weight
            if draw < 0:
                break
        if kind in ("blob.download", "table.get"):
            key = f"warm-{rng.randrange(PRELOAD)}"
        elif kind == "blob.upload":
            key = f"obj-{index}"
        elif kind == "table.insert":
            key = f"row-{index}"
        else:  # queue.put
            key = DN_QUEUE
        out.append(DNOp(index, at, kind, key))
        index += 1
    return out


def workload_digest(ops: List[DNOp]) -> str:
    """SHA-256 over the scheduled op sequence (seed-reproducible)."""
    h = hashlib.sha256()
    for op in ops:
        h.update(f"{op.index},{op.at:.9f},{op.kind},{op.key}\n".encode())
    return h.hexdigest()


def _to_bytes(content) -> bytes:
    if isinstance(content, (bytes, bytearray, memoryview)):
        return bytes(content)
    return content.to_bytes()


def _md5(data: bytes) -> str:
    return hashlib.md5(data).hexdigest()


class _Ledger:
    """Committed (client-acked) writes, recorded under a lock."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.blobs: Dict[str, str] = {}     # name -> md5
        self.queue: List[str] = []          # payload md5 multiset
        self.rows: Dict[str, str] = {}      # row key -> value


def _run_op(clients, op: DNOp, seed: int, ledger: _Ledger,
            drive) -> bool:
    bc, qc, tc = clients["blob"], clients["queue"], clients["table"]
    try:
        if op.kind == "blob.upload":
            data = _payload(seed, op.index)
            drive(bc.upload_blob(DN_CONTAINER, op.key, data))
            with ledger.lock:
                ledger.blobs[op.key] = _md5(data)
        elif op.kind == "blob.download":
            drive(bc.download_block_blob(DN_CONTAINER, op.key))
        elif op.kind == "queue.put":
            data = _payload(seed, op.index, 96)
            drive(qc.put_message(DN_QUEUE, data))
            with ledger.lock:
                ledger.queue.append(_md5(data))
        elif op.kind == "table.insert":
            value = f"v{seed}:{op.index}"
            drive(tc.insert(DN_TABLE, DN_PARTITION, op.key, {"v": value}))
            with ledger.lock:
                ledger.rows[op.key] = value
        elif op.kind == "table.get":
            drive(tc.get(DN_TABLE, DN_PARTITION, op.key))
        else:  # pragma: no cover - builder emits only known kinds
            raise ValueError(f"unknown op kind {op.kind!r}")
        return True
    except StorageError:
        return False
    except (ConnectionError, OSError):
        # The crash can abort a keep-alive mid-request; the op is simply
        # not committed (the ledger was not updated).
        return False


def _verify_ledger(clients, ledger: _Ledger, seed: int,
                   drive) -> List[Violation]:
    violations: List[Violation] = []
    bc, qc, tc = clients["blob"], clients["queue"], clients["table"]
    for name, digest in sorted(ledger.blobs.items()):
        try:
            body = _to_bytes(drive(bc.download_block_blob(
                DN_CONTAINER, name)))
        except StorageError as exc:
            violations.append(Violation(
                "dn-blob-loss",
                f"committed blob {name!r} unreadable after failover: {exc}"))
            continue
        if _md5(body) != digest:
            violations.append(Violation(
                "dn-blob-integrity",
                f"committed blob {name!r} corrupted after failover"))
    for key, value in sorted(ledger.rows.items()):
        try:
            entity = drive(tc.get(DN_TABLE, DN_PARTITION, key))
        except StorageError as exc:
            violations.append(Violation(
                "dn-table-loss",
                f"committed row {key!r} unreadable after failover: {exc}"))
            continue
        got = entity.get("v")
        if got != value:
            violations.append(Violation(
                "dn-table-integrity",
                f"committed row {key!r} holds {got!r}, expected {value!r}"))
    drained: List[str] = []
    while True:
        msg = drive(qc.get_message(DN_QUEUE, visibility_timeout=3600.0))
        if msg is None:
            break
        drained.append(_md5(_to_bytes(msg.content)))
    want = sorted(ledger.queue)
    have = sorted(drained)
    missing = _multiset_missing(want, have)
    if missing:
        violations.append(Violation(
            "dn-queue-loss",
            f"{missing} committed queue message(s) lost after failover "
            f"({len(want)} acked, {len(have)} drained)"))
    return violations


def _multiset_missing(want: List[str], have: List[str]) -> int:
    """How many entries of ``want`` are absent from ``have`` (sorted)."""
    counts: Dict[str, int] = {}
    for digest in have:
        counts[digest] = counts.get(digest, 0) + 1
    missing = 0
    for digest in want:
        if counts.get(digest, 0) > 0:
            counts[digest] -= 1
        else:
            missing += 1
    return missing


def run_dn_failover(profile: str = "dn-failover", seed: int = 0, *,
                    dn: int = 3, replicas: int = 2, rate: float = 8.0,
                    duration: float = 35.0, time_scale: float = 0.2,
                    window_s: float = 5.0, max_clients: int = 16,
                    windows_csv: Optional[str] = None) -> ChaosVerdict:
    """Crash data nodes under open-loop load; verify the failure domain.

    Returns a :class:`ChaosVerdict` whose JSON is byte-identical across
    runs with the same ``(profile, seed)`` — measured timings go to
    stderr and the optional ``windows_csv`` artifact, never the verdict.
    """
    from ..service import DEV_KEY, TenantConfig, TenantDirectory
    from ..service.client import (ServiceConnection, WireBlobClient,
                                  WireQueueClient, WireTableClient)
    from ..service.cluster import ClusterRunner, ServiceCluster
    from ..service.membership import FailureDomainConfig
    from ..traffic.engine import _drive as drive

    schedule = build_schedule(profile, seed=seed)
    crash_specs = [s for s in schedule.specs
                   if s.kind is FaultKind.DN_CRASH]
    slow_specs = [s for s in schedule.specs if s.kind is FaultKind.DN_SLOW]
    other_specs = [s for s in schedule.specs if s.kind not in DN_KINDS]
    for spec in crash_specs + slow_specs:
        if spec.node >= dn:
            raise ValueError(
                f"profile {profile!r} targets data node {spec.node} but "
                f"the cluster only has {dn}; raise --dn")

    ops = build_dn_workload(seed, rate=rate, duration=duration)
    verdict = ChaosVerdict(
        workload="dnfailover", profile=profile, seed=seed,
        runs=[f"dnfailover@dn{dn}r{replicas}"],
        schedules=[schedule.describe(), {
            "workload": {"rate": rate, "duration_s": duration,
                         "mix": [list(entry) for entry in _MIX],
                         "preload": PRELOAD},
            "op_digest": workload_digest(ops),
        }])
    verdict.counts = {
        "scheduled_ops": len(ops),
        "writes_scheduled": sum(
            1 for op in ops
            if op.kind in ("blob.upload", "queue.put", "table.insert")),
        "data_nodes": dn,
        "replicas": replicas,
        "dn_crashes": len(crash_specs),
        "dn_slows": len(slow_specs),
    }

    config = FailureDomainConfig(
        replicas=replicas, health_checks=True, heartbeat_interval=0.1,
        suspect_after=1, dead_after=3, heartbeat_timeout=0.5,
        hedge_delay=0.05, retry_after=0.25, seed=seed)
    tenants = TenantDirectory(
        [TenantConfig.development(enforce_targets=False)])
    cluster = ServiceCluster(nodes=1, dn=dn, tenants=tenants,
                             failure_domain=config)
    runner = ClusterRunner(cluster)
    account = tenants.accounts()[0]
    outcomes: List[Optional[bool]] = [None] * len(ops)
    ledger = _Ledger()
    kill_walls: Dict[int, float] = {}
    local = threading.local()

    def make_clients() -> Dict[str, object]:
        conn = ServiceConnection(cluster.endpoints(0), account, DEV_KEY,
                                 busy_retries=6)
        return {"blob": WireBlobClient(conn),
                "queue": WireQueueClient(conn),
                "table": WireTableClient(conn)}

    def pooled_clients() -> Dict[str, object]:
        clients = getattr(local, "clients", None)
        if clients is None:
            clients = local.clients = make_clients()
        return clients

    runner.start()
    try:
        try:
            clients = make_clients()
            drive(clients["blob"].create_container(DN_CONTAINER))
            drive(clients["queue"].create_queue(DN_QUEUE))
            drive(clients["table"].create_table(DN_TABLE))
            for j in range(PRELOAD):
                drive(clients["blob"].upload_blob(
                    DN_CONTAINER, f"warm-{j}", _payload(seed, -1 - j)))
                drive(clients["table"].insert(
                    DN_TABLE, DN_PARTITION, f"warm-{j}", {"v": f"warm{j}"}))
            if other_specs:
                from ..faults.plan import FaultPlan
                cluster.set_fault_plan(account,
                                       FaultPlan(other_specs, seed=seed))

            from concurrent.futures import ThreadPoolExecutor

            timers: List[threading.Timer] = []

            def kill(node: int) -> None:
                kill_walls[node] = time.monotonic()
                runner.kill_data_node(node)

            origin = time.monotonic()
            for spec in crash_specs:
                t = threading.Timer(spec.start * time_scale, kill,
                                    [spec.node])
                t.start()
                timers.append(t)
            for spec in slow_specs:
                t_on = threading.Timer(
                    spec.start * time_scale, runner.set_data_node_slow,
                    [spec.node, spec.latency_factor])
                t_on.start()
                timers.append(t_on)
                if spec.duration != float("inf"):
                    t_off = threading.Timer(
                        spec.end * time_scale, runner.set_data_node_slow,
                        [spec.node, 0.0])
                    t_off.start()
                    timers.append(t_off)

            def run_one(op: DNOp) -> None:
                outcomes[op.index] = _run_op(
                    pooled_clients(), op, seed, ledger, drive)

            with ThreadPoolExecutor(max_workers=max_clients) as pool:
                for op in ops:
                    wait = op.at * time_scale - (time.monotonic() - origin)
                    if wait > 0:
                        time.sleep(wait)
                    pool.submit(run_one, op)
            for t in timers:
                t.join()

            membership = cluster.membership
            settled = True
            if crash_specs:
                if not runner.wait_deaths_detected(len(crash_specs),
                                                   timeout=30.0):
                    verdict.violations.append(Violation(
                        "dn-detection",
                        f"heartbeats never declared {len(crash_specs)} "
                        f"data node(s) dead"))
                settled = runner.wait_settled(timeout=30.0)
                if not settled:
                    verdict.violations.append(Violation(
                        "dn-rebalance",
                        "ring rebalancing did not quiesce in time"))

            verify_clients = make_clients()
            verdict.violations.extend(
                _verify_ledger(verify_clients, ledger, seed, drive))

            # Bounded unavailability: kill -> heal must fit inside the
            # configured detection window plus a generous migration grace
            # (wall-clock CI machines stall; only order-of-magnitude
            # escapes are failures).
            detect_budget = (config.dead_after * config.heartbeat_interval
                             + config.heartbeat_timeout)
            bound = detect_budget * 3.0 + 5.0
            unavail = None
            if crash_specs and settled:
                heal_at = membership.last_heal_at
                first_kill = min(kill_walls.values()) if kill_walls else None
                if heal_at is None or first_kill is None:
                    verdict.violations.append(Violation(
                        "dn-unavailability",
                        "no heal timestamp recorded after a DN crash"))
                else:
                    unavail = max(0.0, heal_at - first_kill)
                    if unavail > bound:
                        verdict.violations.append(Violation(
                            "dn-unavailability",
                            f"kill-to-heal window {unavail:.2f}s exceeds "
                            f"the {bound:.2f}s budget "
                            f"(detect {detect_budget:.2f}s)"))

            attempted = sum(1 for ok in outcomes if ok is not None)
            failed = sum(1 for ok in outcomes if ok is False)
            print(f"dnfailover seed={seed}: {attempted} ops "
                  f"({failed} failed), "
                  f"deaths={membership.counters['deaths']}, "
                  f"migrated={membership.counters['shards_migrated']} "
                  f"shard(s), "
                  f"hedges={membership.counters['hedges']}, "
                  f"503s={membership.counters['no_owner_503s']}"
                  + (f", kill-to-heal {unavail:.2f}s"
                     if unavail is not None else ""),
                  file=sys.stderr)
            if windows_csv:
                _write_windows_csv(windows_csv, ops, outcomes, window_s,
                                   crash_specs)
        except ChaosRunError:
            raise
        except Exception as exc:
            verdict.violations.append(Violation(
                "harness",
                f"dnfailover: run crashed before checks completed: "
                f"{type(exc).__name__}: {exc}"))
            raise ChaosRunError(
                f"chaos run dnfailover crashed: {exc}", verdict) from exc
    finally:
        runner.stop()
    return verdict


def _write_windows_csv(path: str, ops: List[DNOp],
                       outcomes: List[Optional[bool]], window_s: float,
                       crash_specs) -> None:
    """Per-window outcome counts (virtual time) — the SLO-dip artifact."""
    import os

    horizon = max((op.at for op in ops), default=0.0)
    n_windows = int(horizon // window_s) + 1
    rows = [[0, 0] for _ in range(n_windows)]
    for op in ops:
        ok = outcomes[op.index]
        if ok is None:
            continue
        bucket = rows[int(op.at // window_s)]
        bucket[0] += 1
        if not ok:
            bucket[1] += 1
    crash_windows = {int(s.start // window_s) for s in crash_specs}
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        f.write("window_start_s,ops,errors,dn_crash\n")
        for i, (total, errors) in enumerate(rows):
            f.write(f"{i * window_s:g},{total},{errors},"
                    f"{int(i in crash_windows)}\n")
