"""Operation-history capture: the ground truth the invariants check.

The harness records history at the *client* boundary — the same surface
the paper's algorithms program against — by shadowing an account's client
factories with auditing proxies (:func:`audit_account`).  Every audited
call appends one :class:`OpRecord` carrying a semantic summary (message
ids, pop receipts, dequeue counts, payload digests, ETags) that spans do
not carry.

Determinism contract: the audit computes digests and appends records —
it never yields, sleeps, or draws randomness — so a seeded sim run with
auditing installed is bit-identical to one without (pinned by the golden
regression in ``tests/chaos/test_runner.py``).

Fault attribution: the history subscribes to the
:class:`~repro.faults.plan.FaultPlan` event stream.  Injected data-plane
faults (message loss, duplicate delivery) fire *inside* the audited call
they hit, so pending fault kinds are drained onto the very next record —
which is that call's own record, because the DES executes one operation
at a time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["OpRecord", "History", "AuditedClient", "audit_account"]

#: Per-write byte cap for blob-content tracking; larger payloads degrade
#: blob integrity checks to size-only (noted on the verdict, not a
#: violation).  Chaos scales stay far below this.
BLOB_TRACK_CAP = 4 * 1024 * 1024

#: Client methods whose calls are recorded, per service.
AUDITED_METHODS: Dict[str, frozenset] = {
    "queue": frozenset({
        "create_queue", "delete_queue", "put_message", "get_message",
        "get_messages", "peek_message", "delete_message", "update_message",
        "get_message_count",
    }),
    "blob": frozenset({
        "create_container", "create_page_blob", "put_block",
        "put_block_list", "upload_blob", "put_page", "get_block",
        "get_page", "download_block_blob", "download_page_blob",
        "delete_blob",
    }),
    "table": frozenset({
        "create_table", "delete_table", "insert", "update", "merge",
        "insert_or_replace", "insert_or_merge", "get", "query_partition",
        "query", "delete",
    }),
}


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


@dataclass(frozen=True)
class OpRecord:
    """One audited client call, summarized."""

    seq: int
    time: float
    service: str
    op: str
    #: Queue name / "container/blob" / table name.
    target: str
    #: Semantic request summary (sizes, digests, keys, etag_in, ...).
    request: Dict[str, Any]
    #: Semantic result summary (message_id, receipt, digest, ...);
    #: empty on failure.
    result: Dict[str, Any]
    #: Error class name when the call raised, else "".
    error: str = ""
    #: Injected fault kinds attributed to this call.
    faults: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.error == ""


class History:
    """Append-only operation history plus end-of-run snapshots."""

    def __init__(self, *, default_visibility: float = 30.0) -> None:
        self.records: List[OpRecord] = []
        #: Raw injected-fault events, as ``(time, kind, service, partition)``.
        self.fault_events: List[Tuple] = []
        #: Worker crash/restart events: ``(time, kind, role)`` with kind in
        #: {"crash", "restart"} — filled by the chaos runner.
        self.crash_events: List[Tuple] = []
        #: ``("remaining", queue, msg_id)`` from the final state snapshot.
        self.remaining: List[Tuple[str, str]] = []
        #: table name -> final entity count (final state snapshot).
        self.final_entity_counts: Dict[str, int] = {}
        self.default_visibility = default_visibility
        self._seq = 0
        self._pending_faults: List[str] = []
        #: Keeps payload objects alive so the digest cache stays valid.
        self._digest_cache: Dict[int, Tuple[Any, str]] = {}

    # -- fault-plan subscription -------------------------------------------
    def on_fault(self, event) -> None:
        """FaultPlan listener: park kinds for the in-flight record."""
        self.fault_events.append(event.as_tuple())
        self._pending_faults.append(event.kind.value)

    # -- recording ---------------------------------------------------------
    def _content_digest(self, data) -> Tuple[str, int]:
        key = id(data)
        cached = self._digest_cache.get(key)
        if cached is not None and cached[0] is data:
            return cached[1], getattr(data, "size", len(cached[1]))
        raw = data.to_bytes() if hasattr(data, "to_bytes") else bytes(data)
        dig = _digest(raw)
        self._digest_cache[key] = (data, dig)
        return dig, len(raw)

    def _content_bytes(self, data) -> bytes:
        return data.to_bytes() if hasattr(data, "to_bytes") else bytes(data)

    def record(self, now: float, service: str, op: str, target: str,
               request: Dict[str, Any], result: Dict[str, Any],
               error: str = "") -> OpRecord:
        rec = OpRecord(
            seq=self._seq, time=now, service=service, op=op, target=target,
            request=request, result=result, error=error,
            faults=tuple(self._pending_faults),
        )
        self._pending_faults.clear()
        self._seq += 1
        self.records.append(rec)
        return rec

    # -- snapshots ---------------------------------------------------------
    def snapshot_final_state(self, state) -> None:
        """Record what survived the run (queues + table entity counts)."""
        for name, queue in state.queues.queues.items():
            for msg in queue._messages:
                self.remaining.append((name, msg.message_id))
        for name in state.tables.list_tables():
            table = state.tables.get_table(name)
            self.final_entity_counts[name] = sum(
                len(table.query_partition(pk)) for pk in table.partitions())

    # -- ledger-event projection -------------------------------------------
    def queue_events(self) -> List[Tuple]:
        """Project queue records into :mod:`.ledger` events.

        Repeat deliveries are explained here, where the timing lives: a
        redelivery is ``"dup"`` when the *previous* delivery of the same
        message carried an injected duplicate-delivery grant, else
        ``"timeout"`` when that delivery's visibility window had expired
        by the redelivery instant, else unexplained (``""``).
        """
        events: List[Tuple] = []
        #: (queue, msg_id) -> (last delivery time, visibility, dup_grant).
        last: Dict[Tuple[str, str], Tuple[float, float, bool]] = {}
        for rec in self.records:
            if rec.service != "queue":
                continue
            queue = rec.target
            if rec.op == "put_message":
                if not rec.ok:
                    continue
                msg_id = rec.result.get("message_id")
                if msg_id is None:
                    # A lost put is *explained* when loss was injected or
                    # the record was rewound by a forced geo failover.
                    events.append(("put_lost", queue,
                                   any(f in rec.faults for f in
                                       ("message_loss", "geo_failover"))))
                else:
                    events.append(("put", queue, msg_id))
            elif rec.op in ("get_message", "get_messages"):
                if not rec.ok:
                    continue
                visibility = rec.request.get("visibility_timeout")
                if visibility is None:
                    visibility = self.default_visibility
                dup_grants = rec.faults.count("duplicate_delivery")
                for msg in rec.result.get("messages", ()):
                    key = (queue, msg["message_id"])
                    explained = ""
                    if msg["dequeue_count"] > 1:
                        prev = last.get(key)
                        if prev is not None and prev[2]:
                            explained = "dup"
                        elif prev is not None and rec.time >= prev[0] + prev[1]:
                            explained = "timeout"
                    events.append(("deliver", queue, msg["message_id"],
                                   msg["dequeue_count"], explained))
                    granted = dup_grants > 0
                    if granted:
                        dup_grants -= 1
                    last[key] = (rec.time, visibility, granted)
            elif rec.op == "update_message":
                if rec.ok:
                    key = (queue, rec.request["message_id"])
                    prev = last.get(key)
                    if prev is not None:
                        last[key] = (rec.time,
                                     rec.request.get("visibility_timeout",
                                                     0.0), prev[2])
            elif rec.op == "delete_message":
                msg_id = rec.request["message_id"]
                if rec.ok:
                    events.append(("delete", queue, msg_id, True))
                elif rec.error == "MessageNotFoundError":
                    events.append(("delete", queue, msg_id, False))
            elif rec.op == "delete_queue":
                if rec.ok:
                    events.append(("purge", queue))
        for queue, msg_id in self.remaining:
            events.append(("remaining", queue, msg_id))
        return events

    # -- self-test helpers -------------------------------------------------
    def splice_drop(self, queue: Optional[str] = None) -> str:
        """Rewrite one landed put as a silent drop (checker self-test).

        Picks the first successful ``put_message`` (optionally against
        ``queue``), erases its landing and any downstream records of the
        dropped message, leaving an acked put with no landed message and
        no injected-loss attribution — exactly the anomaly the
        conservation checker must flag.  Returns the spliced message id.
        """
        for i, rec in enumerate(self.records):
            if (rec.service == "queue" and rec.op == "put_message" and rec.ok
                    and rec.result.get("message_id") is not None
                    and (queue is None or rec.target == queue)):
                msg_id = rec.result["message_id"]
                self.records[i] = OpRecord(
                    seq=rec.seq, time=rec.time, service=rec.service,
                    op=rec.op, target=rec.target, request=rec.request,
                    result={"message_id": None}, error=rec.error,
                    faults=rec.faults)
                self._erase_message(rec.target, msg_id)
                return msg_id
        raise ValueError("no successful put_message record to splice")

    def _erase_message(self, queue: str, msg_id: str) -> None:
        """Drop downstream deliveries/deletes of a spliced-away message."""
        kept = []
        for rec in self.records:
            if rec.service == "queue" and rec.target == queue:
                if (rec.op == "delete_message"
                        and rec.request.get("message_id") == msg_id):
                    continue
                if rec.op in ("get_message", "get_messages") and rec.ok:
                    messages = [m for m in rec.result.get("messages", ())
                                if m["message_id"] != msg_id]
                    if len(messages) != len(rec.result.get("messages", ())):
                        result = dict(rec.result)
                        result["messages"] = tuple(messages)
                        rec = OpRecord(
                            seq=rec.seq, time=rec.time, service=rec.service,
                            op=rec.op, target=rec.target,
                            request=rec.request, result=result,
                            error=rec.error, faults=rec.faults)
            kept.append(rec)
        self.records = kept
        self.remaining = [(q, m) for q, m in self.remaining
                          if not (q == queue and m == msg_id)]


# -- request/result summarizers ---------------------------------------------

def _msg_summary(msg) -> Dict[str, Any]:
    return {
        "message_id": msg.message_id,
        "dequeue_count": msg.dequeue_count,
        "pop_receipt": msg.pop_receipt,
        "digest": _digest(msg.content.to_bytes()),
        "size": msg.content.size,
    }


class AuditedClient:
    """Proxy recording every audited data-plane call on one client."""

    def __init__(self, inner, history: History, service: str,
                 now_fn) -> None:
        self._inner = inner
        self._history = history
        self._service = service
        self._now = now_fn

    def __getattr__(self, name: str):
        attr = getattr(self._inner, name)
        if name not in AUDITED_METHODS.get(self._service, frozenset()):
            return attr

        def audited(*args, **kwargs):
            # Sim/shim clients return lazy generators; plain emulator
            # clients execute (and may raise) right here.
            try:
                result = attr(*args, **kwargs)
            except BaseException as exc:
                self._summarize(name, args, kwargs, None,
                                type(exc).__name__)
                raise
            if isinstance(result, GeneratorType):
                return self._drive(name, args, kwargs, result)
            self._summarize(name, args, kwargs, result, "")
            return result

        audited.__name__ = name
        return audited

    def _drive(self, name: str, args, kwargs, gen):
        """Run a client-op generator, recording at its completion instant."""
        try:
            result = yield from gen
        except BaseException as exc:
            self._summarize(name, args, kwargs, None, type(exc).__name__)
            raise
        self._summarize(name, args, kwargs, result, "")
        return result

    # -- summaries ----------------------------------------------------------
    def _summarize(self, op: str, args, kwargs, result, error: str) -> None:
        h = self._history
        service = self._service
        now = self._now()
        request: Dict[str, Any] = {}
        summary: Dict[str, Any] = {}
        target = str(args[0]) if args else ""
        if service == "queue":
            target, request, summary = self._queue_summary(
                op, args, kwargs, result, error)
        elif service == "blob":
            target, request, summary = self._blob_summary(
                op, args, kwargs, result, error)
        elif service == "table":
            target, request, summary = self._table_summary(
                op, args, kwargs, result, error)
        h.record(now, service, op, target, request, summary, error)

    def _queue_summary(self, op, args, kwargs, result, error):
        h = self._history
        queue = str(args[0]) if args else ""
        request: Dict[str, Any] = {}
        summary: Dict[str, Any] = {}
        if op == "put_message":
            dig, size = h._content_digest(args[1])
            request = {"digest": dig, "size": size}
            if not error:
                summary = {"message_id":
                           result.message_id if result is not None else None}
        elif op in ("get_message", "get_messages"):
            request = {"visibility_timeout":
                       kwargs.get("visibility_timeout")}
            if not error:
                if op == "get_message":
                    messages = () if result is None else (result,)
                else:
                    messages = tuple(result or ())
                summary = {"messages":
                           tuple(_msg_summary(m) for m in messages)}
        elif op == "peek_message":
            if not error and result is not None:
                summary = {"message_id": result.message_id}
        elif op in ("delete_message", "update_message"):
            request = {"message_id": str(args[1]) if len(args) > 1 else "",
                       "pop_receipt": str(args[2]) if len(args) > 2 else ""}
            if op == "update_message":
                request["visibility_timeout"] = kwargs.get(
                    "visibility_timeout", 0.0)
        elif op == "get_message_count":
            if not error:
                summary = {"count": result}
        return queue, request, summary

    def _blob_summary(self, op, args, kwargs, result, error):
        h = self._history
        request: Dict[str, Any] = {}
        summary: Dict[str, Any] = {}
        if op in ("create_container", "delete_container"):
            return str(args[0]), request, summary
        container = str(args[0]) if args else ""
        blob = str(args[1]) if len(args) > 1 else ""
        target = f"{container}/{blob}"
        if op == "put_block":
            data = args[3]
            raw = h._content_bytes(data)
            request = {"block_id": str(args[2]), "digest": _digest(raw),
                       "size": len(raw)}
            if len(raw) <= BLOB_TRACK_CAP:
                request["bytes"] = raw
        elif op == "put_block_list":
            request = {"block_ids": tuple(str(b) for b in args[2]),
                       "merge": bool(kwargs.get("merge", False))}
        elif op == "upload_blob":
            raw = h._content_bytes(args[2])
            request = {"digest": _digest(raw), "size": len(raw)}
            if len(raw) <= BLOB_TRACK_CAP:
                request["bytes"] = raw
        elif op == "create_page_blob":
            request = {"max_size": int(args[2])}
        elif op == "put_page":
            raw = h._content_bytes(args[3])
            request = {"offset": int(args[2]), "digest": _digest(raw),
                       "size": len(raw)}
            if len(raw) <= BLOB_TRACK_CAP:
                request["bytes"] = raw
        elif op == "get_block":
            request = {"index": int(args[2])}
            if not error:
                raw = h._content_bytes(result)
                summary = {"digest": _digest(raw), "size": len(raw)}
        elif op == "get_page":
            request = {"offset": int(args[2]), "length": int(args[3])}
            if not error:
                raw = h._content_bytes(result)
                summary = {"digest": _digest(raw), "size": len(raw)}
        elif op in ("download_block_blob", "download_page_blob"):
            if not error:
                raw = h._content_bytes(result)
                summary = {"digest": _digest(raw), "size": len(raw)}
        return target, request, summary

    def _table_summary(self, op, args, kwargs, result, error):
        table = str(args[0]) if args else ""
        request: Dict[str, Any] = {}
        summary: Dict[str, Any] = {}
        if op in ("insert", "update", "merge", "insert_or_replace",
                  "insert_or_merge", "get", "delete"):
            request = {"partition_key": str(args[1]) if len(args) > 1 else "",
                       "row_key": str(args[2]) if len(args) > 2 else ""}
            if op in ("update", "merge", "delete"):
                request["etag"] = kwargs.get("etag", "*")
            if not error and result is not None:
                etag = getattr(result, "etag", None)
                if etag is not None:
                    summary = {"etag": etag}
        elif op == "query_partition":
            request = {"partition_key": str(args[1]) if len(args) > 1 else ""}
            if not error:
                summary = {"count": len(result)}
        elif op == "query":
            if not error:
                summary = {"count": len(result.entities)}
        return table, request, summary


def audit_account(account, history: History) -> None:
    """Shadow ``account``'s client factories with auditing proxies.

    Works on any account whose clients come from ``<kind>_client()``
    factory methods (sim and emulator alike).  The cache service carries
    no conformance invariants and is left unaudited.
    """
    clock = account.state.clock  # SimClock wraps the DES env; same API

    def now_fn() -> float:
        return clock.now()

    limits = account.state.limits
    history.default_visibility = limits.default_visibility_timeout_seconds
    for kind in ("queue", "blob", "table"):
        factory = getattr(account, f"{kind}_client")

        def make(f=factory, k=kind):
            return AuditedClient(f(), history, k, now_fn)

        setattr(account, f"{kind}_client", make)
