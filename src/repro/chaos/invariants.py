"""Conformance checkers over a recorded operation history.

Each checker takes the evidence it needs — the :class:`~.history.History`
audit, the Tracer span stream, the Storage Analytics aggregate — and
returns a list of :class:`Violation`.  An empty list means the run
conformed.  :func:`check_history` bundles every applicable checker.

The checkers judge *conformance under chaos*: injected anomalies are
expected (the fault plan attributed them on the records they hit), so a
violation means the platform mis-handled an operation — a message
vanished with no injected loss, a download's bytes differ from the
writes, two conditional writes on one ETag both won, the analytics
meters drifted from the traffic, or the workload burned through its
retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cluster.ops import WRITE_KINDS
from .history import History
from .ledger import ledger_from_events

__all__ = [
    "Violation",
    "check_queue_conservation",
    "check_blob_integrity",
    "check_table_conformance",
    "check_analytics_conservation",
    "check_termination",
    "check_history",
]

#: ``span.operation`` values that count as ingress for billing purposes.
_WRITE_OPS = frozenset(kind.value for kind in WRITE_KINDS)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, attributable to a checker."""

    checker: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"checker": self.checker, "message": self.message}

    def __str__(self) -> str:
        return f"[{self.checker}] {self.message}"


def _violations(checker: str, messages) -> List[Violation]:
    return [Violation(checker, m) for m in messages]


# -- queue message conservation ----------------------------------------------

def check_queue_conservation(history: History) -> List[Violation]:
    """Every acked put consumed exactly once, modulo injected anomalies."""
    ledger = ledger_from_events(history.queue_events())
    return _violations("queue-conservation", ledger.violations())


# -- blob integrity -----------------------------------------------------------

class _BlockBlobReplay:
    def __init__(self) -> None:
        self.staged: Dict[str, bytes] = {}
        self.committed: List[str] = []
        self.tracked = True


class _PageBlobReplay:
    def __init__(self, max_size: int) -> None:
        self.buffer = bytearray(max_size)
        self.tracked = True


def check_blob_integrity(history: History) -> List[Violation]:
    """Reads return exactly the bytes prior writes put there.

    Replays the successful blob writes into a shadow model (block
    contents by id + committed list; page-blob byte buffer) and compares
    every successful read's digest against the replay.  Blobs that saw a
    write above the byte-tracking cap are skipped (size-only evidence).
    """
    out: List[Violation] = []
    blobs: Dict[str, Any] = {}

    def fail(rec, what: str) -> None:
        out.append(Violation(
            "blob-integrity",
            f"blob {rec.target!r}: {what} (op {rec.op} at t={rec.time:.3f})"))

    import hashlib

    def digest(raw: bytes) -> str:
        return hashlib.sha256(raw).hexdigest()[:16]

    for rec in history.records:
        if rec.service != "blob" or not rec.ok:
            continue
        if rec.op == "put_block":
            replay = blobs.setdefault(rec.target, _BlockBlobReplay())
            raw = rec.request.get("bytes")
            if raw is None:
                replay.tracked = False
            else:
                replay.staged[rec.request["block_id"]] = raw
        elif rec.op == "put_block_list":
            replay = blobs.setdefault(rec.target, _BlockBlobReplay())
            ids = list(rec.request["block_ids"])
            if any(b not in replay.staged for b in ids):
                replay.tracked = False
            elif rec.request["merge"]:
                replay.committed.extend(ids)
            else:
                replay.committed = ids
        elif rec.op == "upload_blob":
            raw = rec.request.get("bytes")
            replay = _BlockBlobReplay()
            if raw is None:
                replay.tracked = False
            else:
                replay.staged = {"": raw}
                replay.committed = [""]
            blobs[rec.target] = replay
        elif rec.op == "create_page_blob":
            blobs[rec.target] = _PageBlobReplay(rec.request["max_size"])
        elif rec.op == "put_page":
            replay = blobs.get(rec.target)
            if not isinstance(replay, _PageBlobReplay):
                continue
            raw = rec.request.get("bytes")
            if raw is None:
                replay.tracked = False
            else:
                offset = rec.request["offset"]
                replay.buffer[offset:offset + len(raw)] = raw
        elif rec.op == "get_block":
            replay = blobs.get(rec.target)
            if not isinstance(replay, _BlockBlobReplay) or not replay.tracked:
                continue
            index = rec.request["index"]
            if index >= len(replay.committed):
                fail(rec, f"read of uncommitted block index {index}")
                continue
            expected = replay.staged[replay.committed[index]]
            if rec.result["digest"] != digest(expected):
                fail(rec, f"block {index} bytes differ from the staged write")
        elif rec.op == "download_block_blob":
            replay = blobs.get(rec.target)
            if not isinstance(replay, _BlockBlobReplay) or not replay.tracked:
                continue
            expected = b"".join(replay.staged[b] for b in replay.committed)
            if rec.result["size"] != len(expected):
                fail(rec, f"downloaded {rec.result['size']} B where the "
                          f"committed blocks total {len(expected)} B")
            elif rec.result["digest"] != digest(expected):
                fail(rec, "downloaded bytes differ from the committed "
                          "blocks (chunked reassembly mismatch)")
        elif rec.op == "get_page":
            replay = blobs.get(rec.target)
            if not isinstance(replay, _PageBlobReplay) or not replay.tracked:
                continue
            offset, length = rec.request["offset"], rec.request["length"]
            expected = bytes(replay.buffer[offset:offset + length])
            if rec.result["digest"] != digest(expected):
                fail(rec, f"page range [{offset}, {offset + length}) differs "
                          f"from the written pages")
        elif rec.op == "download_page_blob":
            replay = blobs.get(rec.target)
            if not isinstance(replay, _PageBlobReplay) or not replay.tracked:
                continue
            expected = bytes(replay.buffer)
            if rec.result["size"] != len(expected):
                fail(rec, f"downloaded {rec.result['size']} B of a "
                          f"{len(expected)} B page blob")
            elif rec.result["digest"] != digest(expected):
                fail(rec, "downloaded page blob differs from the written "
                          "pages")
        elif rec.op == "delete_blob":
            blobs.pop(rec.target, None)
    return out


# -- table conformance --------------------------------------------------------

def check_table_conformance(history: History) -> List[Violation]:
    """ETag-conditional writes are exclusive; the entity ledger balances.

    Two successful conditional writes (a concrete ``etag`` argument, not
    the wildcard) against the same ``(table, pk, rk, etag)`` can never
    both win — the first bumps the ETag, so the second must see a
    precondition failure.  Separately, successful inserts minus
    successful deletes must equal the final entity count, per table,
    unless upserts/batches muddy the ledger (then it is skipped) or the
    table itself was deleted.
    """
    out: List[Violation] = []
    cond_wins: Dict[Tuple[str, str, str, str], int] = {}
    inserts: Dict[str, int] = {}
    deletes: Dict[str, int] = {}
    unbalanced: set = set()
    dropped: set = set()
    for rec in history.records:
        if rec.service != "table":
            continue
        if rec.op in ("update", "merge", "delete") and rec.ok:
            etag = rec.request.get("etag")
            if etag not in (None, "*"):
                key = (rec.target, rec.request["partition_key"],
                       rec.request["row_key"], etag)
                cond_wins[key] = cond_wins.get(key, 0) + 1
        if not rec.ok:
            continue
        if rec.op == "insert":
            inserts[rec.target] = inserts.get(rec.target, 0) + 1
        elif rec.op == "delete":
            deletes[rec.target] = deletes.get(rec.target, 0) + 1
        elif rec.op in ("insert_or_replace", "insert_or_merge"):
            unbalanced.add(rec.target)  # upsert: insert-vs-replace unknown
        elif rec.op == "delete_table":
            dropped.add(rec.target)
    for key, wins in sorted(cond_wins.items()):
        if wins > 1:
            table, pk, rk, etag = key
            out.append(Violation(
                "table-conformance",
                f"table {table!r}: {wins} conditional writes against "
                f"({pk!r}, {rk!r}) etag {etag!r} all succeeded (optimistic "
                f"concurrency broken)"))
    for table in sorted(set(inserts) | set(deletes)):
        if table in unbalanced or table in dropped:
            continue
        expected = inserts.get(table, 0) - deletes.get(table, 0)
        actual = history.final_entity_counts.get(table, 0)
        if expected != actual:
            out.append(Violation(
                "table-conformance",
                f"table {table!r}: entity ledger expects {expected} "
                f"entities (inserts - deletes) but {actual} remain"))
    return out


# -- analytics / billing conservation -----------------------------------------

def check_analytics_conservation(spans, metrics) -> List[Violation]:
    """Storage Analytics meters reconcile with the traced span stream.

    Both sides observe every round trip that crosses the interceptor
    pipeline, so per service: request counts match, and the
    ingress/egress byte split (by :data:`~repro.cluster.ops.WRITE_KINDS`)
    matches the meters the billing pipeline would charge from.

    Spans that failed with a *non-protocol* error (empty ``error_code``:
    a role crash interrupting the round trip mid-flight) are excluded —
    Storage Analytics never wrote a $logs line for those by design, so
    they are not a conservation leak.
    """
    out: List[Violation] = []
    per_service: Dict[str, Dict[str, int]] = {}
    for span in spans:
        if span.status != "ok" and not span.error_code:
            continue  # interrupted mid-flight; analytics never saw it
        side = per_service.setdefault(
            span.service, {"requests": 0, "ingress": 0, "egress": 0})
        side["requests"] += 1
        direction = "ingress" if span.operation in _WRITE_OPS else "egress"
        side[direction] += span.nbytes
    services = set(per_service) | set(metrics.services())
    for service in sorted(services):
        side = per_service.get(
            service, {"requests": 0, "ingress": 0, "egress": 0})
        totals = metrics.service_totals(service)
        if totals.total_requests != side["requests"]:
            out.append(Violation(
                "analytics-conservation",
                f"service {service!r}: analytics metered "
                f"{totals.total_requests} requests but the trace recorded "
                f"{side['requests']}"))
        if totals.total_ingress != side["ingress"]:
            out.append(Violation(
                "analytics-conservation",
                f"service {service!r}: metered ingress "
                f"{totals.total_ingress} B != traced write bytes "
                f"{side['ingress']} B"))
        if totals.total_egress != side["egress"]:
            out.append(Violation(
                "analytics-conservation",
                f"service {service!r}: metered egress "
                f"{totals.total_egress} B != traced read bytes "
                f"{side['egress']} B"))
    return out


# -- termination --------------------------------------------------------------

def check_termination(spans, *, retry_budget: int,
                      completed: bool = True) -> List[Violation]:
    """The workload finished, within a bounded retry budget per op."""
    out: List[Violation] = []
    if not completed:
        out.append(Violation(
            "termination", "the workload did not run to completion"))
    worst = 0
    for span in spans:
        worst = max(worst, span.retries)
    if worst > retry_budget:
        out.append(Violation(
            "termination",
            f"an operation took {worst} retries against a budget of "
            f"{retry_budget}"))
    return out


# -- the bundle ---------------------------------------------------------------

def check_history(history: History, *, spans=None, metrics=None,
                  retry_budget: Optional[int] = None,
                  completed: bool = True) -> List[Violation]:
    """Run every checker the supplied evidence makes possible."""
    out: List[Violation] = []
    out.extend(check_queue_conservation(history))
    out.extend(check_blob_integrity(history))
    out.extend(check_table_conformance(history))
    if spans is not None and metrics is not None:
        out.extend(check_analytics_conservation(spans, metrics))
    if spans is not None and retry_budget is not None:
        out.extend(check_termination(spans, retry_budget=retry_budget,
                                     completed=completed))
    return out
