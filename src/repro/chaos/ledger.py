"""The queue-conservation ledger: a mergeable accounting monoid.

A :class:`QueueLedger` counts what happened to every queue message over a
run, built by folding *ledger events* — plain tuples, so tests can
generate synthetic histories without the harness:

* ``("put", queue, msg_id)`` — an acked ``PutMessage`` whose message
  landed (the service returned the id);
* ``("put_lost", queue, injected)`` — an acked put whose payload never
  landed; ``injected`` says whether a message-loss fault was attributed;
* ``("deliver", queue, msg_id, dequeue_count, explained)`` — one
  ``GetMessage`` delivery; ``explained`` is ``""`` for a first delivery,
  ``"dup"`` when an injected duplicate-delivery fault accounts for a
  repeat, ``"timeout"`` when a genuine visibility-timeout expiry does;
* ``("delete", queue, msg_id, found)`` — a ``DeleteMessage`` attempt;
* ``("remaining", queue, msg_id)`` — a message still in the queue when
  the run ended (from the final state snapshot);
* ``("purge", queue)`` — the queue itself was deleted, taking any
  leftover messages with it (``DeleteQueue`` clears the queue).

The ledger is a **commutative monoid** under :meth:`QueueLedger.merge`:
``empty`` is the identity, merge is associative and commutative (it sums
counters pointwise), so per-worker or per-phase sub-ledgers can be folded
in any order — the property the hypothesis tests in
``tests/chaos/test_ledger.py`` pin down.

:meth:`QueueLedger.violations` evaluates the conservation laws:

1. a put acked without a landing and without injected loss is a silent
   message drop;
2. a delivered id must have been put (no phantom messages);
3. per message, deliveries beyond the first need an explanation
   (injected duplicate delivery or an expired visibility timeout);
4. deletes never exceed deliveries (a receipt proves a delivery);
5. every landed put is deleted, still remaining, or covered by a queue
   purge — otherwise the message vanished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

__all__ = ["QueueLedger", "ledger_from_events"]


def _merge_counts(a: Dict, b: Dict) -> Dict:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0) + value
    return out


@dataclass(frozen=True)
class QueueLedger:
    """Message-conservation accounting for any number of queues."""

    #: (queue, msg_id) -> acked puts that landed (normally exactly 1).
    puts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: queue -> acked puts lost to an *injected* message-loss fault.
    lost_injected: Dict[str, int] = field(default_factory=dict)
    #: queue -> acked puts lost with no fault attributed (a real bug).
    lost_silent: Dict[str, int] = field(default_factory=dict)
    #: (queue, msg_id) -> delivery count.
    deliveries: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (queue, msg_id) -> deliveries explained by injected duplicate
    #: delivery or by a genuine visibility-timeout expiry.
    explained: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (queue, msg_id) -> successful deletes.
    deletes: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (queue, msg_id) -> delete attempts that found nothing (stale
    #: receipts after redelivery; tolerated, counted for diagnostics).
    deletes_missing: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (queue, msg_id) -> messages still present at the end of the run.
    remaining: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Queues that were deleted (leftover messages were purged with them).
    purged: Tuple[str, ...] = ()

    # -- monoid ------------------------------------------------------------
    @classmethod
    def empty(cls) -> "QueueLedger":
        return cls()

    def merge(self, other: "QueueLedger") -> "QueueLedger":
        """Pointwise sum: associative, commutative, ``empty`` is identity."""
        return QueueLedger(
            puts=_merge_counts(self.puts, other.puts),
            lost_injected=_merge_counts(self.lost_injected,
                                        other.lost_injected),
            lost_silent=_merge_counts(self.lost_silent, other.lost_silent),
            deliveries=_merge_counts(self.deliveries, other.deliveries),
            explained=_merge_counts(self.explained, other.explained),
            deletes=_merge_counts(self.deletes, other.deletes),
            deletes_missing=_merge_counts(self.deletes_missing,
                                          other.deletes_missing),
            remaining=_merge_counts(self.remaining, other.remaining),
            purged=tuple(sorted(set(self.purged) | set(other.purged))),
        )

    # -- folding -----------------------------------------------------------
    def observe(self, event: Tuple) -> "QueueLedger":
        """Fold one ledger event (returns a new ledger; small histories)."""
        return self.merge(ledger_from_events([event]))

    # -- derived -----------------------------------------------------------
    def queues(self) -> List[str]:
        names: Set[str] = set(self.purged)
        for source in (self.puts, self.deliveries, self.deletes,
                       self.remaining):
            names.update(q for q, _ in source)
        names.update(self.lost_injected)
        names.update(self.lost_silent)
        return sorted(names)

    def acked_puts(self, queue: str) -> int:
        landed = sum(n for (q, _), n in self.puts.items() if q == queue)
        return (landed + self.lost_injected.get(queue, 0)
                + self.lost_silent.get(queue, 0))

    # -- the laws ----------------------------------------------------------
    def violations(self) -> List[str]:
        """Every conservation-law breach, as human-readable strings."""
        out: List[str] = []
        for queue, n in sorted(self.lost_silent.items()):
            if n > 0:
                out.append(
                    f"queue {queue!r}: {n} acked put(s) vanished without an "
                    f"injected message-loss fault")
        put_keys = set(self.puts)
        for key in sorted(set(self.deliveries) - put_keys):
            out.append(
                f"queue {key[0]!r}: delivery of message {key[1]!r} that was "
                f"never put (phantom message)")
        for key, n in sorted(self.deliveries.items()):
            allowed = 1 + self.explained.get(key, 0)
            if n > allowed:
                out.append(
                    f"queue {key[0]!r}: message {key[1]!r} delivered {n} "
                    f"times with only {allowed - 1} explained repeat(s) "
                    f"(unexplained duplicate delivery)")
        for key, n in sorted(self.deletes.items()):
            if n > self.deliveries.get(key, 0):
                out.append(
                    f"queue {key[0]!r}: message {key[1]!r} deleted {n} "
                    f"time(s) against {self.deliveries.get(key, 0)} "
                    f"deliveries (delete without delivery)")
        purged = set(self.purged)
        for key in sorted(put_keys):
            queue, msg_id = key
            terminated = (self.deletes.get(key, 0) > 0
                          or self.remaining.get(key, 0) > 0
                          or queue in purged)
            if not terminated:
                out.append(
                    f"queue {queue!r}: message {msg_id!r} was put but is "
                    f"neither deleted, remaining, nor purged (message "
                    f"vanished)")
        for key in sorted(set(self.remaining) - put_keys):
            out.append(
                f"queue {key[0]!r}: remaining message {key[1]!r} has no "
                f"recorded put (phantom remainder)")
        return out


def ledger_from_events(events: Iterable[Tuple]) -> QueueLedger:
    """Fold plain ledger events into one :class:`QueueLedger`."""
    puts: Dict[Tuple[str, str], int] = {}
    lost_injected: Dict[str, int] = {}
    lost_silent: Dict[str, int] = {}
    deliveries: Dict[Tuple[str, str], int] = {}
    explained: Dict[Tuple[str, str], int] = {}
    deletes: Dict[Tuple[str, str], int] = {}
    deletes_missing: Dict[Tuple[str, str], int] = {}
    remaining: Dict[Tuple[str, str], int] = {}
    purged: Set[str] = set()

    def bump(counter: Dict, key) -> None:
        counter[key] = counter.get(key, 0) + 1

    for event in events:
        kind = event[0]
        if kind == "put":
            bump(puts, (event[1], event[2]))
        elif kind == "put_lost":
            bump(lost_injected if event[2] else lost_silent, event[1])
        elif kind == "deliver":
            key = (event[1], event[2])
            bump(deliveries, key)
            if event[4]:
                bump(explained, key)
        elif kind == "delete":
            key = (event[1], event[2])
            bump(deletes if event[3] else deletes_missing, key)
        elif kind == "remaining":
            bump(remaining, (event[1], event[2]))
        elif kind == "purge":
            purged.add(event[1])
        else:
            raise ValueError(f"unknown ledger event kind {kind!r}")
    return QueueLedger(
        puts=puts, lost_injected=lost_injected, lost_silent=lost_silent,
        deliveries=deliveries, explained=explained, deletes=deletes,
        deletes_missing=deletes_missing, remaining=remaining,
        purged=tuple(sorted(purged)),
    )
