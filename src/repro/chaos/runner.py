"""Run figure workloads and the bag-of-tasks app under chaos schedules.

:func:`run_chaos` drives one figure's workload(s) across the chaos
scale's worker counts with a seeded fault schedule installed, the
client-level audit recording history, the Tracer recording spans, and
Storage Analytics metering — then checks every conformance invariant
and folds the evidence into a :class:`~.verdict.ChaosVerdict`.

:func:`run_chaos_taskpool` does the same for the paper's bag-of-tasks
application, adding worker-role crash/restart chaos driven through
:class:`~repro.compute.supervisor.Supervisor`: crashed workers leave
their in-flight task invisible, the visibility timeout re-delivers it,
and the ledger must still balance — the paper's "in-built fault
tolerance" claim, checked rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..storage import KB
from .history import History, audit_account
from .invariants import Violation, check_history
from .schedule import ChaosSchedule, build_schedule
from .verdict import ChaosRunError, ChaosVerdict

__all__ = [
    "CHAOS_SCALE",
    "ChaosRun",
    "chaos_workloads",
    "run_chaos",
    "run_chaos_taskpool",
]


def _crash_verdict(verdict: ChaosVerdict, label: str,
                   exc: BaseException) -> ChaosRunError:
    """Fold a harness crash into the partial verdict (never swallow it).

    A crashed run must still surface its evidence: the violation is
    appended, and the returned :class:`ChaosRunError` carries the partial
    verdict so the CLI writes the JSON artifact before exiting nonzero.
    """
    verdict.violations.append(Violation(
        "harness",
        f"{label}: run crashed before checks completed: "
        f"{type(exc).__name__}: {exc}"))
    return ChaosRunError(f"chaos run {label} crashed: {exc}", verdict)

#: Default per-op retry budget for the termination invariant.
RETRY_BUDGET = 64

#: Small scale: a chaos run answers "still correct?", not "how fast?",
#: so a few dozen operations per phase exercise every code path while a
#: full profile-matrix sweep stays in CI-smoke territory.
CHAOS_SCALE = None  # set below (needs BenchScale from repro.bench)


def _chaos_scale():
    from ..bench.figures import BenchScale
    return BenchScale(
        name="chaos",
        worker_counts=(2, 4),
        blob_total_chunks=8,
        blob_repeats=1,
        queue_total_messages=64,
        queue_message_sizes=(4 * KB, 16 * KB),
        shared_total_transactions=60,
        shared_think_times=(1.0,),
        table_entity_count=24,
        table_entity_sizes=(4 * KB, 16 * KB),
        seed=2012,
    )


#: Workload kinds behind each figure (same mapping as FigureRunner).
_FIGURE_WORKLOADS: Dict[str, Tuple[str, ...]] = {
    "fig4": ("blob",),
    "fig5": ("blob",),
    "fig6": ("queue_sep",),
    "fig7": ("queue_shared",),
    "fig8": ("table",),
    "fig9": ("queue_sep", "table"),
}


def chaos_workloads() -> Dict[str, Tuple[str, ...]]:
    """Figure name -> workload kinds it runs under chaos."""
    return dict(_FIGURE_WORKLOADS)


def _body_factories(scale) -> Dict[str, Callable]:
    """Workload kind -> zero-arg factory of a fresh role body."""
    from ..core import (
        BlobBenchConfig,
        SeparateQueueBenchConfig,
        SharedQueueBenchConfig,
        TableBenchConfig,
        blob_bench_body,
        separate_queue_bench_body,
        shared_queue_bench_body,
        table_bench_body,
    )
    blob_cfg = BlobBenchConfig(
        chunk_bytes=64 * KB,  # small chunks: history tracks full payloads
        total_chunks=scale.blob_total_chunks,
        repeats=scale.blob_repeats,
        seed=scale.seed,
    )
    queue_cfg = SeparateQueueBenchConfig(
        total_messages=scale.queue_total_messages,
        message_sizes=scale.queue_message_sizes,
        seed=scale.seed,
    )
    shared_cfg = SharedQueueBenchConfig(
        total_transactions=scale.shared_total_transactions,
        think_times=scale.shared_think_times,
        seed=scale.seed,
    )
    table_cfg = TableBenchConfig(
        entity_count=scale.table_entity_count,
        entity_sizes=scale.table_entity_sizes,
        seed=scale.seed,
    )
    return {
        "blob": lambda: blob_bench_body(blob_cfg),
        "queue_sep": lambda: separate_queue_bench_body(queue_cfg),
        "queue_shared": lambda: shared_queue_bench_body(shared_cfg),
        "table": lambda: table_bench_body(table_cfg),
    }


@dataclass
class ChaosRun:
    """Evidence gathered from one chaos-instrumented benchmark run."""

    label: str
    workers: int
    history: History
    result: object  # BenchResult (with .trace)
    metrics: object  # MetricsAggregator
    violations: List[Violation] = field(default_factory=list)


def _plan_owner(account):
    """Where the fault plan and pipeline live, on any account flavour."""
    owner = getattr(account, "cluster", None)
    if owner is not None:
        return owner
    return getattr(account, "emulator", None) or account


def _run_one(label: str, body_factory: Callable, workers: int, *,
             scale, schedule: ChaosSchedule, retry_budget: int,
             backend: object = "sim") -> ChaosRun:
    """One benchmark run under one chaos schedule, fully checked."""
    from ..core.runner import RunConfig, run_bench
    from ..storage.analytics import attach_analytics

    history = History()
    captured: Dict[str, object] = {}

    def instrument(account):
        owner = _plan_owner(account)
        plan = schedule.plan()
        plan.subscribe(history.on_fault)
        owner.set_fault_plan(plan)
        _, metrics = attach_analytics(owner)
        audit_account(account, history)
        captured["account"] = account
        captured["metrics"] = metrics

    config = RunConfig(workers=workers, seed=scale.seed, label=label,
                       backend=backend, trace=True, instrument=instrument)
    result = run_bench(body_factory, config)
    history.snapshot_final_state(captured["account"].state)
    violations = check_history(
        history, spans=result.trace.spans, metrics=captured["metrics"],
        retry_budget=retry_budget, completed=True)
    return ChaosRun(label=label, workers=workers, history=history,
                    result=result, metrics=captured["metrics"],
                    violations=violations)


def run_chaos(figure: str, profile: str = "none", seed: int = 0, *,
              scale=None, retry_budget: int = RETRY_BUDGET,
              backend: object = "sim", splice: bool = False) -> ChaosVerdict:
    """Run one figure's workload(s) under a seeded chaos schedule.

    ``splice`` is the harness's self-test: after the real runs check
    clean, one successful put in the first queue-bearing history is
    rewritten as a silent drop — the conservation checker *must* flag
    it, proving a real message-loss bug could not slip through.
    """
    try:
        kinds = _FIGURE_WORKLOADS[figure]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; choose from "
            f"{', '.join(sorted(_FIGURE_WORKLOADS))}") from None
    if scale is None:
        scale = _chaos_scale()
    factories = _body_factories(scale)
    schedule = build_schedule(profile, seed=seed)
    verdict = ChaosVerdict(workload=figure, profile=profile, seed=seed,
                           schedules=[schedule.describe()])
    runs: List[ChaosRun] = []
    for kind in kinds:
        for workers in scale.worker_counts:
            label = f"{figure}:{kind}@{workers}"
            try:
                run = _run_one(label, factories[kind], workers, scale=scale,
                               schedule=schedule, retry_budget=retry_budget,
                               backend=backend)
            except Exception as exc:
                verdict.counts = {
                    "runs": len(runs),
                    "audited_ops": sum(len(r.history.records) for r in runs),
                }
                raise _crash_verdict(verdict, label, exc) from exc
            runs.append(run)
            verdict.runs.append(label)
            verdict.violations.extend(
                Violation(v.checker, f"{label}: {v.message}")
                for v in run.violations)
    verdict.counts = {
        "runs": len(runs),
        "audited_ops": sum(len(r.history.records) for r in runs),
        "spans": sum(len(r.result.trace.spans) for r in runs),
        "faults_injected": sum(len(r.history.fault_events) for r in runs),
    }
    if splice:
        verdict.counts["spliced"] = 0
        for run in runs:
            try:
                msg_id = run.history.splice_drop()
            except ValueError:
                continue
            verdict.counts["spliced"] = 1
            spliced = check_history(run.history)
            verdict.violations.extend(
                Violation(v.checker,
                          f"{run.label} [spliced {msg_id}]: {v.message}")
                for v in spliced)
            break
    return verdict


def run_chaos_taskpool(profile: str = "none", seed: int = 0, *,
                       crashes: int = 2, tasks: int = 16, workers: int = 4,
                       work_s: float = 1.0, visibility_timeout: float = 60.0,
                       recycle_delay: float = 3.0, horizon: float = 900.0,
                       retry_budget: int = RETRY_BUDGET) -> ChaosVerdict:
    """The bag-of-tasks app under faults *and* worker-role crashes.

    Crash events from the schedule kill running worker instances through
    the deployment's fault-injection hook; a
    :class:`~repro.compute.supervisor.Supervisor` recycles them after
    ``recycle_delay`` seconds.  A crashed worker's in-flight task stays
    invisible until ``visibility_timeout`` expires, is re-delivered, and
    must complete — the ledger explains the repeat delivery as a genuine
    timeout expiry and every task must appear in the results exactly
    once.
    """
    from ..compute import Fabric, Supervisor
    from ..compute.roles import RoleStatus
    from ..faults.profiles import APP_NAME
    from ..framework import TaskPoolApp, TaskPoolConfig
    from ..observability import Tracer, sim_worker_resolver
    from ..sim import SimStorageAccount
    from ..simkit import AnyOf, Environment
    from ..storage.analytics import attach_analytics

    # Crashes must land while workers are busy: the bag drains in roughly
    # tasks/workers rounds of work_s each, so aim inside the first 80% of
    # that busy phase (a crash after completion tests nothing).
    busy = work_s * tasks / max(1, workers)
    schedule = build_schedule(profile, seed=seed, crashes=crashes,
                              workers=workers,
                              crash_window=(2.0, max(3.0, 2.0 + 0.8 * busy)))
    verdict = ChaosVerdict(workload="taskpool", profile=profile, seed=seed,
                           runs=[f"taskpool@{workers}"],
                           schedules=[schedule.describe()])
    history = History()
    try:
        env = Environment()
        account = SimStorageAccount(env, seed=seed)
        plan = schedule.plan()
        plan.subscribe(history.on_fault)
        account.cluster.set_fault_plan(plan)
        _, metrics = attach_analytics(account.cluster)
        tracer = Tracer(
            trace_id=f"chaos-taskpool-{profile}-{seed}",
            worker_resolver=sim_worker_resolver(env)).install(account)
        audit_account(account, history)

        def handler(ctx, payload):
            yield ctx.sleep(work_s)
            return payload

        config = TaskPoolConfig(name=APP_NAME,
                                visibility_timeout=visibility_timeout,
                                idle_poll_interval=0.5)
        app = TaskPoolApp(config, handler)
        payloads = [f"task-{i}".encode() for i in range(tasks)]

        fabric = Fabric(env, account)
        web = fabric.deploy(app.web_role_body(payloads, poll_interval=0.5),
                            instances=1, name="web")
        pool = fabric.deploy(app.worker_role_body(), instances=workers,
                             name="workers", contain_crashes=True)
        supervisor = Supervisor(pool, recycle_delay=recycle_delay).start()

        def crash_driver():
            now = 0.0
            for event in schedule.crashes:
                if event.time > now:
                    yield env.timeout(event.time - now)
                    now = event.time
                instance = pool.instances[event.role_id]
                if instance.status is RoleStatus.RUNNING:
                    pool.fail_instance(event.role_id, cause="chaos kill")
                    history.crash_events.append(
                        (env.now, "crash", event.role_id))

        if schedule.crashes:
            env.process(crash_driver(), name="chaos-crash-driver")
        fabric.start_all()
        web_done = web.all_done_event()
        env.run(until=AnyOf(env, [web_done, env.timeout(horizon)]))
        completed = web_done.callbacks is None  # processed => web finished
        supervisor.stop()
        # Let surviving workers observe the stop signal and exit cleanly.
        env.run(until=env.timeout(config.idle_poll_interval * 4 + 2.0))
        for record in supervisor.restarts:
            history.crash_events.append(
                (record.restarted_at, "restart", record.role_id))
        history.crash_events.sort()
        history.snapshot_final_state(account.state)
    except Exception as exc:
        verdict.counts = {"audited_ops": len(history.records)}
        raise _crash_verdict(verdict, f"taskpool@{workers}", exc) from exc
    verdict.violations.extend(check_history(
        history, spans=tracer.spans, metrics=metrics,
        retry_budget=retry_budget, completed=completed))
    if completed:
        got = sorted(r.payload for r in app.results)
        want = sorted(payloads)
        dup_injected = any(e[1] == "duplicate_delivery"
                           for e in history.fault_events)
        if got != want and not dup_injected:
            verdict.violations.append(Violation(
                "taskpool",
                f"collected results do not cover every task exactly once: "
                f"{len(got)} results for {len(want)} tasks"))
        elif dup_injected:
            # At-least-once semantics: an injected duplicate delivery
            # legitimately runs a task twice, so its duplicate result may
            # displace another from the bounded drain.  Still required:
            # no phantom results, and nothing undelivered went missing
            # (conservation already accounts each message individually).
            phantoms = set(got) - set(want)
            if phantoms:
                verdict.violations.append(Violation(
                    "taskpool",
                    f"{len(phantoms)} result(s) match no submitted task"))
    redeliveries = sum(
        1 for event in history.queue_events()
        if event[0] == "deliver" and event[3] > 1)
    verdict.counts = {
        "tasks": tasks,
        "results_collected": len(app.results),
        "worker_crashes": sum(1 for e in history.crash_events
                              if e[1] == "crash"),
        "worker_restarts": supervisor.restart_count,
        "redeliveries": redeliveries,
        "audited_ops": len(history.records),
        "spans": len(tracer.spans),
        "faults_injected": len(history.fault_events),
        "completion_time": round(env.now, 3),
    }
    return verdict
