"""Seeded randomized fault schedules, composed from the named profiles.

A :class:`ChaosSchedule` is a named fault profile whose window start
times have been jittered by a seeded RNG — so ``--seed N`` explores a
different alignment of the same scenario against the workload, fully
reproducibly — plus an optional list of worker-role
:class:`CrashEvent`\\ s the chaos runner drives through
:class:`~repro.compute.supervisor.Supervisor`-managed deployments.

Crash events only apply to the bag-of-tasks workload: the figure bodies
synchronize on queue barriers, so killing a figure worker mid-phase
would deadlock the remaining workers at the next barrier — that is a
property of Algorithm 2's protocol, not a platform bug the harness
should flag.  Crash *recovery* (the invariant that a crashed worker's
in-flight task is redelivered and completed) is exercised where the
application model supports it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..faults.profiles import get_profile
from ..faults.spec import FaultSpec

__all__ = ["CrashEvent", "ChaosSchedule", "build_schedule"]


@dataclass(frozen=True)
class CrashEvent:
    """Kill worker role ``role_id`` at simulated time ``time``."""

    time: float
    role_id: int


@dataclass(frozen=True)
class ChaosSchedule:
    """One reproducible chaos scenario: jittered faults + crashes."""

    profile: str
    seed: int
    specs: Tuple[FaultSpec, ...]
    crashes: Tuple[CrashEvent, ...] = ()

    def plan(self):
        """A fresh (stateful) :class:`~repro.faults.plan.FaultPlan`."""
        from ..faults.plan import FaultPlan
        return FaultPlan(self.specs, seed=self.seed)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary for the chaos verdict."""
        return {
            "profile": self.profile,
            "seed": self.seed,
            "faults": [
                dict(
                    {
                        "kind": s.kind.value,
                        "service": s.service,
                        "partition": s.partition,
                        "region": s.region,
                        "start": round(s.start, 3),
                        "duration": (None if s.duration == float("inf")
                                     else round(s.duration, 3)),
                        "probability": s.probability,
                    },
                    **({"node": s.node} if s.node is not None else {}),
                )
                for s in self.specs
            ],
            "crashes": [
                {"time": round(c.time, 3), "role_id": c.role_id}
                for c in self.crashes
            ],
        }


def build_schedule(profile: str, *, seed: int, jitter: float = 5.0,
                   crashes: int = 0, workers: int = 1,
                   crash_window: Optional[Tuple[float, float]] = None
                   ) -> ChaosSchedule:
    """Compose a seeded randomized schedule from a named profile.

    Every windowed fault spec's ``start`` is shifted by a seeded uniform
    draw in ``[0, jitter)`` — the same profile lands differently against
    the workload per seed, while two runs with the same ``(profile,
    seed)`` are identical.  ``crashes`` worker-kill events are drawn
    uniformly over ``crash_window`` against round-robin role ids; when
    the caller passes none, the profile's own ``crashes`` default applies
    (the ``spot-eviction`` profile carries its evictions this way).
    """
    rng = np.random.default_rng(seed)
    profile_obj = get_profile(profile)
    if crashes == 0:
        crashes = profile_obj.crashes
    specs = tuple(
        replace(spec, start=spec.start + float(rng.uniform(0.0, jitter)))
        if jitter > 0 else spec
        for spec in profile_obj.specs
    )
    crash_events: Tuple[CrashEvent, ...] = ()
    if crashes > 0:
        lo, hi = crash_window if crash_window is not None else (2.0, 30.0)
        times = sorted(float(t) for t in rng.uniform(lo, hi, size=crashes))
        crash_events = tuple(
            CrashEvent(time=t, role_id=i % max(1, workers))
            for i, t in enumerate(times)
        )
    return ChaosSchedule(profile=profile, seed=seed, specs=specs,
                         crashes=crash_events)
