"""The chaos verdict: what ran, what was injected, what was violated."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .invariants import Violation

__all__ = ["ChaosRunError", "ChaosVerdict"]


@dataclass
class ChaosVerdict:
    """Outcome of one chaos conformance run (CLI- and JSON-friendly)."""

    workload: str
    profile: str
    seed: int
    #: Per-run labels, e.g. ``queue_sep/w2``.
    runs: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    #: Evidence sizes: audited ops, spans, injected faults, crashes, ...
    counts: Dict[str, int] = field(default_factory=dict)
    #: Schedule echoes (one per run) for reproduction.
    schedules: List[Dict] = field(default_factory=list)
    #: Geo-replication evidence (GeoAccount.describe()); empty when the
    #: workload ran single-region.
    geo: Dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        doc = {
            "workload": self.workload,
            "profile": self.profile,
            "seed": self.seed,
            "passed": self.passed,
            "runs": list(self.runs),
            "violations": [v.to_dict() for v in self.violations],
            "counts": dict(self.counts),
            "schedules": list(self.schedules),
        }
        if self.geo:
            doc["geo"] = dict(self.geo)
        return doc

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        state = "PASS" if self.passed else f"FAIL ({len(self.violations)})"
        return (f"chaos {self.workload} profile={self.profile} "
                f"seed={self.seed}: {state}")


class ChaosRunError(RuntimeError):
    """A chaos run crashed mid-campaign.

    Carries the **partial** :class:`ChaosVerdict` accumulated up to the
    crash — with the crash itself appended as a ``harness`` violation —
    so the CLI can still write the verdict JSON artifact before exiting
    nonzero (CI captures *what* failed, not just that something did).
    """

    def __init__(self, message: str, verdict: ChaosVerdict) -> None:
        super().__init__(message)
        self.verdict = verdict
