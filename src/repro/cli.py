"""Command-line interface: regenerate the paper's tables and figures.

Usage (also available as ``python -m repro``)::

    python -m repro list                 # what can be regenerated
    python -m repro table1               # paper Table I
    python -m repro fig 4                # Figure 4 (a+b)
    python -m repro fig 6 --full         # Figure 6 at paper scale
    python -m repro all --csv out/       # everything, also CSV files
    python -m repro all --jobs $(nproc)  # same figures, all cores
    python -m repro trace fig6           # Figure 6 + trace artifacts
    python -m repro claims               # the qualitative claims checked
    python -m repro chaos fig6 --profile queue-storm --seed 7
    python -m repro chaos fig6 --profile queue-storm --seeds 7,8,9 --jobs 3
    python -m repro chaos taskpool --profile lossy-queue --crashes 2
    python -m repro chaos --profile region-outage --seeds 7,11
    python -m repro geo --profile geo-failover --failover forced
    python -m repro perf --quick         # kernel + sweep perf, BENCH_core.json
    python -m repro load --process poisson --rate 25 --slo "p95=250ms"
    python -m repro load --find-knee --slo "p95=150ms" --out load/

Exit codes are documented in ``docs/cli.md``: 0 success, 1 a run
completed but failed its checks (audit mismatch, chaos violation,
incomplete fault run, dropped spans), 2 bad usage.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .backend import BACKENDS
from .bench import (
    FigureRunner,
    PAPER_SCALE,
    QUICK_SCALE,
    figure_table1,
    qualitative_claims,
)

__all__ = ["main", "build_parser"]

_FIGS = {
    "table1": "Table I: VM configurations",
    "4": "Fig 4: Blob storage throughput & time",
    "5": "Fig 5: Blob download one page/block at a time",
    "6": "Fig 6: Queue benchmarks, separate queue per worker",
    "7": "Fig 7: Queue benchmarks, single shared queue",
    "8": "Fig 8: Table storage Insert/Query/Update/Delete",
    "9": "Fig 9: Per-operation time, Queue vs Table",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AzureBench reproduction: regenerate the paper's "
                    "tables and figures on the simulated fabric.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list regenerable tables/figures")
    sub.add_parser("claims", help="print the paper's qualitative claims")
    sub.add_parser("table1", help="print paper Table I")

    fig = sub.add_parser("fig", help="regenerate one figure")
    fig.add_argument("number", choices=["4", "5", "6", "7", "8", "9"])
    fig.add_argument("--full", action="store_true",
                     help="paper scale (default: quick scale)")
    fig.add_argument("--csv", metavar="DIR",
                     help="also write <DIR>/<figure>.csv files")
    fig.add_argument("--backend", choices=sorted(BACKENDS), default="sim",
                     help="run the sweeps on the seeded DES fabric (sim, "
                          "default) or on the threaded emulator")
    fig.add_argument("--checkpoint", metavar="FILE",
                     help="persist each completed sweep cell to FILE and "
                          "resume from it (kill-safe figure campaigns)")
    fig.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="fan independent sweep cells out over N worker "
                          "processes (default 1: serial; results are "
                          "bit-identical either way)")
    fig.add_argument("--arrivals", metavar="SPEC",
                     help="stagger worker starts on an open-loop arrival "
                          "process, e.g. 'poisson:25' or "
                          "'mmpp:40:on=2,off=6' (docs/traffic.md)")

    all_cmd = sub.add_parser("all", help="regenerate every table and figure")
    all_cmd.add_argument("--full", action="store_true")
    all_cmd.add_argument("--csv", metavar="DIR")
    all_cmd.add_argument("--backend", choices=sorted(BACKENDS),
                         default="sim")
    all_cmd.add_argument("--checkpoint", metavar="FILE",
                         help="persist each completed sweep cell to FILE "
                              "and resume from it")
    all_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="fan the whole figure x worker-count cell "
                              "matrix out over N worker processes "
                              "(default 1: serial; bit-identical results)")
    all_cmd.add_argument("--arrivals", metavar="SPEC",
                         help="stagger worker starts on an open-loop "
                              "arrival process (see 'repro fig')")

    trace = sub.add_parser(
        "trace", help="regenerate one figure with tracing enabled and "
                      "write trace.json / histograms.json / manifest.json")
    trace.add_argument("figure", metavar="FIGURE",
                       help='figure to trace: 4-9, "fig6" also accepted')
    trace.add_argument("--full", action="store_true",
                       help="paper scale (default: quick scale)")
    trace.add_argument("--out", metavar="DIR",
                       help="artifact directory (default: traces/fig<N>)")
    trace.add_argument("--backend", choices=sorted(BACKENDS), default="sim")

    report = sub.add_parser(
        "report", help="full reproduction report (figures + audit + analysis)")
    report.add_argument("--full", action="store_true")
    report.add_argument("--out", metavar="FILE",
                        help="also write the report to FILE")

    audit = sub.add_parser(
        "audit", help="run only the paper-vs-measured audit table")
    audit.add_argument("--full", action="store_true")

    perf = sub.add_parser(
        "perf", help="performance harness: kernel events/sec + sweep "
                     "wall-clock serial vs --jobs, written to "
                     "BENCH_core.json (docs/performance.md)")
    perf.add_argument("--quick", action="store_true",
                      help="CI-smoke budget: time only the fig6 sweep")
    perf.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="process count for the parallel sweep leg "
                           "(default: all available cores)")
    perf.add_argument("--out", metavar="FILE", default="BENCH_core.json",
                      help="where to write the measurements "
                           "(default: BENCH_core.json)")
    perf.add_argument("--baseline", metavar="FILE",
                      help="compare kernel events/sec against this "
                           "committed BENCH_core.json; exit 1 on a drop "
                           "beyond --tolerance")
    perf.add_argument("--tolerance", type=float, default=0.30,
                      help="allowed fractional drop vs baseline "
                           "(default 0.30)")

    faults = sub.add_parser(
        "faults", help="fault-injection profiles (chaos runs)")
    fsub = faults.add_subparsers(dest="faults_command", required=True)
    fsub.add_parser("list", help="list the named fault profiles")
    frun = fsub.add_parser(
        "run", help="run the bag-of-tasks app under a fault profile")
    frun.add_argument("profile", help="profile name (see 'faults list')")
    frun.add_argument("--policy", default="fixed",
                      help="retry policy (default: the paper's fixed 1 s)")
    frun.add_argument("--tasks", type=int, default=24)
    frun.add_argument("--workers", type=int, default=4)
    frun.add_argument("--seed", type=int, default=31)
    frun.add_argument("--trace", action="store_true",
                      help="also print the injected-fault event trace")

    chaos = sub.add_parser(
        "chaos", help="chaos conformance harness: run a figure workload "
                      "(or the bag-of-tasks app) under a seeded fault "
                      "schedule and check the conservation, integrity, "
                      "and termination invariants")
    chaos.add_argument("figure", metavar="WORKLOAD", nargs="?",
                       help='figure to stress: 4-9 ("fig6" also accepted), '
                            '"taskpool" for the bag-of-tasks app with '
                            'worker-role crash/restart chaos, "geo" for '
                            'the geo-replicated account campaign, '
                            '"elasticity" for autoscaling under region '
                            'faults, or "dnfailover" for the live SN/DN '
                            'data-node failure domain; may be omitted '
                            'when --profile implies a workload (geo '
                            'profiles, dn-failover)')
    chaos.add_argument("--profile", default="none",
                       help="fault profile (see 'faults list'; "
                            "default: none)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="schedule seed (jitter, crash times, fault "
                            "draws)")
    chaos.add_argument("--seeds", metavar="S1,S2,...",
                       help="run a whole seed matrix instead of one "
                            "--seed; one verdict per seed, exit 1 if any "
                            "fails (figure workloads only)")
    chaos.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run the --seeds matrix over N worker "
                            "processes (each seed is independent, so "
                            "verdicts are identical to serial runs)")
    chaos.add_argument("--out", metavar="FILE",
                       help="also write the verdict JSON to FILE")
    chaos.add_argument("--retry-budget", type=int, default=64,
                       help="max per-op retries the termination checker "
                            "tolerates (default 64)")
    chaos.add_argument("--self-test-splice", action="store_true",
                       help="after a clean run, splice a synthetic silent "
                            "message drop into the history; the checker "
                            "must flag it (verifies the harness can "
                            "actually detect loss)")
    chaos.add_argument("--crashes", type=int, default=2,
                       help="worker-role crash events (taskpool only)")
    chaos.add_argument("--tasks", type=int, default=16,
                       help="bag-of-tasks size (taskpool/elasticity)")
    chaos.add_argument("--workers", type=int, default=4,
                       help="worker role instances (taskpool/elasticity; "
                            "geo uses its own writer count)")
    chaos.add_argument("--failover", choices=["planned", "forced"],
                       help="geo workload: trigger an account failover "
                            "mid-run (default: the profile's own choice)")
    chaos.add_argument("--lag", type=float, default=2.0, metavar="SECONDS",
                       help="geo workload: asynchronous replication lag "
                            "(default 2.0)")
    chaos.add_argument("--dn", type=int, default=3,
                       help="dnfailover workload: data nodes (default 3)")
    chaos.add_argument("--replicas", type=int, default=2,
                       help="dnfailover workload: shard replication "
                            "factor (default 2)")
    chaos.add_argument("--windows-csv", metavar="FILE",
                       help="dnfailover workload: write per-window "
                            "outcome counts (the SLO-dip artifact) to "
                            "FILE")

    geo = sub.add_parser(
        "geo", help="geo-replicated account campaign: RA-GRS reads, "
                    "region-outage chaos, replication-lag laws, planned "
                    "or forced failover with bounded loss")
    geo.add_argument("--profile", default="region-outage",
                     help="geo fault profile (default: region-outage)")
    geo.add_argument("--failover", choices=["planned", "forced"],
                     help="trigger an account failover mid-run "
                          "(default: the profile's own choice)")
    geo.add_argument("--lag", type=float, default=2.0, metavar="SECONDS",
                     help="asynchronous replication lag (default 2.0)")
    geo.add_argument("--seed", type=int, default=0)
    geo.add_argument("--workers", type=int, default=3,
                     help="writer processes (default 3)")
    geo.add_argument("--elasticity", action="store_true",
                     help="run the autoscaling bag-of-tasks campaign "
                          "instead of the storage conformance campaign")
    geo.add_argument("--tasks", type=int, default=24,
                     help="bag-of-tasks size (--elasticity only)")
    geo.add_argument("--arrival", metavar="SPEC",
                     help="submit elasticity tasks on an open-loop "
                          "arrival process instead of all at once, e.g. "
                          "'poisson:2' (--elasticity only; "
                          "docs/traffic.md)")
    geo.add_argument("--out", metavar="FILE",
                     help="also write the verdict JSON to FILE")
    geo.add_argument("--retry-budget", type=int, default=64)
    geo.add_argument("--self-test-splice", action="store_true",
                     help="splice a replication-log ship event out of a "
                          "clean run; the GeoLedger must flag it")

    serve = sub.add_parser(
        "serve", help="boot an SN/DN service cluster speaking the "
                      "Azurite-compatible wire subset")
    serve.add_argument("--nodes", type=int, default=1, metavar="N",
                       help="service nodes (HTTP front-ends, default 1)")
    serve.add_argument("--dn", type=int, default=2, metavar="M",
                       help="data nodes (partition shards, default 2)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--blob-port", type=int, default=0,
                       help="blob listener port for sn0 (default ephemeral)")
    serve.add_argument("--queue-port", type=int, default=0,
                       help="queue listener port for sn0 (default ephemeral)")
    serve.add_argument("--table-port", type=int, default=0,
                       help="table listener port for sn0 (default ephemeral)")
    serve.add_argument("--account", help="extra tenant account name "
                                         "(with --key; may repeat)",
                       action="append", default=[])
    serve.add_argument("--key", help="base64 key for each --account",
                       action="append", default=[])
    serve.add_argument("--no-throttles", action="store_true",
                       help="disable per-tenant scalability-target "
                            "enforcement")
    serve.add_argument("--access-log", metavar="FILE",
                       help="append per-request access log lines to FILE "
                            "on shutdown")
    serve.add_argument("--duration", type=float, metavar="SECONDS",
                       help="exit after SECONDS (default: run until "
                            "interrupted)")

    sndn = sub.add_parser(
        "sndn", help="DES scaling figure for the SN/DN topology: sweep "
                     "front-end and shard counts over the modeled "
                     "request path")
    sndn.add_argument("--sn", default="1,2,4",
                      help="service-node counts, comma-separated "
                           "(default 1,2,4)")
    sndn.add_argument("--dn", default="1,2,4,8",
                      help="data-node counts, comma-separated "
                           "(default 1,2,4,8)")
    sndn.add_argument("--clients", type=int, default=32)
    sndn.add_argument("--duration", type=float, default=30.0,
                      help="simulated seconds per point (default 30)")
    sndn.add_argument("--fanout", type=float, default=0.05,
                      help="fraction of requests touching every shard "
                           "(default 0.05)")
    sndn.add_argument("--seed", type=int, default=0)
    sndn.add_argument("--replication", type=int, default=1, metavar="R",
                      help="shard replication factor (default 1); with "
                           "R > 1 a surviving replica absorbs requests "
                           "to a crashed, undetected node")
    sndn.add_argument("--crash-at", type=float, metavar="SECONDS",
                      help="crash data node 0 at SECONDS (adds an "
                           "availability column)")
    sndn.add_argument("--detect", type=float, default=1.0,
                      metavar="SECONDS",
                      help="death-detection + ring-heal window after the "
                           "crash (default 1.0)")
    sndn.add_argument("--csv", metavar="DIR",
                      help="also write the sweep as CSV into DIR")

    load = sub.add_parser(
        "load", help="open-loop load campaign: seeded arrival process, "
                     "per-window p50/p95/p99 + throughput + utilization, "
                     "SLO verdict, and --find-knee saturation search "
                     "(docs/traffic.md)")
    load.add_argument("--process", default=None,
                      help="arrival process: poisson, mmpp, diurnal, "
                           "ramp, or trace (default poisson; "
                           "--trace-file implies trace)")
    load.add_argument("--rate", type=float, default=25.0,
                      help="mean arrival rate in ops/s (default 25)")
    load.add_argument("--param", action="append", default=[],
                      metavar="K=V",
                      help="process parameter, may repeat (mmpp: on/off/"
                           "rate_off; diurnal: amp/period; ramp: "
                           "start/ramp)")
    load.add_argument("--trace-file", metavar="FILE",
                      help="arrival instants, one float per line "
                           "(--process trace)")
    load.add_argument("--duration", type=float, default=60.0,
                      help="seconds of arrivals (default 60)")
    load.add_argument("--window", type=float, default=5.0,
                      help="stats window width in seconds (default 5)")
    load.add_argument("--mix", default="queue",
                      help="operation mix: queue, blob, table, or mixed "
                           "(default queue)")
    load.add_argument("--payload", type=int, default=4096,
                      help="payload bytes for writes (default 4096)")
    load.add_argument("--seed", type=int, default=2012,
                      help="arrival + fabric seed (default 2012)")
    load.add_argument("--backend", choices=sorted(BACKENDS), default="sim")
    load.add_argument("--servers", type=int, default=1,
                      help="server count for the utilization column "
                           "(default 1)")
    load.add_argument("--dn", type=int, default=2,
                      help="service backend: data nodes (default 2)")
    load.add_argument("--replicas", type=int, default=1,
                      help="service backend: shard replication factor "
                           "(default 1)")
    load.add_argument("--kill-dn", type=int, metavar="N",
                      help="service backend: crash data node N mid-run "
                           "(needs --kill-at)")
    load.add_argument("--kill-at", type=float, metavar="SECONDS",
                      help="virtual seconds into the run at which "
                           "--kill-dn crash-stops")
    load.add_argument("--slo", metavar="SPEC",
                      help="per-window objectives, e.g. "
                           "'p95=250ms, p99=1s, err=1%%, tput=100'")
    load.add_argument("--warmup", type=int, default=1, metavar="W",
                      help="SLO warmup windows to skip (default 1)")
    load.add_argument("--cooldown", type=int, default=1, metavar="W",
                      help="SLO cooldown windows to skip (default 1)")
    load.add_argument("--out", metavar="DIR",
                      help="write windows.csv + verdict.json into DIR")
    load.add_argument("--find-knee", action="store_true",
                      help="bisect for the highest SLO-clean arrival "
                           "rate instead of one fixed-rate run "
                           "(requires --slo)")
    load.add_argument("--low", type=float, default=1.0,
                      help="knee-search bracket floor in ops/s "
                           "(default 1)")
    load.add_argument("--high", type=float, default=200.0,
                      help="knee-search bracket ceiling in ops/s "
                           "(default 200)")
    load.add_argument("--rel-tol", type=float, default=0.1,
                      help="knee bracket convergence tolerance "
                           "(default 0.1)")
    load.add_argument("--max-probes", type=int, default=12,
                      help="knee-search probe budget (default 12)")
    load.add_argument("--clients", type=int, default=1, metavar="N",
                      help="simulated clients: multiplies the per-client "
                           "arrival rate (default 1)")
    load.add_argument("--flock-size", type=int, default=0, metavar="N",
                      help="sim/geo backends: drive arrivals from a "
                           "columnar schedule in chunks of N (0 = "
                           "classic per-op path; default 0)")
    load.add_argument("--scheduler", choices=["heap", "calendar"],
                      default="heap",
                      help="DES kernel event queue (default heap; "
                           "calendar is the O(1)-amortized bucketed "
                           "scheduler)")

    return parser


def _emit(fig, csv_dir: Optional[str]) -> None:
    print(fig.to_text())
    print()
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
        name = fig.figure_id.lower().replace(" ", "_")
        path = os.path.join(csv_dir, f"{name}.csv")
        with open(path, "w") as f:
            f.write(fig.to_csv())


def _figures_for(runner: FigureRunner, number: str) -> List:
    if number == "4":
        return list(runner.figure4())
    if number == "5":
        return list(runner.figure5())
    if number == "6":
        return list(runner.figure6().values())
    if number == "7":
        return list(runner.figure7().values())
    if number == "8":
        return list(runner.figure8().values())
    return [runner.figure9()]


def _write_manifest(path: str, scale, backend, figure: str, *,
                    trace: bool = False) -> None:
    """Record run provenance next to CSV/trace artifacts."""
    from .core.runner import RunConfig
    from .observability import RunManifest

    config = RunConfig(seed=scale.seed, label=figure, backend=backend,
                       trace=trace)
    RunManifest.from_config(
        config, figure=figure, scale=scale.name,
        workers=scale.worker_counts,
    ).write(path)


def _run_trace(args) -> int:
    from .observability import HistogramSet, chrome_trace

    number = args.figure.lower()
    if number.startswith("fig"):
        number = number[3:]
    if number not in ("4", "5", "6", "7", "8", "9"):
        print(f"unknown figure {args.figure!r}; choose 4-9 (or fig4..fig9)",
              file=sys.stderr)
        return 2

    scale = PAPER_SCALE if args.full else QUICK_SCALE
    runner = FigureRunner(scale, backend=args.backend, trace=True)
    for fig in _figures_for(runner, number):
        print(fig.to_text())
        print()

    out_dir = args.out or os.path.join("traces", f"fig{number}")
    os.makedirs(out_dir, exist_ok=True)
    traces = runner.traces()

    # One Chrome trace-event file for the whole sweep: one process per
    # traced run ("fig6@4", ...), one track per worker role inside it.
    with open(os.path.join(out_dir, "trace.json"), "w") as f:
        json.dump(chrome_trace([(label, tracer.buffer)
                                for label, _, tracer in traces]),
                  f, sort_keys=True)

    merged = HistogramSet()
    per_run = {}
    for label, _, tracer in traces:
        merged = merged.merge(tracer.histograms)
        per_run[label] = tracer.histograms.to_dict()
    with open(os.path.join(out_dir, "histograms.json"), "w") as f:
        json.dump({"merged": merged.to_dict(), "runs": per_run},
                  f, indent=2, sort_keys=True)

    _write_manifest(os.path.join(out_dir, "manifest.json"),
                    scale, args.backend, f"fig{number}", trace=True)

    spans = sum(len(tracer.buffer) for _, _, tracer in traces)
    dropped = sum(tracer.buffer.dropped for _, _, tracer in traces)
    note = f" ({dropped} dropped)" if dropped else ""
    print(f"traced {len(traces)} runs, {spans} spans{note}")
    for name in ("trace.json", "histograms.json", "manifest.json"):
        print(f"  wrote {os.path.join(out_dir, name)}")
    if dropped:
        print(f"error: {dropped} spans dropped (buffer capacity); the "
              f"trace artifacts are incomplete", file=sys.stderr)
        return 1
    return 0


def _run_faults(args) -> int:
    from .faults.profiles import (
        POLICIES, PROFILES, get_profile, run_faulted_taskpool)

    if args.faults_command == "list":
        print("Fault profiles (repro faults run <profile>):")
        for name in sorted(PROFILES):
            print(f"  {name:16s} {PROFILES[name].description}")
        print(f"\nRetry policies (--policy): {', '.join(sorted(POLICIES))}")
        return 0

    # run
    try:
        get_profile(args.profile)
        result = run_faulted_taskpool(
            args.profile, args.policy, tasks=args.tasks,
            workers=args.workers, seed=args.seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(f"profile           {result['profile']}")
    print(f"retry policy      {result['policy']}")
    print(f"completed         {result['completed']} "
          f"({result['results_collected']}/{result['tasks']} results)")
    print(f"completion time   {result['completion_time']:.3f} s")
    print(f"op attempts       {result['attempts']} "
          f"(retries {result['retries']}, giveups {result['giveups']})")
    print(f"retry amplification {result['retry_amplification']:.3f}")
    print(f"backoff slept     {result['total_backoff']:.1f} s")
    print(f"worker restarts   {result['worker_restarts']}")
    for service, value in sorted(result["availability"].items()):
        print(f"availability      {service}: {value:.4f}")
    faults = result["faults_injected"]
    print(f"faults injected   "
          f"{', '.join(f'{k}={v}' for k, v in faults.items()) or 'none'}")
    if args.trace:
        print("fault trace (time, kind, service, partition):")
        for event in result["trace"]:
            print(f"  t={event[0]:<10.3f} {event[1]:<18s} "
                  f"{event[2]:<6s} {event[3]}")
    if not result["completed"]:
        print("error: the bag of tasks did not run to completion "
              "within the horizon", file=sys.stderr)
        return 1
    return 0


def _emit_verdict(verdict, out: Optional[str]) -> None:
    text = verdict.to_json()
    print(text)
    if out:
        directory = os.path.dirname(out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(out, "w") as f:
            f.write(text + "\n")
    print(verdict.summary(), file=sys.stderr)


#: Profiles that imply a geo workload when `repro chaos` is invoked
#: without a WORKLOAD positional.
_GEO_WORKLOADS = {
    "region-outage": "geo",
    "geo-failover": "geo",
    "replication-stall": "geo",
    "spot-eviction": "elasticity",
    "dn-failover": "dnfailover",
}


def _parse_seeds(text: str) -> List[int]:
    """Parse a ``--seeds`` matrix, surfacing malformed lists here.

    Whitespace around entries is fine (``"7, 11"``); empty lists, empty
    entries, non-integers, and duplicate seeds raise :class:`ValueError`
    with a message naming the offending part, so the CLI can reject the
    matrix before any runner starts.
    """
    tokens = [token.strip() for token in text.split(",")]
    if tokens == [""]:
        raise ValueError("--seeds is empty; give at least one seed")
    seeds: List[int] = []
    for token in tokens:
        if not token:
            raise ValueError(f"--seeds has an empty entry in {text!r}; "
                             f"use a comma-separated list like '7,11'")
        try:
            seeds.append(int(token))
        except ValueError:
            raise ValueError(f"--seeds entry {token!r} is not an "
                             f"integer (in {text!r})") from None
    duplicates = sorted({s for s in seeds if seeds.count(s) > 1})
    if duplicates:
        raise ValueError(
            f"--seeds lists seed{'s' if len(duplicates) > 1 else ''} "
            f"{', '.join(map(str, duplicates))} more than once; every "
            f"seed runs exactly one verdict")
    return seeds


def _run_geo_workload(args, name: str) -> int:
    """Run the geo (or elasticity) campaign, one verdict per seed."""
    from .geo import run_elasticity, run_geo_chaos

    seeds = [args.seed]
    if getattr(args, "seeds", None) is not None:
        try:
            seeds = _parse_seeds(args.seeds)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    matrix = len(seeds) > 1 or getattr(args, "seeds", None) is not None
    arrival_text = getattr(args, "arrival", None)
    arrival_spec = None
    if arrival_text:
        if name != "elasticity":
            print("--arrival applies to the elasticity campaign "
                  "(repro geo --elasticity)", file=sys.stderr)
            return 2
        from .traffic import parse_arrival_spec
        try:
            arrival_spec = parse_arrival_spec(arrival_text)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    failed = 0
    for seed in seeds:
        if name == "elasticity":
            from dataclasses import replace as _replace
            arrival = (_replace(arrival_spec, seed=seed)
                       if arrival_spec is not None else None)
            verdict = run_elasticity(
                args.profile, seed, tasks=args.tasks,
                workers=args.workers, lag_s=args.lag,
                retry_budget=args.retry_budget, arrival=arrival)
        else:
            verdict = run_geo_chaos(
                args.profile, seed, lag_s=args.lag,
                failover=args.failover,
                retry_budget=args.retry_budget,
                splice=args.self_test_splice)
        out = args.out
        if out and matrix:
            out = f"{out}.seed{seed}"
        _emit_verdict(verdict, out)
        failed += 0 if verdict.passed else 1
    if matrix:
        print(f"seed matrix: {len(seeds) - failed}/{len(seeds)} passed",
              file=sys.stderr)
    return 0 if failed == 0 else 1


def _run_chaos(args) -> int:
    from .bench.executor import run_chaos_matrix
    from .chaos import ChaosRunError, run_chaos, run_chaos_taskpool

    name = (args.figure or "").lower()
    if not name:
        name = _GEO_WORKLOADS.get(args.profile, "")
        if not name:
            print("a WORKLOAD is required unless --profile implies one "
                  "(region-outage, geo-failover, replication-stall, "
                  "spot-eviction, dn-failover)", file=sys.stderr)
            return 2
    if args.seeds is not None and name in ("taskpool", "dnfailover"):
        print(f"--seeds matrices apply to figure workloads, not {name}",
              file=sys.stderr)
        return 2
    try:
        if name in ("geo", "elasticity"):
            return _run_geo_workload(args, name)
        if name == "dnfailover":
            from .chaos import run_dn_failover
            verdict = run_dn_failover(
                args.profile if args.profile != "none" else "dn-failover",
                args.seed, dn=args.dn, replicas=args.replicas,
                windows_csv=args.windows_csv)
        elif name == "taskpool":
            verdict = run_chaos_taskpool(
                args.profile, args.seed, crashes=args.crashes,
                tasks=args.tasks, workers=args.workers,
                retry_budget=args.retry_budget)
        elif args.seeds is not None:
            if not name.startswith("fig"):
                name = f"fig{name}"
            try:
                seeds = _parse_seeds(args.seeds)
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            verdicts = run_chaos_matrix(
                name, args.profile, seeds, jobs=args.jobs,
                retry_budget=args.retry_budget,
                splice=args.self_test_splice)
            failed = 0
            for seed, verdict in verdicts.items():
                _emit_verdict(
                    verdict,
                    f"{args.out}.seed{seed}" if args.out else None)
                failed += 0 if verdict.passed else 1
            print(f"seed matrix: {len(verdicts) - failed}/{len(verdicts)} "
                  f"passed", file=sys.stderr)
            return 0 if failed == 0 else 1
        else:
            if not name.startswith("fig"):
                name = f"fig{name}"
            verdict = run_chaos(
                name, args.profile, args.seed,
                retry_budget=args.retry_budget,
                splice=args.self_test_splice)
    except ChaosRunError as exc:
        # The run crashed before the checks finished: still publish the
        # partial verdict (schedule, counts, the harness violation) so a
        # CI failure leaves evidence behind, then exit nonzero.
        _emit_verdict(exc.verdict, args.out)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    _emit_verdict(verdict, args.out)
    return 0 if verdict.passed else 1


def _run_geo(args) -> int:
    from .chaos import ChaosRunError
    from .faults.profiles import PROFILES

    if args.profile not in PROFILES:
        print(f"unknown fault profile {args.profile!r}; see "
              f"'repro faults list'", file=sys.stderr)
        return 2
    args.seeds = None
    try:
        return _run_geo_workload(
            args, "elasticity" if args.elasticity else "geo")
    except ChaosRunError as exc:
        _emit_verdict(exc.verdict, args.out)
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_perf(args) -> int:
    from .bench.perf import check_regression, load_bench, run_perf, \
        write_bench

    baseline = None
    if args.baseline:
        try:
            baseline = load_bench(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
    doc = run_perf(quick=args.quick, jobs=args.jobs, baseline=baseline)
    write_bench(doc, args.out)
    print(f"wrote {args.out}")
    if baseline is not None and not check_regression(
            doc, baseline, tolerance=args.tolerance):
        print("error: kernel throughput regressed beyond tolerance",
              file=sys.stderr)
        return 1
    return 0


def _run_serve(args) -> int:
    import signal
    import threading

    from .service import TenantConfig, TenantDirectory
    from .service.cluster import ClusterRunner, ServiceCluster

    if len(args.account) != len(args.key):
        print("every --account needs a matching --key", file=sys.stderr)
        return 2
    enforce = not args.no_throttles
    configs = [TenantConfig.development(enforce_targets=enforce)]
    configs.extend(
        TenantConfig(account, key, enforce_targets=enforce)
        for account, key in zip(args.account, args.key))
    ports = {}
    for service, port in (("blob", args.blob_port),
                          ("queue", args.queue_port),
                          ("table", args.table_port)):
        if port:
            ports[service] = port
    cluster = ServiceCluster(
        nodes=args.nodes, dn=args.dn, tenants=TenantDirectory(configs),
        host=args.host, ports=ports, access_log_path=args.access_log)
    runner = ClusterRunner(cluster)

    # Graceful shutdown: SIGINT/SIGTERM (and --duration expiry) wake the
    # main thread, which tears the cluster down in order — stop accepting,
    # drain in-flight requests, close DN links — and exits 0.  Handlers
    # go in *before* "serving" is announced, so a supervisor that signals
    # the moment the banner appears never hits the default-action window.
    stop = threading.Event()
    previous = {}

    def _request_stop(signum, frame) -> None:
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    runner.start()
    print(cluster.describe())
    print("serving; interrupt to stop"
          if args.duration is None else
          f"serving for {args.duration:g} s")
    sys.stdout.flush()
    try:
        stop.wait(args.duration)
    except KeyboardInterrupt:  # pragma: no cover - handler already set
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        print("shutting down", file=sys.stderr)
        runner.stop()
    return 0


def _run_load(args) -> int:
    from .traffic import (ArrivalSpec, LoadConfig, SLOSpec, find_knee,
                          run_load)
    from .traffic.arrivals import PROCESSES

    try:
        if args.process is None:
            # --trace-file alone selects trace replay; silently running
            # the default poisson instead would ignore the user's trace.
            process = "trace" if args.trace_file else "poisson"
        else:
            process = args.process.strip().lower()
            if args.trace_file and process != "trace":
                print(f"--trace-file conflicts with --process {process}",
                      file=sys.stderr)
                return 2
        if process == "trace":
            if not args.trace_file:
                print("--process trace needs --trace-file",
                      file=sys.stderr)
                return 2
            with open(args.trace_file) as f:
                instants = tuple(float(line) for line in f
                                 if line.strip())
            spec = ArrivalSpec(process="trace", seed=args.seed,
                               trace=instants)
        else:
            params = {}
            alias = {"on": "mean_on", "off": "mean_off"}
            for term in args.param:
                if "=" not in term:
                    raise ValueError(f"--param needs K=V, got {term!r}")
                key, value = term.split("=", 1)
                params[alias.get(key.strip(), key.strip())] = float(value)
            if process not in PROCESSES:
                raise ValueError(
                    f"unknown arrival process {process!r}; choose from "
                    f"{', '.join(sorted(PROCESSES))}, trace")
            spec = ArrivalSpec(process=process, rate=args.rate,
                               seed=args.seed,
                               params=tuple(sorted(params.items())))
        spec.build()  # validate parameters before any run starts
        slo = None
        if args.slo:
            slo = SLOSpec.parse(args.slo, warmup_windows=args.warmup,
                                cooldown_windows=args.cooldown)
        if args.find_knee and slo is None:
            print("--find-knee needs an --slo to bisect against",
                  file=sys.stderr)
            return 2
        config = LoadConfig(
            arrivals=spec, duration=args.duration, window_s=args.window,
            mix=args.mix, payload_bytes=args.payload, seed=args.seed,
            backend=args.backend, slo=slo, servers=args.servers,
            dn=args.dn, replicas=args.replicas, kill_dn=args.kill_dn,
            kill_at=args.kill_at, clients=args.clients,
            flock_size=args.flock_size, scheduler=args.scheduler)
    except (OSError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2

    if args.find_knee:
        result = find_knee(config, low=args.low, high=args.high,
                           rel_tol=args.rel_tol,
                           max_probes=args.max_probes)
        print(result.to_json())
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "knee.json")
            with open(path, "w") as f:
                f.write(result.to_json() + "\n")
            print(f"wrote {path}", file=sys.stderr)
        if result.knee_rate is None:
            print("error: no SLO-clean rate in the bracket; lower --low "
                  "or relax the SLO", file=sys.stderr)
            return 1
        print(f"knee: {result.knee_rate:g} ops/s "
              f"({'converged' if result.converged else 'bracket top'}, "
              f"{len(result.probes)} probes)", file=sys.stderr)
        return 0

    result = run_load(config)
    print(result.to_json())
    if args.out:
        for path in result.write_artifacts(args.out):
            print(f"wrote {path}", file=sys.stderr)
    totals = result.aggregator
    verdict = "clean" if result.passed else "SLO violations"
    print(f"{totals.total_completions} ops "
          f"({totals.total_errors} errors) over "
          f"{len(result.rows)} windows: {verdict}", file=sys.stderr)
    if result.disruption:
        d = result.disruption
        print(f"dn kill: node {d['kill_dn']} at t={d['kill_at_s']:g}s, "
              f"detected={d['detected']}, {d['errors']} op error(s), "
              f"{d['shards_migrated']} shard(s) migrated, "
              f"recovery {d['recovery_s']}s "
              f"(unavailable {d['unavailable_s']}s)", file=sys.stderr)
    return 0 if result.passed else 1


def _run_sndn(args) -> int:
    from .service.topology import sweep_topology

    try:
        sn_counts = [int(v) for v in args.sn.split(",") if v]
        dn_counts = [int(v) for v in args.dn.split(",") if v]
    except ValueError:
        print("--sn/--dn take comma-separated integers", file=sys.stderr)
        return 2
    crashing = args.crash_at is not None
    overrides = {}
    if args.replication > 1 or crashing:
        overrides["replication"] = args.replication
    if crashing:
        overrides["crash_node"] = 0
        overrides["crash_at_s"] = args.crash_at
        overrides["detect_s"] = args.detect
    try:
        results = sweep_topology(
            sn_counts, dn_counts, clients=args.clients,
            duration_s=args.duration, seed=args.seed,
            fanout_fraction=args.fanout, **overrides)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    header = (f"SN/DN topology scaling — {args.clients} closed-loop "
              f"clients, {args.duration:g} s horizon, "
              f"{args.fanout:.0%} fan-out")
    if crashing:
        header += (f"; dn0 crashes at t={args.crash_at:g} s "
                   f"(R={args.replication}, detect {args.detect:g} s)")
    print(header)
    avail_col = f" {'avail %':>8}" if crashing else ""
    print(f"  {'SNs':>4} {'DNs':>4} {'req/s':>10} "
          f"{'mean ms':>9} {'p95 ms':>9}{avail_col}")
    rows = []
    for (sn, dn), r in sorted(results.items()):
        avail = f" {r.availability * 100:8.3f}" if crashing else ""
        print(f"  {sn:4d} {dn:4d} {r.throughput_rps:10.0f} "
              f"{r.mean_latency_s * 1e3:9.2f} "
              f"{r.p95_latency_s * 1e3:9.2f}{avail}")
        rows.append((sn, dn, r))
    if args.csv:
        os.makedirs(args.csv, exist_ok=True)
        path = os.path.join(args.csv, "sndn_topology.csv")
        with open(path, "w") as f:
            f.write("service_nodes,data_nodes,throughput_rps,"
                    "mean_latency_s,p95_latency_s,completed,failed,"
                    "availability\n")
            for sn, dn, r in rows:
                f.write(f"{sn},{dn},{r.throughput_rps:.3f},"
                        f"{r.mean_latency_s:.6f},{r.p95_latency_s:.6f},"
                        f"{r.completed},{r.failed},"
                        f"{r.availability:.6f}\n")
        print(f"wrote {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for key, desc in _FIGS.items():
            print(f"  {key:8s} {desc}")
        return 0

    if args.command == "claims":
        for key, claim in qualitative_claims().items():
            print(f"  {key}:")
            print(f"      {claim}")
        return 0

    if args.command == "table1":
        print(figure_table1().to_text())
        return 0

    if args.command == "chaos":
        return _run_chaos(args)

    if args.command == "geo":
        return _run_geo(args)

    if args.command == "perf":
        return _run_perf(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "sndn":
        return _run_sndn(args)

    if args.command == "load":
        return _run_load(args)

    scale = PAPER_SCALE if getattr(args, "full", False) else QUICK_SCALE
    arrivals = None
    if getattr(args, "arrivals", None):
        from .traffic import parse_arrival_spec
        try:
            arrivals = parse_arrival_spec(args.arrivals, seed=scale.seed)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    runner = FigureRunner(scale, backend=getattr(args, "backend", "sim"),
                          jobs=getattr(args, "jobs", None),
                          arrivals=arrivals)
    if getattr(args, "checkpoint", None):
        from .chaos import RunCheckpoint
        runner.checkpoint = RunCheckpoint(args.checkpoint,
                                          runner.campaign_key())
    csv_dir = getattr(args, "csv", None)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "fig":
        for fig in _figures_for(runner, args.number):
            _emit(fig, csv_dir)
        if csv_dir:
            _write_manifest(os.path.join(csv_dir, "manifest.json"),
                            scale, args.backend, f"fig{args.number}")
        return 0

    if args.command == "all":
        for fig in runner.all_figures():
            _emit(fig, csv_dir)
        if csv_dir:
            _write_manifest(os.path.join(csv_dir, "manifest.json"),
                            scale, args.backend, "all")
        return 0

    if args.command == "report":
        from .bench.reportgen import generate_report
        text = generate_report(runner)
        print(text)
        if args.out:
            with open(args.out, "w") as f:
                f.write(text)
        return 0

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "audit":
        from .bench.compare import compare_to_paper, comparison_table
        rows = compare_to_paper(runner)
        print(comparison_table(rows))
        failing = [r for r in rows if not r.holds]
        print(f"\n{len(rows) - len(failing)}/{len(rows)} checks hold.")
        return 1 if failing else 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
