"""The simulated storage fabric: partition servers, cost model, throttles."""

from .calibration import DEFAULT_CALIBRATION, FabricCalibration
from .model import StorageCluster
from .ops import OpDescriptor, OpKind, Service
from .ratelimit import SlidingWindowThrottle
from .servers import PartitionServer, ServerPool

__all__ = [
    "StorageCluster",
    "FabricCalibration",
    "DEFAULT_CALIBRATION",
    "OpDescriptor",
    "OpKind",
    "Service",
    "SlidingWindowThrottle",
    "PartitionServer",
    "ServerPool",
]
