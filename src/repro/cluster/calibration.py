"""Calibration constants of the storage-fabric performance model.

Every constant is tied either to a *published scalability target* quoted by
the paper (those live in :mod:`repro.storage.limits`) or to a *calibrated
service time* chosen so the simulated fabric reproduces the paper's measured
saturation throughputs.  The derivations below work per partition server
with ``BLOB_SERVER_SLOTS`` concurrent request slots:

    aggregate_max = slots * chunk_size / occupancy_per_chunk

Paper-measured anchors (Section IV.A, 96 workers, 1 MB chunks):

=====================================  ===========  =========================
observation                            paper value  model mechanism
=====================================  ===========  =========================
whole-blob download (DownloadText /    165 MB/s     8 slots x 1 MB / 48.5 ms
page openRead)
sequential block-wise download         104 MB/s     + 28.5 ms block lookup
random page-wise download               71 MB/s     + 64.2 ms page seek
page blob upload (PutPage)              60 MB/s     8 slots x 1 MB / 133 ms
                                                    (3-replica sync write)
block blob upload (PutBlock+commit)     21 MB/s     + 248 ms/MB staging
=====================================  ===========  =========================

Queue/Table service times are anchored to the orderings the paper reports
(Peek < Put < Get; Query < Insert < Delete < Update) and to the knees of
Figures 6-9.  All times are in seconds; all rates in bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.limits import KB, MB

__all__ = ["FabricCalibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class FabricCalibration:
    """Tunable performance constants of the simulated storage fabric."""

    # ------------------------------------------------------------------ blob
    #: Concurrent request slots of one blob partition server.
    blob_server_slots: int = 8
    #: Client <-> front-end round trip per blob operation (not server time).
    blob_base_rtt: float = 0.030
    #: Server occupancy per byte of a streaming read (whole-blob download).
    #: 48.5 ms/MB -> 8 slots saturate at 165 MB/s (paper's max download).
    blob_stream_read_s_per_byte: float = 0.0485 / MB
    #: Extra occupancy per sequential GetBlock chunk (committed-block lookup).
    #: 1 MB chunks -> 77 ms/chunk -> 104 MB/s (paper Fig 5, block-wise).
    blob_block_lookup_s: float = 0.0285
    #: Extra occupancy per random GetPage chunk ("adds the overhead of
    #: locating the page in a Page blob", paper IV.A).
    #: 1 MB chunks -> 112.7 ms/chunk -> 71 MB/s (paper Fig 5, page-wise).
    blob_page_seek_s: float = 0.0642
    #: Server occupancy per byte written, including the synchronous 3-replica
    #: commit (Calder et al., cited by the paper).  133 ms/MB -> 60 MB/s,
    #: the per-blob throughput target the PutPage path saturates.
    blob_write_s_per_byte: float = 0.133 / MB
    #: Extra occupancy per byte staged through the uncommitted-block journal
    #: of PutBlock.  Calibrated so block upload saturates at 21 MB/s
    #: (paper: "a little over 21 MB/s using 96 workers").
    blob_block_stage_s_per_byte: float = 0.248 / MB
    #: PutBlockList commit: fixed + per-committed-block bookkeeping.
    blob_commit_base_s: float = 0.020
    blob_commit_per_block_s: float = 0.002

    # ----------------------------------------------------------------- queue
    #: Concurrent request slots of one queue partition server (a queue and
    #: all its messages live on a single server, paper IV.B).
    queue_server_slots: int = 4
    #: Client <-> front-end round trip per queue operation.
    queue_base_rtt: float = 0.012
    #: PutMessage synchronous replication ("the queue needs to be
    #: synchronized among replicated copies across different servers").
    queue_put_sync_s: float = 0.018
    #: GetMessage extra state: invisibility must propagate to all replicas
    #: ("extra state needs to be maintained across all copies").
    queue_get_invisibility_s: float = 0.025
    #: DeleteMessage replica sync (Algorithm 3/4 time Get+Delete together).
    queue_delete_sync_s: float = 0.015
    #: Peek has "no synchronization needed on the server end" -> only the
    #: read path below.
    #: Per-byte transfer for reads (peek/get) and writes (put).
    queue_read_s_per_byte: float = 1.0 / (20 * MB)
    queue_write_s_per_byte: float = 1.0 / (10 * MB)
    #: GetMsgCount service time.  The approximate count is a cached
    #: per-queue counter on the partition server (no message payload is
    #: touched), so it is cheaper than any replicated queue op; 2 ms keeps
    #: Algorithm 2's barrier polling visible but negligible next to the
    #: 18/25 ms put/get sync costs above.
    queue_msg_count_s: float = 0.002
    #: The paper's unexplained 16 KB anomaly: "the Get operation for this
    #: sized messages took significantly more time than other message sizes
    #: (both smaller and larger ones) ... consistently seen in all repeated
    #: experiments."  Applied to Get service time when the payload falls in
    #: (12 KB, 24 KB]; set to 1.0 to disable.
    queue_get_16k_anomaly_factor: float = 1.9
    queue_get_16k_anomaly_lo: int = 12 * KB
    queue_get_16k_anomaly_hi: int = 24 * KB

    # ----------------------------------------------------------------- table
    #: Range servers serving one table's partitions.  A single table's
    #: partitions colocate on a small server set in the 2012 service, which
    #: is why Fig 8 stays flat only "till 4 concurrent clients".
    table_range_servers: int = 4
    #: Concurrent request slots per table range server.
    table_server_slots: int = 4
    #: Client <-> front-end round trip per table operation.
    table_base_rtt: float = 0.015
    #: Fixed server occupancy per operation kind.  Orderings match Fig 9:
    #: query < insert < delete < update ("updating a table is the most time
    #: consuming process", "least expensive process is querying").  Kept
    #: small relative to the per-byte terms so that range-server saturation
    #: under many workers is entity-size-dependent: 4/8 KB entities stay
    #: near-flat while 32/64 KB "increase drastically" (paper IV.C).
    table_query_base_s: float = 0.003
    table_insert_base_s: float = 0.006
    table_update_base_s: float = 0.010
    table_delete_base_s: float = 0.008
    #: Per-byte occupancy: reads stream from one replica; inserts write three
    #: replicas + index; updates are read-modify-write over three replicas.
    table_read_s_per_byte: float = 1.0 / (25 * MB)
    table_insert_s_per_byte: float = 1.0 / (4 * MB)
    table_update_s_per_byte: float = 1.0 / (2.5 * MB)
    table_delete_s_per_byte: float = 1.0 / (20 * MB)

    # ----------------------------------------------------------- cache
    #: Concurrent request slots of one cache server.  The cache is an
    #: in-memory service, so it is far less contended than disk-backed
    #: storage.
    cache_server_slots: int = 16
    #: Client <-> cache round trip ("temporarily hold data in memory across
    #: different servers", paper II.B) — roughly an intra-DC RPC.
    cache_base_rtt: float = 0.0015
    #: Fixed server occupancy of a cache get/put (hash lookup, no disk).
    cache_get_base_s: float = 0.0002
    cache_put_base_s: float = 0.0004
    #: Per-byte transfer cost in and out of cache memory.
    cache_s_per_byte: float = 1.0 / (250 * MB)

    # ----------------------------------------------------------- throttling
    #: Sliding-window length used by the rate throttles.
    throttle_window_s: float = 1.0
    #: Retry-after hint carried by ServerBusyError (the paper's benchmarks
    #: sleep one second before retrying).
    throttle_retry_after_s: float = 1.0

    # --------------------------------------------------------------- jitter
    #: Multiplicative lognormal jitter on every service time (sigma of the
    #: underlying normal).  0 disables jitter entirely.
    jitter_sigma: float = 0.06

    def validate(self) -> None:
        """Sanity-check internal consistency of the calibration."""
        if self.blob_server_slots < 1 or self.queue_server_slots < 1:
            raise ValueError("server slots must be >= 1")
        if self.table_range_servers < 1 or self.table_server_slots < 1:
            raise ValueError("table servers/slots must be >= 1")
        for name in (
            "blob_base_rtt", "blob_stream_read_s_per_byte",
            "blob_write_s_per_byte", "queue_base_rtt", "table_base_rtt",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")
        if not self.queue_get_16k_anomaly_lo < self.queue_get_16k_anomaly_hi:
            raise ValueError("16k anomaly window is empty")


#: The calibration used by the benchmark harness.
DEFAULT_CALIBRATION = FabricCalibration()
