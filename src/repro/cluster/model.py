"""The storage cluster: cost model + contention + throttling.

:class:`StorageCluster` glues together the fabric pieces:

* a **cost model** turning an :class:`~repro.cluster.ops.OpDescriptor` into
  front-end RTT plus partition-server occupancy (constants from
  :mod:`repro.cluster.calibration`),
* **partition-server pools** per service (placement rules from the paper),
* a per-account :class:`~repro.pipeline.interceptors.Pipeline` carrying the
  cross-cutting stages — fault injection and the published per-second
  throttle targets by default, Storage Analytics and custom interceptors on
  demand — shared stage-for-stage with the emulator backend.

Simulated clients (:mod:`repro.sim`) call :meth:`StorageCluster.execute`
from inside a simkit process to charge the timing of each data-plane call.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from ..faults.plan import FaultPlan
from ..faults.spec import FaultKind, FaultSpec
from ..pipeline.context import OpContext
from ..pipeline.interceptors import (
    FaultInterceptor,
    Pipeline,
    ThrottleInterceptor,
)
from ..simkit import Environment, Tally
from ..storage.limits import LIMITS_2012, ServiceLimits
from .calibration import DEFAULT_CALIBRATION, FabricCalibration
from .ops import OpDescriptor, OpKind, Service
from .servers import PartitionServer, ServerPool

__all__ = ["StorageCluster"]


class StorageCluster:
    """Performance model of one storage account's slice of the fabric."""

    def __init__(self, env: Environment, *,
                 limits: ServiceLimits = LIMITS_2012,
                 calibration: FabricCalibration = DEFAULT_CALIBRATION,
                 seed: int = 0) -> None:
        calibration.validate()
        self.env = env
        self.limits = limits
        self.cal = calibration
        self._rng = np.random.default_rng(seed)

        cal = calibration
        # Placement (paper IV.A-C): blobs and queues get a server per
        # partition; one table's partitions share a small range-server set.
        self.blob_servers = ServerPool(env, "blob", cal.blob_server_slots)
        self.queue_servers = ServerPool(env, "queue", cal.queue_server_slots)
        self.table_servers = ServerPool(
            env, "table", cal.table_server_slots, shards=cal.table_range_servers
        )
        self.cache_servers = ServerPool(env, "cache", cal.cache_server_slots)

        #: Per-kind observed service-time tallies (diagnostics / tests).
        self.op_times: Dict[OpKind, Tally] = {}
        self.server_busy_count = 0
        #: The active fault schedule (:mod:`repro.faults`), or None for a
        #: healthy fabric.  Consulted on every :meth:`execute`.
        self.fault_plan: Optional[FaultPlan] = None

        # The cross-cutting stack every operation crosses before timing is
        # charged: fault plan, then the published throttle targets (paper
        # Section IV).  Observers (analytics, auth) insert themselves via
        # ``pipeline.add``.
        self._fault_stage = FaultInterceptor(
            lambda: self.fault_plan, cluster=self, on_busy=self._note_busy)
        self._throttle_stage = ThrottleInterceptor(
            limits,
            window_s=cal.throttle_window_s,
            retry_after_s=cal.throttle_retry_after_s,
            on_busy=self._note_busy,
        )
        self.pipeline = Pipeline([self._fault_stage, self._throttle_stage])

    def _note_busy(self) -> None:
        self.server_busy_count += 1

    # -- fault injection ---------------------------------------------------
    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Install (or clear) the fault schedule for this fabric."""
        self.fault_plan = plan

    def inject_outage(self, service: Service, start: float, duration: float,
                      *, partition: Optional[str] = None) -> None:
        """Schedule an availability outage (compatibility shim).

        Operations targeting the service (optionally one partition) during
        ``[start, start+duration)`` fail with :class:`ServerBusyError` —
        modelling the storage-stamp incidents the 2012 SLA covered.  The
        paper's retry discipline (sleep 1 s, retry) rides through them.

        This predates :mod:`repro.faults` and now just appends an OUTAGE
        spec to the installed (or a lazily-created) :class:`FaultPlan`.
        """
        spec = FaultSpec(
            kind=FaultKind.OUTAGE, service=service.value, partition=partition,
            start=start, duration=duration,
            retry_after=self.cal.throttle_retry_after_s,
        )
        if self.fault_plan is None:
            self.fault_plan = FaultPlan()
        self.fault_plan.add(spec)

    def pool_for(self, service: Service) -> ServerPool:
        """The partition-server pool backing one service."""
        if service is Service.BLOB:
            return self.blob_servers
        if service is Service.QUEUE:
            return self.queue_servers
        if service is Service.CACHE:
            return self.cache_servers
        return self.table_servers

    # -- throttles ----------------------------------------------------------
    # The throttle windows live on the pipeline's ThrottleInterceptor; these
    # views keep the cluster's historical surface for tests and diagnostics.
    @property
    def account_tx_throttle(self):
        return self._throttle_stage.account_tx

    @property
    def account_bw_throttle(self):
        return self._throttle_stage.account_bw

    @property
    def _queue_throttles(self):
        return self._throttle_stage.queue_throttles

    @property
    def _partition_throttles(self):
        return self._throttle_stage.partition_throttles

    def _queue_throttle(self, partition: str):
        return self._throttle_stage.queue_throttle(partition)

    def _partition_throttle(self, partition: str):
        return self._throttle_stage.partition_throttle(partition)

    # -- cost model -------------------------------------------------------
    def base_rtt(self, op: OpDescriptor) -> float:
        """Client <-> front-end latency (not server occupancy)."""
        cal = self.cal
        if op.service is Service.BLOB:
            return cal.blob_base_rtt
        if op.service is Service.QUEUE:
            return cal.queue_base_rtt
        if op.service is Service.CACHE:
            return cal.cache_base_rtt
        return cal.table_base_rtt

    def server_occupancy(self, op: OpDescriptor) -> float:
        """Partition-server busy time of one operation."""
        cal = self.cal
        n = op.nbytes
        kind = op.kind

        if op.service is Service.BLOB:
            if kind is OpKind.DOWNLOAD_BLOB:
                return n * cal.blob_stream_read_s_per_byte
            if kind is OpKind.GET_BLOCK:
                return cal.blob_block_lookup_s + n * cal.blob_stream_read_s_per_byte
            if kind is OpKind.GET_PAGE:
                return cal.blob_page_seek_s + n * cal.blob_stream_read_s_per_byte
            if kind in (OpKind.PUT_PAGE, OpKind.UPLOAD_BLOB):
                return n * cal.blob_write_s_per_byte
            if kind is OpKind.PUT_BLOCK:
                return n * (cal.blob_write_s_per_byte
                            + cal.blob_block_stage_s_per_byte)
            if kind is OpKind.PUT_BLOCK_LIST:
                return (cal.blob_commit_base_s
                        + op.block_count * cal.blob_commit_per_block_s)
            # container management / delete: metadata-only.
            return cal.blob_commit_base_s

        if op.service is Service.QUEUE:
            if kind is OpKind.PUT_MESSAGE:
                return cal.queue_put_sync_s + n * cal.queue_write_s_per_byte
            if kind is OpKind.PEEK_MESSAGE:
                return n * cal.queue_read_s_per_byte
            if kind is OpKind.GET_MESSAGE:
                t = (cal.queue_get_invisibility_s
                     + n * cal.queue_read_s_per_byte)
                if cal.queue_get_16k_anomaly_lo < n <= cal.queue_get_16k_anomaly_hi:
                    t *= cal.queue_get_16k_anomaly_factor
                return t
            if kind is OpKind.DELETE_MESSAGE:
                return cal.queue_delete_sync_s
            if kind is OpKind.UPDATE_MESSAGE:
                return cal.queue_put_sync_s + n * cal.queue_write_s_per_byte
            if kind is OpKind.GET_MESSAGE_COUNT:
                return cal.queue_msg_count_s
            # create/delete queue: metadata-only.
            return cal.queue_put_sync_s

        if op.service is Service.CACHE:
            if kind is OpKind.CACHE_GET:
                return cal.cache_get_base_s + n * cal.cache_s_per_byte
            if kind in (OpKind.CACHE_PUT, OpKind.CACHE_REMOVE):
                return cal.cache_put_base_s + n * cal.cache_s_per_byte
            return cal.cache_put_base_s  # create_cache: metadata-only

        # TABLE
        if kind is OpKind.QUERY_ENTITY:
            return cal.table_query_base_s + n * cal.table_read_s_per_byte
        if kind is OpKind.INSERT_ENTITY:
            return cal.table_insert_base_s + n * cal.table_insert_s_per_byte
        if kind in (OpKind.UPDATE_ENTITY, OpKind.MERGE_ENTITY):
            return cal.table_update_base_s + n * cal.table_update_s_per_byte
        if kind is OpKind.DELETE_ENTITY:
            return cal.table_delete_base_s + n * cal.table_delete_s_per_byte
        if kind is OpKind.BATCH:
            # A batch is one round trip but pays per-entity insert costs.
            return (cal.table_insert_base_s * max(1, op.units)
                    + n * cal.table_insert_s_per_byte)
        # create/delete table: metadata-only.
        return cal.table_insert_base_s

    def server_for(self, op: OpDescriptor) -> PartitionServer:
        """The partition server handling this op (placement rules)."""
        return self.pool_for(op.service).server_for(op.partition)

    def _jitter(self) -> float:
        sigma = self.cal.jitter_sigma
        if sigma <= 0:
            return 1.0
        # Mean-one lognormal: E[exp(N(-s^2/2, s))] == 1.
        return float(np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma)))

    # -- execution ---------------------------------------------------------
    def execute(self, op: OpDescriptor) -> Iterator:
        """Simkit process generator charging the timing of one operation.

        The operation crosses the account's interceptor pipeline first
        (fault plan, throttle targets, any installed observers), then the
        cost model: raises :class:`ServerBusyError` *before* consuming
        time if a scalability target is exceeded (or an injected
        outage/throttle fault fires); the caller is expected to back off
        and retry, like the paper's worker roles.  Injected timeout faults
        burn their ``timeout_after`` first, injected latency windows
        stretch the round trip.
        """
        active = self.env.active_process
        ctx = OpContext(op=op, backend="sim", started_at=self.env.now,
                        worker=active.name if active is not None else None)
        try:
            self.pipeline.run_before(ctx)
        except Exception as exc:
            ctx.finished_at = self.env.now
            self.pipeline.run_failed(ctx, exc)
            raise
        if ctx.timeout_spec is not None:
            # The request is doomed: it consumes the timeout budget (and
            # nothing else — the server never completes the work).
            yield self.env.timeout(ctx.timeout_spec.timeout_after)
            error = ctx.fault_plan.record_timeout(
                ctx.timeout_spec, op, self.env.now)
            ctx.finished_at = self.env.now
            self.pipeline.run_failed(ctx, error)
            raise error
        try:
            # Jitter draw order (rtt, then occupancy) is part of the seeded
            # reproducibility contract — figures are bit-identical per seed.
            ctx.server_latency = self.server_occupancy(op)
            rtt = self.base_rtt(op) * self._jitter() * ctx.latency_factor
            occupancy = ctx.server_latency * self._jitter() * ctx.latency_factor
            server = self.server_for(op)
            start = self.env.now
            # Request leg of the round trip.
            yield self.env.timeout(rtt / 2)
            yield from server.serve(occupancy, op.nbytes)
            # Response leg.
            yield self.env.timeout(rtt / 2)
        except Exception as exc:
            ctx.finished_at = self.env.now
            self.pipeline.run_failed(ctx, exc)
            raise
        self.op_times.setdefault(op.kind, Tally(op.kind.value)).record(
            self.env.now - start
        )
        ctx.finished_at = self.env.now
        self.pipeline.run_after(ctx)

    # -- diagnostics ---------------------------------------------------------
    def mean_op_time(self, kind: OpKind) -> Optional[float]:
        tally = self.op_times.get(kind)
        return tally.mean if tally is not None and tally.count else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<StorageCluster blobs={len(self.blob_servers)} "
                f"queues={len(self.queue_servers)} "
                f"tables={len(self.table_servers)}>")
