"""Operation descriptors: what the simulated clients ask the fabric to do."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Service", "OpKind", "OpDescriptor"]


class Service(str, Enum):
    BLOB = "blob"
    QUEUE = "queue"
    TABLE = "table"
    CACHE = "cache"


class OpKind(str, Enum):
    """Storage operations with distinct cost models."""

    # blob
    PUT_PAGE = "put_page"
    PUT_BLOCK = "put_block"
    PUT_BLOCK_LIST = "put_block_list"
    UPLOAD_BLOB = "upload_blob"
    GET_PAGE = "get_page"              # random page read (seek overhead)
    GET_BLOCK = "get_block"            # sequential block read (lookup overhead)
    DOWNLOAD_BLOB = "download_blob"    # whole-blob streaming read
    DELETE_BLOB = "delete_blob"
    CREATE_CONTAINER = "create_container"
    DELETE_CONTAINER = "delete_container"
    # queue
    PUT_MESSAGE = "put_message"
    GET_MESSAGE = "get_message"
    PEEK_MESSAGE = "peek_message"
    DELETE_MESSAGE = "delete_message"
    UPDATE_MESSAGE = "update_message"
    GET_MESSAGE_COUNT = "get_message_count"
    CREATE_QUEUE = "create_queue"
    DELETE_QUEUE = "delete_queue"
    # table
    INSERT_ENTITY = "insert_entity"
    QUERY_ENTITY = "query_entity"
    UPDATE_ENTITY = "update_entity"
    MERGE_ENTITY = "merge_entity"
    DELETE_ENTITY = "delete_entity"
    BATCH = "batch"
    CREATE_TABLE = "create_table"
    DELETE_TABLE = "delete_table"
    # cache (AppFabric caching service; paper II.B / future work)
    CACHE_GET = "cache_get"
    CACHE_PUT = "cache_put"
    CACHE_REMOVE = "cache_remove"
    CREATE_CACHE = "create_cache"


#: Kinds that mutate state (and hence pay replication costs / count as
#: writes for bandwidth accounting).
WRITE_KINDS = frozenset({
    OpKind.PUT_PAGE, OpKind.PUT_BLOCK, OpKind.PUT_BLOCK_LIST,
    OpKind.UPLOAD_BLOB, OpKind.DELETE_BLOB, OpKind.CREATE_CONTAINER,
    OpKind.DELETE_CONTAINER, OpKind.PUT_MESSAGE, OpKind.DELETE_MESSAGE,
    OpKind.UPDATE_MESSAGE, OpKind.CREATE_QUEUE, OpKind.DELETE_QUEUE,
    OpKind.INSERT_ENTITY, OpKind.UPDATE_ENTITY, OpKind.MERGE_ENTITY,
    OpKind.DELETE_ENTITY, OpKind.BATCH, OpKind.CREATE_TABLE,
    OpKind.DELETE_TABLE, OpKind.CACHE_PUT, OpKind.CACHE_REMOVE,
    OpKind.CREATE_CACHE,
})


@dataclass(frozen=True)
class OpDescriptor:
    """One storage request as seen by the fabric's cost model.

    ``partition`` selects the partition server (container+blob name for
    blobs, queue name for queues, PartitionKey for tables — paper IV.A-C);
    ``nbytes`` is the payload moved; ``units`` is the number of
    entities/messages/blobs the op counts as against per-second targets.
    """

    service: Service
    kind: OpKind
    partition: str
    nbytes: int = 0
    units: int = 1
    #: PutBlockList: number of blocks committed (bookkeeping cost term).
    block_count: int = 0

    @property
    def is_write(self) -> bool:
        return self.kind in WRITE_KINDS
