"""Rate throttles enforcing the published scalability targets in sim time.

Azure storage does not queue requests beyond a target — it *rejects* them
with ServerBusy and the client is expected to back off.  The paper's
benchmarks do exactly that ("the worker sleeps for a second before retrying
the same operation"), so the throttle here raises
:class:`~repro.storage.errors.ServerBusyError` rather than delaying.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..storage.errors import ServerBusyError

__all__ = ["SlidingWindowThrottle"]


class SlidingWindowThrottle:
    """Rejects operations once ``limit`` units pass within ``window`` seconds.

    Units are arbitrary (transactions, messages, entities or bytes).  The
    window slides in simulation time supplied by the caller, which keeps the
    throttle backend-agnostic and deterministic.
    """

    def __init__(self, limit: float, window: float = 1.0, *,
                 name: str = "", retry_after: float = 1.0) -> None:
        if limit <= 0:
            raise ValueError("limit must be > 0")
        if window <= 0:
            raise ValueError("window must be > 0")
        self.limit = float(limit)
        self.window = float(window)
        self.name = name
        self.retry_after = retry_after
        self._events: Deque[Tuple[float, float]] = deque()
        self._in_window = 0.0
        #: Total units admitted / rejected (diagnostics).
        self.admitted = 0.0
        self.rejected_ops = 0

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        events = self._events
        while events and events[0][0] <= horizon:
            _, units = events.popleft()
            self._in_window -= units

    def would_admit(self, now: float, units: float = 1.0) -> bool:
        """True if ``charge`` would currently succeed."""
        self._expire(now)
        return self._in_window + units <= self.limit

    def charge(self, now: float, units: float = 1.0) -> None:
        """Admit ``units`` at time ``now`` or raise :class:`ServerBusyError`."""
        self._expire(now)
        if self._in_window + units > self.limit:
            self.rejected_ops += 1
            raise ServerBusyError(
                f"throttled: {self.name or 'target'} exceeded "
                f"{self.limit:g}/{self.window:g}s",
                retry_after=self.retry_after,
            )
        self._events.append((now, units))
        self._in_window += units
        self.admitted += units

    @property
    def current_load(self) -> float:
        """Units currently counted inside the window (not expired lazily)."""
        return self._in_window

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SlidingWindowThrottle {self.name!r} "
                f"{self._in_window:g}/{self.limit:g} per {self.window:g}s>")
