"""Partition servers: the contended resources of the storage fabric.

"Windows Azure storage services partition the stored data across several
servers to provide enhanced scalability." (paper Section IV)

A :class:`PartitionServer` models one storage node: a bounded number of
concurrent request slots (a :class:`repro.simkit.Resource`) plus counters.
Requests queue FIFO when all slots are busy — that queueing is what turns
rising worker counts into rising per-operation times in Figures 4b, 6-8.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..simkit import Environment, Resource, Tally, UtilizationMonitor

__all__ = ["PartitionServer", "ServerPool"]


class PartitionServer:
    """One storage node serving a set of partitions."""

    def __init__(self, env: Environment, name: str, slots: int) -> None:
        self.env = env
        self.name = name
        self.slots = Resource(env, capacity=slots)
        self.utilization = UtilizationMonitor(env)
        self.service_times = Tally(f"{name}.service")
        self.wait_times = Tally(f"{name}.wait")
        self.ops_served = 0
        self.bytes_served = 0

    def serve(self, occupancy: float, nbytes: int = 0):
        """Process generator: hold one slot for ``occupancy`` seconds."""
        arrived = self.env.now
        with self.slots.request() as req:
            yield req
            self.wait_times.record(self.env.now - arrived)
            if self.slots.count == 1:
                self.utilization.mark_busy()
            try:
                yield self.env.timeout(occupancy)
            finally:
                self.service_times.record(occupancy)
                self.ops_served += 1
                self.bytes_served += nbytes
                if self.slots.count == 1:
                    self.utilization.mark_idle()

    @property
    def queue_length(self) -> int:
        return len(self.slots.queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PartitionServer {self.name} busy={self.slots.count}/{self.slots.capacity}>"


class ServerPool:
    """Lazily-created servers addressed by partition key.

    ``shards=None`` gives every distinct partition its own server (blob and
    queue placement: "each individual blob can be stored at a different
    server"; "a single queue and all the messages stored in it are stored at
    a single server").  With ``shards=k`` partitions hash onto ``k`` servers
    (table range servers).
    """

    def __init__(self, env: Environment, name: str, slots_per_server: int,
                 shards: Optional[int] = None) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1 or None")
        self.env = env
        self.name = name
        self.slots_per_server = slots_per_server
        self.shards = shards
        self._servers: Dict[str, PartitionServer] = {}

    def _server_key(self, partition: str) -> str:
        if self.shards is None:
            return partition
        # Stable, platform-independent hash (Python's str hash is salted).
        h = 0
        for ch in partition:
            h = (h * 131 + ord(ch)) & 0x7FFFFFFF
        return f"shard-{h % self.shards}"

    def server_key(self, partition: str) -> str:
        """Public placement lookup: which server key hosts ``partition``."""
        return self._server_key(partition)

    def server_for(self, partition: str) -> PartitionServer:
        key = self._server_key(partition)
        server = self._servers.get(key)
        if server is None:
            server = PartitionServer(
                self.env, f"{self.name}/{key}", self.slots_per_server
            )
            self._servers[key] = server
        return server

    def evict(self, partition: str) -> Optional[PartitionServer]:
        """Drop the server hosting ``partition`` (fault injection).

        Models a partition-range reassignment after a server crash: the
        next operation against the range lands on a fresh server (empty
        queue, cold counters).  Returns the evicted server, or ``None``
        if the range had no server yet.
        """
        return self._servers.pop(self._server_key(partition), None)

    @property
    def servers(self) -> Dict[str, PartitionServer]:
        return dict(self._servers)

    def __len__(self) -> int:
        return len(self._servers)
