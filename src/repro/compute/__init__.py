"""Compute substrate: VM sizes (Table I), roles, deployments, the fabric."""

from .autoscaler import Autoscaler
from .deployment import Deployment, Fabric
from .endpoints import Endpoint, EndpointError, EndpointRegistry, TcpMessage
from .provisioning import ProvisionedStart, ProvisioningModel, provisioned_start
from .roles import RoleBody, RoleContext, RoleInstance, RoleStatus
from .supervisor import RestartRecord, Supervisor
from .vmsizes import (
    EXTRA_LARGE,
    EXTRA_SMALL,
    LARGE,
    MEDIUM,
    SMALL,
    TABLE_I,
    VMSize,
    vm_size_by_name,
)

__all__ = [
    "Autoscaler",
    "Deployment",
    "Fabric",
    "RoleBody",
    "RoleContext",
    "RoleInstance",
    "RoleStatus",
    "VMSize",
    "TABLE_I",
    "EXTRA_SMALL",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "EXTRA_LARGE",
    "vm_size_by_name",
    "EndpointRegistry",
    "Endpoint",
    "EndpointError",
    "TcpMessage",
    "ProvisioningModel",
    "ProvisionedStart",
    "provisioned_start",
    "Supervisor",
    "RestartRecord",
]
