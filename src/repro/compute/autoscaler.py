"""Queue-depth autoscaling: elastic worker fleets on the fabric.

The paper's framework distributes a bag of tasks through queues, so the
natural elasticity signal is *backlog*: how many tasks are sitting in
the task queues right now.  :class:`Autoscaler` polls a caller-supplied
``backlog_fn`` on a fixed cadence and drives a
:class:`~repro.compute.deployment.Deployment` between ``min_instances``
and ``max_instances``:

* backlog above ``high_watermark`` → :meth:`Deployment.add_instance`
  (scale out, one instance per decision);
* backlog at or below ``low_watermark`` → cooperative retire of the
  highest-numbered active instance (scale in; the body drains first).

Decisions are separated by ``cooldown`` seconds so a burst does not
thrash the fleet, mirroring the hysteresis every production autoscaler
(including the later Azure Autoscale) applies.

Determinism: the scaler draws **no randomness** — its schedule is the
fixed polling cadence and its inputs are simulation state, so an
elasticity run is exactly reproducible under a seed, and a run without
an autoscaler is bit-identical to one where the class was never
imported.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..simkit import Environment
from .deployment import Deployment
from .roles import RoleStatus

__all__ = ["Autoscaler"]


class Autoscaler:
    """Watches a backlog metric and scales one deployment on watermarks."""

    def __init__(self, env: Environment, deployment: Deployment,
                 backlog_fn: Callable[[], int], *,
                 high_watermark: int = 8, low_watermark: int = 0,
                 check_interval: float = 2.0, cooldown: float = 6.0,
                 min_instances: int = 1,
                 max_instances: Optional[int] = None) -> None:
        if high_watermark <= low_watermark:
            raise ValueError("need high_watermark > low_watermark")
        if check_interval <= 0 or cooldown < 0:
            raise ValueError("bad autoscaler timing parameters")
        if min_instances < 1:
            raise ValueError("min_instances must be >= 1")
        self.env = env
        self.deployment = deployment
        self.backlog_fn = backlog_fn
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.check_interval = check_interval
        self.cooldown = cooldown
        self.min_instances = min_instances
        self.max_instances = max_instances
        #: ``(time, action, backlog, active_after)`` per decision, with
        #: action in {"scale_out", "scale_in"} — elasticity evidence for
        #: the chaos verdict.
        self.events: List[Tuple[float, str, int, int]] = []
        self.scale_outs = 0
        self.scale_ins = 0
        self._last_action = float("-inf")
        self._process = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Autoscaler":
        if self._process is None:
            self._process = self.env.process(
                self._run(), name=f"autoscaler-{self.deployment.name}")
        return self

    def stop(self) -> None:
        self._stopped = True

    # -- inspection --------------------------------------------------------
    def active_instances(self) -> List:
        """Instances still serving: running and not asked to retire."""
        return [i for i in self.deployment.instances
                if i.status is RoleStatus.RUNNING
                and not i.context.retire_requested]

    def describe(self) -> dict:
        return {
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "peak_instances": max(
                (after for (_, _, _, after) in self.events),
                default=len(self.deployment.instances)),
            "decisions": [
                {"time": t, "action": action, "backlog": backlog,
                 "active": after}
                for (t, action, backlog, after) in self.events],
        }

    # -- the control loop --------------------------------------------------
    def _run(self):
        while not self._stopped:
            yield self.env.timeout(self.check_interval)
            if self._stopped:
                return
            if self.env.now - self._last_action < self.cooldown:
                continue
            backlog = int(self.backlog_fn())
            active = self.active_instances()
            if (backlog > self.high_watermark
                    and (self.max_instances is None
                         or len(active) < self.max_instances)):
                self.deployment.add_instance()
                self.scale_outs += 1
                self._last_action = self.env.now
                self.events.append((self.env.now, "scale_out", backlog,
                                    len(active) + 1))
            elif (backlog <= self.low_watermark
                    and len(active) > self.min_instances):
                # Retire the newest active instance: last hired, first
                # drained (keeps the original fleet stable for restarts).
                victim = max(active, key=lambda i: i.context.role_id)
                self.deployment.retire_instance(victim.context.role_id)
                self.scale_ins += 1
                self._last_action = self.env.now
                self.events.append((self.env.now, "scale_in", backlog,
                                    len(active) - 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Autoscaler {self.deployment.name!r} "
                f"out={self.scale_outs} in={self.scale_ins}>")
