"""Deployments: groups of role instances managed by the (simulated) fabric.

"In order to evaluate Windows Azure storage mechanisms, we deploy varying
number of virtual machines (VM) and these virtual machines read/write
from/to Azure storage concurrently." (paper Section I)
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..simkit import AllOf, Environment
from .roles import RoleBody, RoleContext, RoleInstance, RoleStatus
from .vmsizes import SMALL, VMSize

__all__ = ["Deployment", "Fabric"]


class Deployment:
    """N instances of one role body, started together.

    The body is any generator function taking a :class:`RoleContext`;
    instance ``role_id`` values run 0..N-1, mirroring the per-worker loops
    of the paper's algorithms.
    """

    def __init__(self, env: Environment, account, body: RoleBody, *,
                 instances: int, vm_size: VMSize = SMALL,
                 name: str = "worker", contain_crashes: bool = False) -> None:
        if instances < 1:
            raise ValueError("instances must be >= 1")
        self.env = env
        self.account = account
        self.name = name
        self.vm_size = vm_size
        self.body = body
        self.contain_crashes = contain_crashes
        self.instances: List[RoleInstance] = [
            RoleInstance(env, body, RoleContext(
                env, role_id=i, instance_count=instances,
                account=account, vm_size=vm_size, role_name=name,
            ), contain_crashes=contain_crashes)
            for i in range(instances)
        ]
        self._started = False

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "Deployment":
        """Start every instance (idempotent)."""
        if not self._started:
            for instance in self.instances:
                instance.start()
            self._started = True
        return self

    def all_done_event(self):
        """Simkit event firing when every instance terminates."""
        self.start()
        return AllOf(self.env, [i.process for i in self.instances])

    def run(self) -> List[Any]:
        """Start and run the simulation until all instances finish.

        Returns the instances' return values in role-id order.
        """
        self.env.run(until=self.all_done_event())
        return self.results()

    # -- inspection --------------------------------------------------------
    def results(self) -> List[Any]:
        return [i.result for i in self.instances]

    def statuses(self) -> List[RoleStatus]:
        return [i.status for i in self.instances]

    @property
    def completed(self) -> bool:
        return all(i.status is RoleStatus.COMPLETED for i in self.instances)

    @property
    def failed_instances(self) -> List[RoleInstance]:
        return [i for i in self.instances if i.status is RoleStatus.FAILED]

    # -- elasticity --------------------------------------------------------
    def add_instance(self) -> RoleInstance:
        """Scale out: append (and start, if running) one new instance.

        The new instance gets the next ``role_id``; existing contexts keep
        their original ``instance_count`` — role bodies must not assume
        the fleet size is static (the paper's framework already doesn't:
        task distribution is queue-pull, not id-partitioned).
        """
        role_id = len(self.instances)
        instance = RoleInstance(self.env, self.body, RoleContext(
            self.env, role_id=role_id, instance_count=role_id + 1,
            account=self.account, vm_size=self.vm_size, role_name=self.name,
        ), contain_crashes=self.contain_crashes)
        self.instances.append(instance)
        if self._started:
            instance.start()
        return instance

    def retire_instance(self, role_id: int) -> None:
        """Scale in, cooperatively: flag one instance to drain and exit.

        The body observes :attr:`RoleContext.retire_requested` at its next
        idle point and returns normally (status COMPLETED) — in-flight
        work is finished, never abandoned.
        """
        self.instances[role_id].context.retire_requested = True

    # -- fault injection ---------------------------------------------------
    def fail_instance(self, role_id: int, cause: Any = "role recycled") -> None:
        """Crash one running instance (tests the framework's fault tolerance)."""
        self.instances[role_id].fail(cause)

    def restart_instance(self, role_id: int) -> None:
        self.instances[role_id].restart()

    def __len__(self) -> int:
        return len(self.instances)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Deployment {self.name!r} x{len(self.instances)} "
                f"({self.vm_size.name})>")


class Fabric:
    """The Windows Azure Fabric: names and tracks deployments.

    "Fabric … is the network of interconnected physical computing nodes
    consisting of servers, high-speed connections, and switches.  Compute
    and storage components are part of the Fabric." (paper II.B)
    """

    def __init__(self, env: Environment, account) -> None:
        self.env = env
        self.account = account
        self.deployments: Dict[str, Deployment] = {}

    def deploy(self, body: RoleBody, *, instances: int,
               vm_size: VMSize = SMALL, name: str = "worker",
               contain_crashes: bool = False) -> Deployment:
        """Create and register a deployment (names must be unique)."""
        if name in self.deployments:
            raise ValueError(f"deployment {name!r} already exists")
        deployment = Deployment(
            self.env, self.account, body,
            instances=instances, vm_size=vm_size, name=name,
            contain_crashes=contain_crashes,
        )
        self.deployments[name] = deployment
        return deployment

    def start_all(self) -> None:
        for deployment in self.deployments.values():
            deployment.start()

    def run_all(self) -> Dict[str, List[Any]]:
        """Run until every deployment completes; results keyed by name."""
        self.start_all()
        events = [d.all_done_event() for d in self.deployments.values()]
        self.env.run(until=AllOf(self.env, events))
        return {name: d.results() for name, d in self.deployments.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Fabric deployments={list(self.deployments)}>"
