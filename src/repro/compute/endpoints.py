"""Inter-role TCP endpoints.

The paper (Section III): "Azure platform also supports TCP endpoints that
can be configured to facilitate an application to listen on an assigned TCP
port for incoming requests.  TCP messages can be sent/received among Azure
roles … these messages are not currently studied in this paper."

This module supplies that substrate: role instances register named
endpoints; peers connect and exchange messages over the simulated intra-DC
network (per-message latency + per-byte bandwidth).  It lets applications
compare direct role-to-role messaging against the queue-based communication
the paper benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..simkit import Environment, Store

__all__ = ["EndpointRegistry", "Endpoint", "EndpointError", "TcpMessage"]

MB = 1024 * 1024


class EndpointError(Exception):
    """Endpoint registry failures (duplicate registration, unknown target)."""


@dataclass(frozen=True)
class TcpMessage:
    """One delivered message: payload plus sender identification."""

    source: str
    payload: bytes
    sent_at: float
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


class Endpoint:
    """One role instance's listening endpoint (an inbox of messages)."""

    def __init__(self, registry: "EndpointRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self._inbox: Store = Store(registry.env)

    def recv(self):
        """Process generator: wait for and return the next TcpMessage."""
        message = yield self._inbox.get()
        return message

    def try_recv(self) -> Optional[TcpMessage]:
        """Non-blocking poll of the inbox."""
        if self._inbox.items:
            return self._inbox.items.pop(0)
        return None

    @property
    def pending(self) -> int:
        return len(self._inbox.items)

    def close(self) -> None:
        self._registry.unregister(self.name)


class EndpointRegistry:
    """Name service + network model for intra-deployment TCP messaging.

    One registry per deployment/fabric; the network model charges the
    *sender* a serialization delay (payload/bandwidth) and delivers after a
    propagation latency, so sends overlap like real sockets. ::

        registry = EndpointRegistry(env)
        inbox = registry.register("worker-3")
        ...
        yield from registry.send("worker-0", "worker-3", b"data")
        msg = yield from inbox.recv()
    """

    def __init__(self, env: Environment, *, latency_s: float = 0.0008,
                 bandwidth_bytes_per_s: float = 100 * MB,
                 jitter_sigma: float = 0.1, seed: int = 0) -> None:
        if latency_s < 0 or bandwidth_bytes_per_s <= 0:
            raise ValueError("bad network parameters")
        self.env = env
        self.latency_s = latency_s
        self.bandwidth = bandwidth_bytes_per_s
        self._rng = np.random.default_rng(seed)
        self.jitter_sigma = jitter_sigma
        self._endpoints: Dict[str, Endpoint] = {}
        #: Last scheduled delivery time per (source, target) pair: TCP is a
        #: stream, so delivery order per connection must match send order
        #: even when per-message latency draws would reorder them.
        self._channel_clock: Dict[Tuple[str, str], float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- registration ---------------------------------------------------------
    def register(self, name: str) -> Endpoint:
        """Open a named endpoint; names must be unique while open."""
        if name in self._endpoints:
            raise EndpointError(f"endpoint {name!r} already registered")
        endpoint = Endpoint(self, name)
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def lookup(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise EndpointError(f"no endpoint {name!r} registered") from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    # -- messaging -----------------------------------------------------------
    def _jitter(self) -> float:
        if self.jitter_sigma <= 0:
            return 1.0
        s = self.jitter_sigma
        return float(np.exp(self._rng.normal(-0.5 * s * s, s)))

    def send(self, source: str, target: str, payload: bytes):
        """Process generator: transmit ``payload`` from source to target.

        The sender occupies its NIC for the serialization time; delivery to
        the target's inbox happens one propagation latency later without
        blocking the sender further.
        """
        endpoint = self.lookup(target)  # fail fast on unknown targets
        payload = bytes(payload)
        sent_at = self.env.now
        serialize = len(payload) / self.bandwidth * self._jitter()
        if serialize > 0:
            yield self.env.timeout(serialize)
        propagation = self.latency_s * self._jitter()
        channel = (source, target)
        deliver_at = max(self.env.now + propagation,
                         self._channel_clock.get(channel, 0.0))
        self._channel_clock[channel] = deliver_at
        delay = deliver_at - self.env.now

        def deliver():
            yield self.env.timeout(delay)
            # Endpoint may have closed while in flight; drop like a real
            # socket would on RST.
            if self._endpoints.get(target) is endpoint:
                yield endpoint._inbox.put(TcpMessage(
                    source=source, payload=payload,
                    sent_at=sent_at, delivered_at=self.env.now))

        self.env.process(deliver())
        self.messages_sent += 1
        self.bytes_sent += len(payload)
