"""VM provisioning and deployment-timing model.

The paper's future work: "We will also include resource provisioning times
and application deployment timings."  This module supplies that model so the
deployment-timing ablation benchmark can quantify it.

The 2012-era fabric allocated role instances in stages — image transfer,
VM boot, role host start — and the observable provisioning time grew with
instance size and (weakly) with how many instances were requested at once.
The constants model the ~6-12 minute deployments users of the era measured;
like every fabric constant they are calibrated, seeded, and documented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..simkit import AllOf, Environment
from .deployment import Deployment
from .vmsizes import EXTRA_LARGE, EXTRA_SMALL, LARGE, MEDIUM, SMALL, VMSize

__all__ = ["ProvisioningModel", "ProvisionedStart", "provisioned_start"]

#: Mean provisioning minutes per VM size (bigger images + more resources to
#: reserve take longer to allocate).
_MEAN_MINUTES: Dict[str, float] = {
    EXTRA_SMALL.name: 6.0,
    SMALL.name: 7.0,
    MEDIUM.name: 8.0,
    LARGE.name: 9.5,
    EXTRA_LARGE.name: 11.0,
}


@dataclass
class ProvisionedStart:
    """Timing record of one deployment's provisioned start."""

    requested: int
    first_ready_at: float
    all_ready_at: float
    per_instance: List[float]

    @property
    def spread(self) -> float:
        """Seconds between the first and the last instance becoming ready."""
        return self.all_ready_at - self.first_ready_at


class ProvisioningModel:
    """Draws per-instance provisioning delays (seconds)."""

    def __init__(self, *, seed: int = 0, sigma: float = 0.25,
                 batch_penalty_s_per_instance: float = 2.0,
                 mean_minutes: Optional[Dict[str, float]] = None) -> None:
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self._rng = np.random.default_rng(seed)
        self.sigma = sigma
        #: Allocation contention: each extra instance in one request adds a
        #: little to everyone's expected wait.
        self.batch_penalty_s_per_instance = batch_penalty_s_per_instance
        self.mean_minutes = dict(_MEAN_MINUTES if mean_minutes is None
                                 else mean_minutes)

    def mean_seconds(self, vm_size: VMSize, batch_size: int = 1) -> float:
        try:
            base = self.mean_minutes[vm_size.name] * 60.0
        except KeyError:
            raise KeyError(f"no provisioning mean for VM size {vm_size.name!r}")
        return base + self.batch_penalty_s_per_instance * max(0, batch_size - 1)

    def draw(self, vm_size: VMSize, batch_size: int = 1) -> float:
        """One provisioning delay draw (lognormal around the mean)."""
        mean = self.mean_seconds(vm_size, batch_size)
        if self.sigma == 0:
            return mean
        # Mean-preserving lognormal: E[lognormal(mu, s)] = exp(mu + s^2/2).
        mu = np.log(mean) - 0.5 * self.sigma ** 2
        return float(self._rng.lognormal(mu, self.sigma))


def provisioned_start(deployment: Deployment, model: ProvisioningModel
                      ) -> "tuple":
    """Start a deployment behind per-instance provisioning delays.

    Returns ``(all_started_event, record)``: the event fires when every
    instance has been provisioned *and started*; ``record`` is filled in as
    instances come up and is complete once the event fires.  The deployment
    must not have been started yet.
    """
    env = deployment.env
    if deployment._started:
        raise RuntimeError("deployment already started")
    deployment._started = True  # we take over instance starting

    n = len(deployment.instances)
    record = ProvisionedStart(requested=n, first_ready_at=float("inf"),
                              all_ready_at=0.0, per_instance=[0.0] * n)

    def provision(instance, index):
        delay = model.draw(deployment.vm_size, batch_size=n)
        yield env.timeout(delay)
        record.per_instance[index] = env.now
        record.first_ready_at = min(record.first_ready_at, env.now)
        record.all_ready_at = max(record.all_ready_at, env.now)
        instance.start()
        # The provisioning process completes when the role body does, so a
        # waiter on all_started also observes body completion.
        yield instance.process

    procs = [env.process(provision(inst, i))
             for i, inst in enumerate(deployment.instances)]
    return AllOf(env, procs), record
