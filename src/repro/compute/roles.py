"""Web and worker roles: the Azure compute programming model (paper II.B).

"Its programming primitives consist of two types of processes called web
role and worker role for computation …  Worker roles are the processing
entities representing the backend processing for the web application."

A role *body* is a simkit process generator taking a :class:`RoleContext`;
a :class:`RoleInstance` runs one body on one simulated VM and supports the
failure/recycle semantics of the fabric (instances can crash and restart —
the framework's queue-based fault tolerance is exercised that way).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional

from ..simkit import Environment, Interrupt, Process
from .vmsizes import VMSize

__all__ = ["RoleContext", "RoleInstance", "RoleStatus", "RoleBody"]

RoleBody = Callable[["RoleContext"], Generator]


class RoleStatus(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"
    COMPLETED = "completed"


class RoleContext:
    """Everything a role body can see: its identity and the environment."""

    def __init__(self, env: Environment, role_id: int, instance_count: int,
                 account, vm_size: VMSize, role_name: str) -> None:
        self.env = env
        #: Zero-based instance index (the paper's ``roleId``).
        self.role_id = role_id
        #: Total instances of this role (the paper's ``workers``).
        self.instance_count = instance_count
        #: The (simulated or emulated) storage account.
        self.account = account
        self.vm_size = vm_size
        self.role_name = role_name
        #: Cooperative scale-in: an autoscaler (or operator) sets this;
        #: long-running bodies check it at idle points and return cleanly
        #: — the 2012 fabric's "delete role instance" was exactly such a
        #: drain-then-remove.
        self.retire_requested = False

    @property
    def now(self) -> float:
        return self.env.now

    def sleep(self, seconds: float):
        """Sleep helper (``Sleep(1 second)`` in Algorithm 2)."""
        return self.env.timeout(seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<RoleContext {self.role_name}#{self.role_id}"
                f"/{self.instance_count}>")


class RoleInstance:
    """One running instance of a web or worker role."""

    def __init__(self, env: Environment, body: RoleBody, context: RoleContext,
                 *, contain_crashes: bool = False) -> None:
        self.env = env
        self.body = body
        self.context = context
        self.status = RoleStatus.CREATED
        self.process: Optional[Process] = None
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        self.restarts = 0
        #: Fabric-style crash containment: application exceptions mark the
        #: instance FAILED (for a Supervisor to recycle) instead of
        #: propagating out of the simulation.
        self.contain_crashes = contain_crashes

    @property
    def name(self) -> str:
        return f"{self.context.role_name}#{self.context.role_id}"

    def start(self) -> Process:
        """Launch the role body as a simkit process."""
        if self.status is RoleStatus.RUNNING:
            raise RuntimeError(f"{self.name} is already running")
        self.status = RoleStatus.RUNNING
        self.process = self.env.process(self._guard(), name=self.name)
        return self.process

    def _guard(self):
        try:
            self.result = yield from self.body(self.context)
        except Interrupt as interrupt:
            self.status = RoleStatus.FAILED
            self.failure = interrupt
            return None
        except BaseException as exc:
            self.status = RoleStatus.FAILED
            self.failure = exc
            if self.contain_crashes:
                return None
            raise
        else:
            self.status = RoleStatus.COMPLETED
            return self.result

    def fail(self, cause: Any = "role recycled") -> None:
        """Simulate an instance failure (fabric recycle, VM crash)."""
        if self.process is None or not self.process.is_alive:
            raise RuntimeError(f"{self.name} is not running")
        self.process.interrupt(cause)

    def restart(self) -> Process:
        """Start the body again after a failure (fresh generator)."""
        if self.status is RoleStatus.RUNNING:
            raise RuntimeError(f"{self.name} is still running")
        self.restarts += 1
        self.failure = None
        self.status = RoleStatus.CREATED
        return self.start()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RoleInstance {self.name} {self.status.value}>"
