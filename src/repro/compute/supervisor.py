"""Role supervision: the fabric's automatic instance recovery.

The 2012 Azure fabric monitored role instances and restarted any that
crashed ("role recycling").  Combined with queue redelivery, that is the
full fault-tolerance story of the paper's framework: the *message* survives
because it was never deleted, and the *worker* survives because the fabric
brings it back.

:class:`Supervisor` watches a deployment and restarts failed instances
after a recycle delay, with an optional restart budget per instance (to
model the fabric giving up on crash-looping roles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..simkit import Environment
from .deployment import Deployment
from .roles import RoleStatus

__all__ = ["Supervisor", "RestartRecord"]


@dataclass(frozen=True)
class RestartRecord:
    """One restart performed by the supervisor."""

    role_id: int
    failed_at: float
    restarted_at: float
    attempt: int


class Supervisor:
    """Watches one deployment and recycles failed instances.

    ``recycle_delay`` models the fabric's detect-and-restart latency
    (tens of seconds in the 2012 fabric).  ``max_restarts`` bounds restarts
    per instance; beyond it the instance stays FAILED (crash-loop cutoff).
    """

    def __init__(self, deployment: Deployment, *,
                 recycle_delay: float = 15.0,
                 poll_interval: float = 1.0,
                 max_restarts: Optional[int] = None) -> None:
        if recycle_delay < 0 or poll_interval <= 0:
            raise ValueError("bad supervisor timing parameters")
        self.deployment = deployment
        self.env: Environment = deployment.env
        self.recycle_delay = recycle_delay
        self.poll_interval = poll_interval
        self.max_restarts = max_restarts
        self.restarts: List[RestartRecord] = []
        self._attempts: Dict[int, int] = {}
        self._process = None
        self._stopped = False

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "Supervisor":
        """Begin watching (idempotent)."""
        if self._process is None:
            self._process = self.env.process(self._watch(), name="supervisor")
        return self

    def stop(self) -> None:
        """Stop watching (lets the simulation drain)."""
        self._stopped = True

    def _watch(self):
        while not self._stopped:
            all_done = True
            for instance in self.deployment.instances:
                if instance.status is RoleStatus.FAILED:
                    role_id = instance.context.role_id
                    attempt = self._attempts.get(role_id, 0) + 1
                    if (self.max_restarts is not None
                            and attempt > self.max_restarts):
                        continue  # crash-loop cutoff: leave it failed
                    failed_at = self.env.now
                    yield self.env.timeout(self.recycle_delay)
                    # Re-check: an operator may have restarted it meanwhile.
                    if instance.status is not RoleStatus.FAILED:
                        continue
                    instance.restart()
                    self._attempts[role_id] = attempt
                    self.restarts.append(RestartRecord(
                        role_id=role_id, failed_at=failed_at,
                        restarted_at=self.env.now, attempt=attempt))
                    all_done = False
                elif instance.status is RoleStatus.RUNNING:
                    all_done = False
            if all_done:
                return  # everything completed (or permanently failed)
            yield self.env.timeout(self.poll_interval)

    # -- inspection --------------------------------------------------------
    @property
    def restart_count(self) -> int:
        return len(self.restarts)

    def restarts_for(self, role_id: int) -> int:
        return self._attempts.get(role_id, 0)
