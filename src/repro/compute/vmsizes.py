"""Virtual machine configurations of Windows Azure roles (paper Table I).

"Both web role and worker role processes can have different configurations
as shown in Table I."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "VMSize",
    "EXTRA_SMALL",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "EXTRA_LARGE",
    "TABLE_I",
    "vm_size_by_name",
]


@dataclass(frozen=True)
class VMSize:
    """One row of the paper's Table I.

    ``cpu_cores`` is ``None`` for the Extra Small instance, whose core is
    *shared* rather than dedicated.  ``nic_mbps`` is the era's documented
    network allocation per size (not part of Table I, used by the optional
    client-side bandwidth model).
    """

    name: str
    cpu_cores: Optional[int]
    memory_mb: int
    storage_gb: int
    nic_mbps: int

    @property
    def shared_core(self) -> bool:
        return self.cpu_cores is None

    @property
    def cores_display(self) -> str:
        return "Shared" if self.shared_core else str(self.cpu_cores)

    @property
    def memory_display(self) -> str:
        if self.memory_mb < 1024:
            return f"{self.memory_mb}MB"
        gb = self.memory_mb / 1024
        return f"{gb:g} GB"

    @property
    def nic_bytes_per_second(self) -> float:
        return self.nic_mbps * 1_000_000 / 8


EXTRA_SMALL = VMSize("Extra Small", None, 768, 20, 5)
SMALL = VMSize("Small", 1, 1792, 225, 100)
MEDIUM = VMSize("Medium", 2, 3584, 490, 200)
LARGE = VMSize("Large", 4, 7168, 1000, 400)
EXTRA_LARGE = VMSize("Extra Large", 8, 14336, 2040, 800)

#: The paper's Table I, in row order.
TABLE_I: List[VMSize] = [EXTRA_SMALL, SMALL, MEDIUM, LARGE, EXTRA_LARGE]

_BY_NAME: Dict[str, VMSize] = {v.name.lower(): v for v in TABLE_I}
_BY_NAME.update({v.name.lower().replace(" ", ""): v for v in TABLE_I})


def vm_size_by_name(name: str) -> VMSize:
    """Look up a Table I row by (case/space-insensitive) name."""
    key = name.lower().strip()
    try:
        return _BY_NAME[key if key in _BY_NAME else key.replace(" ", "")]
    except KeyError:
        raise KeyError(
            f"unknown VM size {name!r}; known: {[v.name for v in TABLE_I]}"
        ) from None
