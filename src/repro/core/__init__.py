"""AzureBench: the benchmark suite itself (paper Section IV)."""

from .blob_bench import (
    PHASE_BLOCK_FULL_DOWNLOAD,
    PHASE_BLOCK_SEQ_DOWNLOAD,
    PHASE_BLOCK_UPLOAD,
    PHASE_PAGE_FULL_DOWNLOAD,
    PHASE_PAGE_RANDOM_DOWNLOAD,
    PHASE_PAGE_UPLOAD,
    BlobBenchConfig,
    blob_bench_body,
)
from .metrics import BenchResult, PhaseRecord, PhaseRecorder, PhaseStats
from .queue_bench import (
    OP_GET,
    OP_PEEK,
    OP_PUT,
    SeparateQueueBenchConfig,
    SharedQueueBenchConfig,
    phase_name,
    separate_queue_bench_body,
    shared_phase_name,
    shared_queue_bench_body,
)
from .runner import RunConfig, run_bench, sweep_workers
from .table_bench import (
    OP_DELETE,
    OP_INSERT,
    OP_QUERY,
    OP_UPDATE,
    TableBenchConfig,
    table_bench_body,
    table_phase_name,
)

__all__ = [
    # metrics
    "BenchResult",
    "PhaseRecord",
    "PhaseRecorder",
    "PhaseStats",
    # runner
    "RunConfig",
    "run_bench",
    "sweep_workers",
    # blob bench
    "BlobBenchConfig",
    "blob_bench_body",
    "PHASE_PAGE_UPLOAD",
    "PHASE_BLOCK_UPLOAD",
    "PHASE_PAGE_RANDOM_DOWNLOAD",
    "PHASE_BLOCK_SEQ_DOWNLOAD",
    "PHASE_PAGE_FULL_DOWNLOAD",
    "PHASE_BLOCK_FULL_DOWNLOAD",
    # queue bench
    "SeparateQueueBenchConfig",
    "separate_queue_bench_body",
    "SharedQueueBenchConfig",
    "shared_queue_bench_body",
    "phase_name",
    "shared_phase_name",
    "OP_PUT",
    "OP_PEEK",
    "OP_GET",
    # table bench
    "TableBenchConfig",
    "table_bench_body",
    "table_phase_name",
    "OP_INSERT",
    "OP_QUERY",
    "OP_UPDATE",
    "OP_DELETE",
]
