"""AzureBench Blob storage benchmark (paper Algorithm 1, Figures 4 & 5).

Per repeat, the worker fleet together uploads one shared Page blob and one
shared Block blob (``total_chunks`` chunks of ``chunk_bytes`` each, split
evenly across workers), synchronizes via the queue barrier, and then every
worker downloads the blobs three ways:

* **random page reads** — ``GetPage`` at random offsets (Fig 5 "Page"),
* **sequential block reads** — ``GetBlock`` in order (Fig 5 "Block"),
* **whole-blob streaming** — ``openRead()`` / ``DownloadText()`` (Fig 4).

Timings exclude synchronization, exactly as the paper states.  Phase names
(constants below) are what the reporting layer keys on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compute.roles import RoleContext
from ..framework import QueueBarrier
from ..sim import retrying
from ..storage import MB
from ..storage.content import SyntheticContent
from .metrics import PhaseRecorder

__all__ = [
    "BlobBenchConfig",
    "blob_bench_body",
    "PHASE_PAGE_UPLOAD",
    "PHASE_BLOCK_UPLOAD",
    "PHASE_PAGE_RANDOM_DOWNLOAD",
    "PHASE_BLOCK_SEQ_DOWNLOAD",
    "PHASE_PAGE_FULL_DOWNLOAD",
    "PHASE_BLOCK_FULL_DOWNLOAD",
]

PHASE_PAGE_UPLOAD = "page_upload"
PHASE_BLOCK_UPLOAD = "block_upload"
PHASE_PAGE_RANDOM_DOWNLOAD = "page_random_download"
PHASE_BLOCK_SEQ_DOWNLOAD = "block_seq_download"
PHASE_PAGE_FULL_DOWNLOAD = "page_full_download"
PHASE_BLOCK_FULL_DOWNLOAD = "block_full_download"


@dataclass(frozen=True)
class BlobBenchConfig:
    """Parameters of Algorithm 1.

    Paper values: ``chunk_bytes=1 MB``, ``total_chunks=100`` (a 100 MB blob
    per repeat), ``repeats=10`` (1 GB uploaded per blob kind).  Defaults are
    scaled down so the full worker sweep stays fast; the figure harness
    passes the paper's values when ``AZUREBENCH_FULL=1``.
    """

    container: str = "azurebench"
    page_blob: str = "azurebenchpageblob"
    block_blob: str = "azurebenchblockblob"
    chunk_bytes: int = 1 * MB
    total_chunks: int = 100
    repeats: int = 1
    #: Random chunk downloads per worker per repeat (paper: ``count``).
    downloads_per_worker: int = -1  # -1 -> total_chunks
    barrier_queue: str = "azurebench-sync"
    barrier_poll: float = 1.0
    seed: int = 12345

    @property
    def blob_bytes(self) -> int:
        return self.chunk_bytes * self.total_chunks

    @property
    def effective_downloads(self) -> int:
        return (self.total_chunks if self.downloads_per_worker < 0
                else self.downloads_per_worker)


def _chunks_for_worker(total: int, workers: int, worker_id: int) -> range:
    """Contiguous chunk indices owned by one worker (even split)."""
    base, extra = divmod(total, workers)
    start = worker_id * base + min(worker_id, extra)
    size = base + (1 if worker_id < extra else 0)
    return range(start, start + size)


def blob_bench_body(config: BlobBenchConfig):
    """Build the worker role body implementing Algorithm 1."""

    def body(ctx: RoleContext):
        env = ctx.env
        blob = ctx.account.blob_client()
        queue = ctx.account.queue_client()
        rec = PhaseRecorder(env, ctx.role_id)
        barrier = QueueBarrier(queue, config.barrier_queue,
                               ctx.instance_count,
                               poll_interval=config.barrier_poll, env=env)
        rng = np.random.default_rng(config.seed + ctx.role_id)

        # Setup (untimed): container, page blob, barrier queue.
        yield from barrier.ensure_queue()
        yield from retrying(env, lambda: blob.create_container(
            config.container))
        if ctx.role_id == 0:
            yield from retrying(env, lambda: blob.create_page_blob(
                config.container, config.page_blob, config.blob_bytes))
        yield from barrier.wait()

        mine = _chunks_for_worker(config.total_chunks, ctx.instance_count,
                                  ctx.role_id)

        for repeat in range(config.repeats):
            content_seed = config.seed * 1000 + repeat

            # -- Page blob upload (PutPage at this worker's offsets) --------
            rec.start(PHASE_PAGE_UPLOAD)
            for chunk in mine:
                payload = SyntheticContent(config.chunk_bytes,
                                           seed=content_seed, origin=0)
                yield from retrying(env, lambda p=payload, c=chunk: blob.put_page(
                    config.container, config.page_blob,
                    c * config.chunk_bytes, p),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(config.chunk_bytes)
            rec.stop()

            # -- Block blob upload (PutBlock ... PutBlockList) -------------
            rec.start(PHASE_BLOCK_UPLOAD)
            block_ids = []
            for chunk in mine:
                bid = f"b{chunk:08d}"
                payload = SyntheticContent(config.chunk_bytes,
                                           seed=content_seed, origin=0)
                yield from retrying(env, lambda p=payload, b=bid: blob.put_block(
                    config.container, config.block_blob, b, p),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(config.chunk_bytes)
                block_ids.append(bid)
            # Commit own blocks on top of whatever is already committed
            # (merge commit: see SimBlobClient.put_block_list).
            yield from retrying(env, lambda: blob.put_block_list(
                config.container, config.block_blob, block_ids, merge=True),
                on_retry=lambda *_: rec.add_retry())
            rec.add_op(0)
            rec.stop()

            yield from barrier.wait()  # Synchronize(++syncCount)

            # -- Random page downloads (GetPage at random offsets) -----------
            rec.start(PHASE_PAGE_RANDOM_DOWNLOAD)
            for _ in range(config.effective_downloads):
                offset = int(rng.integers(0, config.total_chunks)) \
                    * config.chunk_bytes
                yield from retrying(env, lambda o=offset: blob.get_page(
                    config.container, config.page_blob, o, config.chunk_bytes),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(config.chunk_bytes)
            rec.stop()

            # -- Sequential block downloads (GetBlock in order) -------------
            rec.start(PHASE_BLOCK_SEQ_DOWNLOAD)
            n_blocks = blob.block_count(config.container, config.block_blob)
            for i in range(min(config.effective_downloads, n_blocks)):
                yield from retrying(env, lambda j=i: blob.get_block(
                    config.container, config.block_blob, j),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(config.chunk_bytes)
            rec.stop()

            yield from barrier.wait()

            # -- Whole-blob downloads ----------------------------------------
            rec.start(PHASE_PAGE_FULL_DOWNLOAD)
            yield from retrying(env, lambda: blob.download_page_blob(
                config.container, config.page_blob),
                on_retry=lambda *_: rec.add_retry())
            rec.add_op(config.blob_bytes)
            rec.stop()

            rec.start(PHASE_BLOCK_FULL_DOWNLOAD)
            yield from retrying(env, lambda: blob.download_block_blob(
                config.container, config.block_blob),
                on_retry=lambda *_: rec.add_retry())
            rec.add_op(config.blob_bytes)
            rec.stop()

            yield from barrier.wait()

            # Cleanup between repeats (worker 0, untimed): delete and
            # recreate the blobs, as Algorithm 1's trailing Delete calls do.
            if ctx.role_id == 0 and repeat + 1 < config.repeats:
                yield from retrying(env, lambda: blob.delete_blob(
                    config.container, config.block_blob))
                yield from retrying(env, lambda: blob.delete_blob(
                    config.container, config.page_blob))
                yield from retrying(env, lambda: blob.create_page_blob(
                    config.container, config.page_blob, config.blob_bytes))
            yield from barrier.wait()

        return rec

    return body
