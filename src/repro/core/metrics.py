"""Measurement containers for AzureBench runs.

The paper reports, per benchmark phase (e.g. "Page blob upload" or "Get
Message, 16 KB"):

* the **time** taken (per-worker, excluding synchronization), and
* the **throughput** (total payload moved / phase wall time).

:class:`PhaseRecorder` collects per-worker phase timings inside a role body;
:class:`BenchResult` aggregates recorders across workers into those two
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..storage.limits import MB

__all__ = ["PhaseRecord", "PhaseRecorder", "PhaseStats", "BenchResult",
           "set_phase_hook"]

#: Optional observer of phase lifecycle events, ``hook(event, name)`` with
#: ``event`` in {"start", "stop", "span"}.  The tracing layer
#: (:mod:`repro.observability`) points this at ``Tracer.on_phase`` for the
#: duration of a traced run so spans can be attributed to benchmark
#: phases; None (the default) costs one global read per phase boundary.
_PHASE_HOOK: Optional[Callable[[str, str], None]] = None


def set_phase_hook(hook: Optional[Callable[[str, str], None]]) -> None:
    """Install (or clear, with ``None``) the phase lifecycle observer."""
    global _PHASE_HOOK
    _PHASE_HOOK = hook


@dataclass
class PhaseRecord:
    """One worker's timing of one benchmark phase."""

    name: str
    worker_id: int
    start: float
    end: float
    ops: int = 0
    nbytes: int = 0
    retries: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class PhaseRecorder:
    """Collects phase timings inside one worker role body. ::

        rec = PhaseRecorder(ctx.env, ctx.role_id)
        rec.start("page_upload")
        ... storage ops, counting via rec.add_op(nbytes) ...
        rec.stop()
    """

    def __init__(self, env, worker_id: int) -> None:
        self.env = env
        self.worker_id = worker_id
        self.records: List[PhaseRecord] = []
        self._open: Optional[PhaseRecord] = None

    def start(self, name: str) -> None:
        if self._open is not None:
            raise RuntimeError(
                f"phase {self._open.name!r} still open; stop it first"
            )
        self._open = PhaseRecord(
            name=name, worker_id=self.worker_id,
            start=self.env.now, end=self.env.now,
        )
        if _PHASE_HOOK is not None:
            _PHASE_HOOK("start", name)

    def add_op(self, nbytes: int = 0, ops: int = 1) -> None:
        if self._open is None:
            raise RuntimeError("no phase open")
        self._open.ops += ops
        self._open.nbytes += nbytes

    def add_retry(self) -> None:
        if self._open is None:
            raise RuntimeError("no phase open")
        self._open.retries += 1

    def stop(self) -> PhaseRecord:
        if self._open is None:
            raise RuntimeError("no phase open")
        self._open.end = self.env.now
        record, self._open = self._open, None
        self.records.append(record)
        if _PHASE_HOOK is not None:
            _PHASE_HOOK("stop", record.name)
        return record

    def record_span(self, name: str, duration: float, *, ops: int = 0,
                    nbytes: int = 0, retries: int = 0) -> PhaseRecord:
        """Record a pre-measured span ending now (for accumulated timings,
        e.g. Algorithm 4's communication-time-only measurements)."""
        if duration < 0:
            raise ValueError("duration must be >= 0")
        end = self.env.now
        record = PhaseRecord(name=name, worker_id=self.worker_id,
                             start=end - duration, end=end, ops=ops,
                             nbytes=nbytes, retries=retries)
        self.records.append(record)
        if _PHASE_HOOK is not None:
            # Post-hoc phases never had a live window; observers that need
            # one (span attribution) ignore this event kind.
            _PHASE_HOOK("span", name)
        return record


@dataclass
class PhaseStats:
    """Aggregate of one phase across all workers."""

    name: str
    workers: int
    #: max(end) - min(start): the parallel duration of the phase.
    wall_time: float
    #: Mean of per-worker durations (what the paper's time plots show).
    mean_worker_time: float
    max_worker_time: float
    total_ops: int
    total_bytes: int
    total_retries: int

    @property
    def throughput_bytes_per_s(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.total_bytes / self.wall_time

    @property
    def throughput_mb_per_s(self) -> float:
        return self.throughput_bytes_per_s / MB

    @property
    def ops_per_s(self) -> float:
        if self.wall_time <= 0:
            return 0.0
        return self.total_ops / self.wall_time

    @property
    def mean_op_time(self) -> float:
        """Per-operation time: total worker time / total operations.

        Matches the paper's Fig 9 definition: "the division of total time
        taken by all the worker roles to finish that operation, and the
        number of workers" (normalized per operation here).
        """
        if self.total_ops == 0:
            return 0.0
        return self.mean_worker_time * self.workers / self.total_ops


class BenchResult:
    """All phase timings of one benchmark run at one worker count."""

    def __init__(self, workers: int, recorders: Sequence[PhaseRecorder],
                 *, label: str = "", trace=None) -> None:
        self.workers = workers
        self.label = label
        #: The run's :class:`repro.observability.Tracer` when tracing was
        #: enabled (``RunConfig.trace``), else None.
        self.trace = trace
        self.records: List[PhaseRecord] = []
        for recorder in recorders:
            self.records.extend(recorder.records)
        self._by_phase: Dict[str, List[PhaseRecord]] = {}
        for record in self.records:
            self._by_phase.setdefault(record.name, []).append(record)

    @classmethod
    def from_records(cls, workers: int, records: Sequence[PhaseRecord],
                     *, label: str = "") -> "BenchResult":
        """Rebuild a result from flat phase records (checkpoint restore).

        The live ``trace`` object is not reconstructible from records, so
        restored results carry ``trace=None``.
        """
        result = cls(workers, (), label=label)
        result.records = list(records)
        for record in result.records:
            result._by_phase.setdefault(record.name, []).append(record)
        return result

    def phase_names(self) -> List[str]:
        return list(self._by_phase)

    def has_phase(self, name: str) -> bool:
        return name in self._by_phase

    def phase(self, name: str) -> PhaseStats:
        """Aggregate one phase across workers *and repeats*.

        A benchmark repeat produces one record per worker per phase, so the
        k-th record a worker holds for a phase belongs to repeat k.  Wall
        time is summed per repeat (``max end - min start`` within the
        repeat); a single max-min over all records would silently include
        the other phases and barrier waits between repeats.
        """
        try:
            records = self._by_phase[name]
        except KeyError:
            raise KeyError(
                f"phase {name!r} not recorded; have {sorted(self._by_phase)}"
            ) from None
        # Group into repeats by per-worker occurrence order.
        rounds: Dict[int, List[PhaseRecord]] = {}
        seen: Dict[int, int] = {}
        for record in records:
            k = seen.get(record.worker_id, 0)
            seen[record.worker_id] = k + 1
            rounds.setdefault(k, []).append(record)
        wall_time = sum(
            max(r.end for r in batch) - min(r.start for r in batch)
            for batch in rounds.values()
        )
        # Per-worker time: total across repeats.
        per_worker: Dict[int, float] = {}
        for record in records:
            per_worker[record.worker_id] = (
                per_worker.get(record.worker_id, 0.0) + record.duration)
        worker_times = list(per_worker.values())
        return PhaseStats(
            name=name,
            workers=self.workers,
            wall_time=wall_time,
            mean_worker_time=sum(worker_times) / len(worker_times),
            max_worker_time=max(worker_times),
            total_ops=sum(r.ops for r in records),
            total_bytes=sum(r.nbytes for r in records),
            total_retries=sum(r.retries for r in records),
        )

    def all_stats(self) -> Dict[str, PhaseStats]:
        return {name: self.phase(name) for name in self._by_phase}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<BenchResult {self.label!r} workers={self.workers} "
                f"phases={sorted(self._by_phase)}>")
