"""AzureBench Queue storage benchmarks (paper Algorithms 3 & 4, Figs 6 & 7).

Two scenarios, exactly as Section IV.B describes:

* **Separate queue per worker** (Algorithm 3, Fig 6): each worker owns
  ``AzureBenchQueue + roleid``; 20,000 messages total are inserted, peeked,
  and gotten+deleted, for message sizes 4 KB → 64 KB (doubling).  The 64 KB
  rung carries 48 KB of payload — "48 KB (49152 Bytes to be precise) is the
  maximum usable size of an Azure queue message".

* **Single shared queue** (Algorithm 4, Fig 7): all workers hammer one
  queue with 32 KB messages, inserting think time between operations (1 s →
  5 s); the total number of transactions stays constant as workers scale,
  and per-round message counts keep the load under the 500 msg/s target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..compute.roles import RoleContext
from ..framework import QueueBarrier
from ..sim import retrying
from ..storage import KB
from ..storage.content import SyntheticContent
from .metrics import PhaseRecorder

__all__ = [
    "SeparateQueueBenchConfig",
    "separate_queue_bench_body",
    "SharedQueueBenchConfig",
    "shared_queue_bench_body",
    "phase_name",
    "OP_PUT",
    "OP_PEEK",
    "OP_GET",
]

OP_PUT = "put"
OP_PEEK = "peek"
OP_GET = "get"


def phase_name(op: str, size: int) -> str:
    """Phase key for one (operation, message size) cell, e.g. ``put_16384``."""
    return f"{op}_{size}"


def usable_payload(size: int, max_payload: int = 48 * KB) -> int:
    """Clamp the nominal message size to the 48 KB usable maximum."""
    return min(size, max_payload)


@dataclass(frozen=True)
class SeparateQueueBenchConfig:
    """Parameters of Algorithm 3.

    Paper values: ``total_messages=20_000``, sizes 4/8/16/32/64 KB.
    """

    queue_prefix: str = "azurebenchqueue"
    total_messages: int = 20_000
    message_sizes: Tuple[int, ...] = (4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB)
    barrier_queue: str = "azurebench-qsync"
    barrier_poll: float = 1.0
    seed: int = 777


def separate_queue_bench_body(config: SeparateQueueBenchConfig):
    """Build the worker body implementing Algorithm 3."""

    def body(ctx: RoleContext):
        env = ctx.env
        qc = ctx.account.queue_client()
        rec = PhaseRecorder(env, ctx.role_id)
        barrier = QueueBarrier(qc, config.barrier_queue, ctx.instance_count,
                               poll_interval=config.barrier_poll, env=env)
        yield from barrier.ensure_queue()

        # "QueueName := AzureBenchQueue + roleid"
        queue_name = f"{config.queue_prefix}{ctx.role_id}"
        yield from retrying(env, lambda: qc.create_queue(queue_name))
        per_worker = max(1, config.total_messages // ctx.instance_count)
        yield from barrier.wait()

        for size in config.message_sizes:
            payload_bytes = usable_payload(size)
            payload = SyntheticContent(payload_bytes, seed=config.seed)

            # -- PutMessage ---------------------------------------------------
            rec.start(phase_name(OP_PUT, size))
            for _ in range(per_worker):
                yield from retrying(env, lambda: qc.put_message(
                    queue_name, payload),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(payload_bytes)
            rec.stop()

            # -- PeekMessage ------------------------------------------------
            rec.start(phase_name(OP_PEEK, size))
            for _ in range(per_worker):
                yield from retrying(env, lambda: qc.peek_message(queue_name),
                                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(payload_bytes)
            rec.stop()

            # -- GetMessage + DeleteMessage (timed together, like the paper:
            # "the Get Message operation also includes deletion") ---------
            rec.start(phase_name(OP_GET, size))
            for _ in range(per_worker):
                msg = yield from retrying(env, lambda: qc.get_message(
                    queue_name, visibility_timeout=3600.0),
                    on_retry=lambda *_: rec.add_retry())
                if msg is not None:
                    yield from retrying(env, lambda m=msg: qc.delete_message(
                        queue_name, m.message_id, m.pop_receipt),
                        on_retry=lambda *_: rec.add_retry())
                rec.add_op(payload_bytes)
            rec.stop()

            yield from barrier.wait()

        yield from retrying(env, lambda: qc.delete_queue(queue_name))
        return rec

    return body


@dataclass(frozen=True)
class SharedQueueBenchConfig:
    """Parameters of Algorithm 4.

    Paper values: ``total_transactions=20_000`` per op type and think time,
    32 KB messages, think times 1-5 s, 500 messages per round across all
    workers (to respect the 500 msg/s queue target).
    """

    queue_name: str = "azurebenchqueue"
    message_size: int = 32 * KB
    total_transactions: int = 20_000
    round_messages: int = 500
    think_times: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
    barrier_queue: str = "azurebench-qsync"
    barrier_poll: float = 1.0
    seed: int = 888


def shared_phase_name(op: str, think_time: float) -> str:
    """Phase key for one (operation, think time) cell, e.g. ``get_think2``."""
    return f"{op}_think{int(think_time)}"


def shared_queue_bench_body(config: SharedQueueBenchConfig):
    """Build the worker body implementing Algorithm 4.

    Per think time: ``rounds = total_transactions / round_messages`` rounds;
    in each round every worker performs ``round_messages / workers`` of each
    operation with think-time pauses between operation groups.  Only
    communication time is recorded: "the reported time only includes the
    time spent in communication with the queue".
    """

    def body(ctx: RoleContext):
        env = ctx.env
        qc = ctx.account.queue_client()
        rec = PhaseRecorder(env, ctx.role_id)
        barrier = QueueBarrier(qc, config.barrier_queue, ctx.instance_count,
                               poll_interval=config.barrier_poll, env=env)
        yield from barrier.ensure_queue()
        yield from retrying(env, lambda: qc.create_queue(config.queue_name))

        payload_bytes = usable_payload(config.message_size)
        payload = SyntheticContent(payload_bytes, seed=config.seed)
        per_round = max(1, config.round_messages // ctx.instance_count)
        rounds = max(1, config.total_transactions // config.round_messages)
        yield from barrier.wait()

        for think_time in config.think_times:
            put_key = shared_phase_name(OP_PUT, think_time)
            peek_key = shared_phase_name(OP_PEEK, think_time)
            get_key = shared_phase_name(OP_GET, think_time)
            # Accumulate communication time across rounds by keeping one
            # recorder phase per op and subtracting think time: we simply
            # time each op group (thinks happen outside the recorded spans).
            put_time = peek_time = get_time = 0.0
            put_ops = peek_ops = get_ops = 0
            for _ in range(rounds):
                t0 = env.now
                for _ in range(per_round):
                    yield from retrying(env, lambda: qc.put_message(
                        config.queue_name, payload))
                    put_ops += 1
                put_time += env.now - t0
                yield env.timeout(think_time)

                t0 = env.now
                for _ in range(per_round):
                    yield from retrying(env, lambda: qc.peek_message(
                        config.queue_name))
                    peek_ops += 1
                peek_time += env.now - t0
                yield env.timeout(think_time)

                t0 = env.now
                for _ in range(per_round):
                    msg = yield from retrying(env, lambda: qc.get_message(
                        config.queue_name, visibility_timeout=3600.0))
                    if msg is not None:
                        yield from retrying(env, lambda m=msg: qc.delete_message(
                            config.queue_name, m.message_id, m.pop_receipt))
                    get_ops += 1
                get_time += env.now - t0
                yield env.timeout(think_time)

            # Store the accumulated communication times as synthetic phases.
            for key, t, ops in ((put_key, put_time, put_ops),
                                (peek_key, peek_time, peek_ops),
                                (get_key, get_time, get_ops)):
                rec.record_span(key, t, ops=ops, nbytes=ops * payload_bytes)
            yield from barrier.wait()

        if ctx.role_id == 0:
            yield from retrying(env, lambda: qc.delete_queue(
                config.queue_name))
        return rec

    return body
