"""Run an AzureBench worker body at a given scale and collect results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.calibration import DEFAULT_CALIBRATION, FabricCalibration
from ..compute import Deployment, SMALL, VMSize
from ..sim import SimStorageAccount
from ..simkit import Environment
from ..storage import LIMITS_2012, ServiceLimits
from .metrics import BenchResult, PhaseRecorder

__all__ = ["RunConfig", "run_bench", "sweep_workers"]


@dataclass(frozen=True)
class RunConfig:
    """Environment of one benchmark run."""

    workers: int = 4
    vm_size: VMSize = SMALL
    limits: ServiceLimits = LIMITS_2012
    calibration: FabricCalibration = DEFAULT_CALIBRATION
    seed: int = 0
    #: Enables the non-FIFO queue model (seeded); None keeps strict FIFO.
    fifo_jitter_seed: Optional[int] = None
    label: str = ""


def run_bench(body_factory: Callable[[], Callable], config: RunConfig) -> BenchResult:
    """Deploy ``config.workers`` instances of the body and run to completion.

    ``body_factory`` builds a fresh role body (bodies close over benchmark
    configs); each instance must return its :class:`PhaseRecorder`.
    """
    env = Environment()
    account = SimStorageAccount(
        env, limits=config.limits, calibration=config.calibration,
        seed=config.seed, fifo_jitter_seed=config.fifo_jitter_seed,
    )
    deployment = Deployment(
        env, account, body_factory(),
        instances=config.workers, vm_size=config.vm_size, name="azurebench",
    )
    recorders = deployment.run()
    bad = [r for r in recorders if not isinstance(r, PhaseRecorder)]
    if bad:
        raise RuntimeError(
            f"{len(bad)} worker(s) did not return a PhaseRecorder "
            f"(first: {bad[0]!r}); check the role body for failures"
        )
    return BenchResult(config.workers, recorders, label=config.label)


def sweep_workers(body_factory: Callable[[], Callable],
                  worker_counts: Sequence[int],
                  base_config: RunConfig = RunConfig()) -> Dict[int, BenchResult]:
    """Run the same benchmark at several scales (the paper's x-axis)."""
    results: Dict[int, BenchResult] = {}
    for workers in worker_counts:
        config = RunConfig(
            workers=workers,
            vm_size=base_config.vm_size,
            limits=base_config.limits,
            calibration=base_config.calibration,
            seed=base_config.seed,
            fifo_jitter_seed=base_config.fifo_jitter_seed,
            label=f"{base_config.label}@{workers}",
        )
        results[workers] = run_bench(body_factory, config)
    return results
