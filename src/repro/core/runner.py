"""Run an AzureBench worker body at a given scale and collect results."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence

from ..cluster.calibration import DEFAULT_CALIBRATION, FabricCalibration
from ..compute import SMALL, VMSize
from ..storage import LIMITS_2012, ServiceLimits
from .metrics import BenchResult

__all__ = ["RunConfig", "run_bench", "sweep_workers"]


@dataclass(frozen=True)
class RunConfig:
    """Environment of one benchmark run."""

    workers: int = 4
    vm_size: VMSize = SMALL
    limits: ServiceLimits = LIMITS_2012
    calibration: FabricCalibration = DEFAULT_CALIBRATION
    seed: int = 0
    #: Enables the non-FIFO queue model (seeded); None keeps strict FIFO.
    fifo_jitter_seed: Optional[int] = None
    label: str = ""
    #: Which backend runs the bodies: a name from
    #: :data:`repro.backend.BACKENDS` ("sim" / "emulator") or a
    #: :class:`repro.backend.Backend` instance.
    backend: object = "sim"
    #: Opt-in trace-level observability: the backend installs a
    #: :class:`repro.observability.Tracer` (one span per storage round
    #: trip, per-op latency histograms) and attaches it to the returned
    #: :class:`BenchResult` as ``result.trace``.  Tracing reads only the
    #: backend clock, so seeded sim runs stay bit-identical.
    trace: bool = False
    #: Optional hook called with the freshly built account before any
    #: worker runs (and before the tracer installs, so a fault plan set
    #: here is picked up for span attribution).  The chaos harness uses
    #: it to set fault plans, attach analytics, and install its
    #: operation-history audit.  The hook must not advance the clock or
    #: draw randomness if seeded reproducibility matters.
    instrument: Optional[Callable] = None
    #: Optional open-loop arrival spec (duck-typed
    #: :class:`repro.traffic.ArrivalSpec`; kept untyped to avoid a core →
    #: traffic import cycle).  When set, worker starts are staggered at
    #: the spec's seeded arrival instants instead of launching in lock
    #: step at t=0, turning any closed-loop figure body into an
    #: open-loop-admitted cohort on every backend.  ``None`` (default)
    #: leaves existing runs bit-identical.
    arrivals: Optional[object] = None


def run_bench(body_factory: Callable[[], Callable], config: RunConfig) -> BenchResult:
    """Deploy ``config.workers`` instances of the body and run to completion.

    ``body_factory`` builds a fresh role body (bodies close over benchmark
    configs); each instance must return its :class:`PhaseRecorder`.
    Dispatches through :func:`repro.backend.get_backend` on
    ``config.backend``.
    """
    # Imported here: repro.backend itself imports this package (it returns
    # BenchResults), so the dependency must resolve at call time.
    from ..backend import get_backend
    if config.arrivals is not None:
        body_factory = _staggered(body_factory, config)
    return get_backend(config.backend).run(body_factory, config)


def _staggered(body_factory: Callable[[], Callable],
               config: RunConfig) -> Callable[[], Callable]:
    """Wrap bodies so each role starts at its seeded arrival instant.

    The wrapper yields a plain timeout before delegating, which every
    backend understands (the DES directly; emulator/service through
    their timeout trampolines), so one wrapper covers all backends.
    """
    offsets = config.arrivals.build().take(config.workers)

    def factory():
        inner = body_factory()

        def staggered_body(ctx):
            delay = offsets[ctx.role_id % len(offsets)]
            if delay > 0:
                yield ctx.env.timeout(delay)
            result = yield from inner(ctx)
            return result
        return staggered_body
    return factory


def sweep_workers(body_factory: Callable[[], Callable],
                  worker_counts: Sequence[int],
                  base_config: RunConfig = RunConfig()) -> Dict[int, BenchResult]:
    """Run the same benchmark at several scales (the paper's x-axis)."""
    results: Dict[int, BenchResult] = {}
    for workers in worker_counts:
        config = replace(
            base_config, workers=workers,
            label=f"{base_config.label}@{workers}",
        )
        results[workers] = run_bench(body_factory, config)
    return results
