"""Run an AzureBench worker body at a given scale and collect results."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence

from ..cluster.calibration import DEFAULT_CALIBRATION, FabricCalibration
from ..compute import SMALL, VMSize
from ..storage import LIMITS_2012, ServiceLimits
from .metrics import BenchResult

__all__ = ["RunConfig", "run_bench", "sweep_workers"]


@dataclass(frozen=True)
class RunConfig:
    """Environment of one benchmark run."""

    workers: int = 4
    vm_size: VMSize = SMALL
    limits: ServiceLimits = LIMITS_2012
    calibration: FabricCalibration = DEFAULT_CALIBRATION
    seed: int = 0
    #: Enables the non-FIFO queue model (seeded); None keeps strict FIFO.
    fifo_jitter_seed: Optional[int] = None
    label: str = ""
    #: Which backend runs the bodies: a name from
    #: :data:`repro.backend.BACKENDS` ("sim" / "emulator") or a
    #: :class:`repro.backend.Backend` instance.
    backend: object = "sim"
    #: Opt-in trace-level observability: the backend installs a
    #: :class:`repro.observability.Tracer` (one span per storage round
    #: trip, per-op latency histograms) and attaches it to the returned
    #: :class:`BenchResult` as ``result.trace``.  Tracing reads only the
    #: backend clock, so seeded sim runs stay bit-identical.
    trace: bool = False
    #: Optional hook called with the freshly built account before any
    #: worker runs (and before the tracer installs, so a fault plan set
    #: here is picked up for span attribution).  The chaos harness uses
    #: it to set fault plans, attach analytics, and install its
    #: operation-history audit.  The hook must not advance the clock or
    #: draw randomness if seeded reproducibility matters.
    instrument: Optional[Callable] = None


def run_bench(body_factory: Callable[[], Callable], config: RunConfig) -> BenchResult:
    """Deploy ``config.workers`` instances of the body and run to completion.

    ``body_factory`` builds a fresh role body (bodies close over benchmark
    configs); each instance must return its :class:`PhaseRecorder`.
    Dispatches through :func:`repro.backend.get_backend` on
    ``config.backend``.
    """
    # Imported here: repro.backend itself imports this package (it returns
    # BenchResults), so the dependency must resolve at call time.
    from ..backend import get_backend
    return get_backend(config.backend).run(body_factory, config)


def sweep_workers(body_factory: Callable[[], Callable],
                  worker_counts: Sequence[int],
                  base_config: RunConfig = RunConfig()) -> Dict[int, BenchResult]:
    """Run the same benchmark at several scales (the paper's x-axis)."""
    results: Dict[int, BenchResult] = {}
    for workers in worker_counts:
        config = replace(
            base_config, workers=workers,
            label=f"{base_config.label}@{workers}",
        )
        results[workers] = run_bench(body_factory, config)
    return results
