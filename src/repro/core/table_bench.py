"""AzureBench Table storage benchmark (paper Algorithm 5, Figure 8).

Each worker role owns one partition of the shared ``AzureBenchTable``
("Each worker role instance inserts 500 entities in the table, all of which
are stored in a separate partition in the same table"), and runs four timed
phases per entity size:

1. **Insert** (``AddRow``) — ``entity_count`` entities, row keys 1..N;
2. **Query** — point-queries the same entities back;
3. **Update** — unconditionally replaces each entity (``*`` wildcard ETag);
4. **Delete** — removes them all.

Repeated for entity sizes 4 KB → 64 KB (doubling).  ServerBusy exceptions
sleep one second and retry, exactly as the paper handled hitting the
500 entities/s/partition target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..compute.roles import RoleContext
from ..framework import QueueBarrier
from ..sim import retrying
from ..storage import KB
from ..storage.content import SyntheticContent
from .metrics import PhaseRecorder

__all__ = [
    "TableBenchConfig",
    "table_bench_body",
    "table_phase_name",
    "OP_INSERT",
    "OP_QUERY",
    "OP_UPDATE",
    "OP_DELETE",
]

OP_INSERT = "insert"
OP_QUERY = "query"
OP_UPDATE = "update"
OP_DELETE = "delete"


def table_phase_name(op: str, size: int) -> str:
    """Phase key for one (operation, entity size) cell, e.g. ``update_4096``."""
    return f"{op}_{size}"


@dataclass(frozen=True)
class TableBenchConfig:
    """Parameters of Algorithm 5.

    Paper values: ``entity_count=500`` ("we tried with only 500 transactions
    and everything worked without any exception"; 1000 hit ServerBusy),
    entity sizes 4/8/16/32/64 KB, one data column per row.
    """

    table_name: str = "AzureBenchTable"
    entity_count: int = 500
    entity_sizes: Tuple[int, ...] = (4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB)
    barrier_queue: str = "azurebench-tsync"
    barrier_poll: float = 1.0
    seed: int = 4242
    #: "per-worker" (the paper: one partition per role instance) or
    #: "shared" (every worker writes the same partition — the ablation
    #: showing why "a good partitioning of a table can significantly boost
    #: the performance").
    partition_strategy: str = "per-worker"


def table_bench_body(config: TableBenchConfig):
    """Build the worker body implementing Algorithm 5."""

    def body(ctx: RoleContext):
        env = ctx.env
        tc = ctx.account.table_client()
        qc = ctx.account.queue_client()
        rec = PhaseRecorder(env, ctx.role_id)
        barrier = QueueBarrier(qc, config.barrier_queue, ctx.instance_count,
                               poll_interval=config.barrier_poll, env=env)
        yield from barrier.ensure_queue()

        yield from retrying(env, lambda: tc.create_table(config.table_name))
        if config.partition_strategy == "per-worker":
            # "Entity.partitionKey = roleId" — one partition per worker.
            partition = f"worker-{ctx.role_id}"
        elif config.partition_strategy == "shared":
            partition = "shared"
        else:
            raise ValueError(
                f"unknown partition_strategy {config.partition_strategy!r}")
        yield from barrier.wait()

        for size in config.entity_sizes:
            payload = SyntheticContent(size, seed=config.seed)
            fresh = SyntheticContent(size, seed=config.seed + 1)

            # -- Insert (AddRow) --------------------------------------------
            rec.start(table_phase_name(OP_INSERT, size))
            for row in range(config.entity_count):
                rk = f"{ctx.role_id}-{row:06d}"
                yield from retrying(env, lambda r=rk: tc.insert(
                    config.table_name, partition, r, {"Data": payload}),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(size)
            rec.stop()

            # -- Query ---------------------------------------------------------
            rec.start(table_phase_name(OP_QUERY, size))
            for row in range(config.entity_count):
                rk = f"{ctx.role_id}-{row:06d}"
                yield from retrying(env, lambda r=rk: tc.get(
                    config.table_name, partition, r),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(size)
            rec.stop()

            # -- Update (unconditional, wildcard ETag) ------------------------
            rec.start(table_phase_name(OP_UPDATE, size))
            for row in range(config.entity_count):
                rk = f"{ctx.role_id}-{row:06d}"
                yield from retrying(env, lambda r=rk: tc.update(
                    config.table_name, partition, r, {"Data": fresh},
                    etag="*"),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(size)
            rec.stop()

            # -- Delete ------------------------------------------------------
            rec.start(table_phase_name(OP_DELETE, size))
            for row in range(config.entity_count):
                rk = f"{ctx.role_id}-{row:06d}"
                yield from retrying(env, lambda r=rk: tc.delete(
                    config.table_name, partition, r),
                    on_retry=lambda *_: rec.add_retry())
                rec.add_op(size)
            rec.stop()

            yield from barrier.wait()

        return rec

    return body
