"""Thread-safe local storage emulator (the repo's Azurite equivalent)."""

from .clients import (
    EmulatorAccount,
    EmulatorBlobClient,
    EmulatorCacheClient,
    EmulatorQueueClient,
    EmulatorTableClient,
)

__all__ = [
    "EmulatorAccount",
    "EmulatorBlobClient",
    "EmulatorQueueClient",
    "EmulatorTableClient",
    "EmulatorCacheClient",
]
