"""A thread-safe, in-process Azure storage emulator (Azurite-equivalent).

Wraps the same data-plane state machines the simulator uses with a reentrant
lock and a real (or injectable) clock, so multi-threaded application code —
like the bag-of-tasks framework driven by ``threading`` workers — runs
against semantics identical to the simulation.

The client APIs mirror :mod:`repro.sim.clients` method-for-method, minus the
``yield from`` (these are plain blocking calls). ::

    account = EmulatorAccount()
    queue = account.queue_client()
    queue.create_queue("tasks")
    queue.put_message("tasks", b"hello")
    msg = queue.get_message("tasks")
    queue.delete_message("tasks", msg.message_id, msg.pop_receipt)
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping, Optional, Sequence

from ..storage import (
    Clock,
    LIMITS_2012,
    ServiceLimits,
    StorageAccountState,
    WallClock,
    as_content,
)
from ..storage.cache import CacheServiceState
from ..storage.table import BatchOperation

__all__ = [
    "EmulatorAccount",
    "EmulatorBlobClient",
    "EmulatorQueueClient",
    "EmulatorTableClient",
    "EmulatorCacheClient",
]


class EmulatorAccount:
    """One emulated storage account shared by any number of threads."""

    def __init__(self, name: str = "devstoreaccount1", *,
                 limits: ServiceLimits = LIMITS_2012,
                 clock: Optional[Clock] = None,
                 latency: float = 0.0,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        self.state = StorageAccountState(
            name, clock if clock is not None else WallClock(), limits,
            fifo_jitter_seed=fifo_jitter_seed,
        )
        self._lock = threading.RLock()
        #: The co-located caching service (paper II.B).
        self.cache_state = CacheServiceState(self.state.clock)
        #: Artificial per-operation latency in seconds (0 disables); useful
        #: to make race conditions and contention observable in examples.
        self.latency = latency

    def _op(self):
        return self._lock

    def _maybe_sleep(self) -> None:
        if self.latency > 0:
            time.sleep(self.latency)

    def blob_client(self) -> "EmulatorBlobClient":
        return EmulatorBlobClient(self)

    def queue_client(self) -> "EmulatorQueueClient":
        return EmulatorQueueClient(self)

    def table_client(self) -> "EmulatorTableClient":
        return EmulatorTableClient(self)

    def cache_client(self) -> "EmulatorCacheClient":
        return EmulatorCacheClient(self)


class _EmulatorClientBase:
    def __init__(self, account: EmulatorAccount) -> None:
        self.account = account
        self.state = account.state


class EmulatorBlobClient(_EmulatorClientBase):
    """Blocking blob client over the emulator."""

    def create_container(self, name: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.create_container(name)

    def delete_container(self, name: str) -> None:
        self.account._maybe_sleep()
        with self.account._op():
            self.state.blobs.delete_container(name)

    def put_block(self, container: str, blob: str, block_id: str, data) -> None:
        content = as_content(data)
        self.account._maybe_sleep()
        with self.account._op():
            c = self.state.blobs.get_container(container)
            if blob not in c:
                c.create_block_blob(blob)
            c.get_block_blob(blob).put_block(block_id, content)

    def put_block_list(self, container: str, blob: str,
                       block_ids: Sequence[str], *, merge: bool = False) -> None:
        self.account._maybe_sleep()
        with self.account._op():
            c = self.state.blobs.get_container(container)
            c.get_block_blob(blob).put_block_list(block_ids, merge=merge)

    def upload_blob(self, container: str, blob: str, data) -> None:
        content = as_content(data)
        self.account._maybe_sleep()
        with self.account._op():
            c = self.state.blobs.get_container(container)
            if blob not in c:
                c.create_block_blob(blob)
            c.get_block_blob(blob).upload(content)

    def get_block(self, container: str, blob: str, index: int):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .get_block_blob(blob).get_block(index)

    def download_block_blob(self, container: str, blob: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .get_block_blob(blob).download()

    def block_count(self, container: str, blob: str) -> int:
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .get_block_blob(blob).block_count

    def create_page_blob(self, container: str, blob: str, max_size: int):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .create_page_blob(blob, max_size)

    def put_page(self, container: str, blob: str, offset: int, data) -> None:
        content = as_content(data)
        self.account._maybe_sleep()
        with self.account._op():
            self.state.blobs.get_container(container) \
                .get_page_blob(blob).put_pages(offset, content)

    def get_page(self, container: str, blob: str, offset: int, length: int):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .get_page_blob(blob).read(offset, length)

    def download_page_blob(self, container: str, blob: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .get_page_blob(blob).read_all()

    def delete_blob(self, container: str, blob: str, *,
                    lease_id=None, delete_snapshots: bool = False) -> None:
        self.account._maybe_sleep()
        with self.account._op():
            self.state.blobs.get_container(container).delete_blob(
                blob, lease_id=lease_id, delete_snapshots=delete_snapshots)

    def acquire_lease(self, container: str, blob: str) -> str:
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .get_blob(blob).acquire_lease()

    def renew_lease(self, container: str, blob: str, lease_id: str) -> None:
        self.account._maybe_sleep()
        with self.account._op():
            self.state.blobs.get_container(container) \
                .get_blob(blob).renew_lease(lease_id)

    def release_lease(self, container: str, blob: str, lease_id: str) -> None:
        self.account._maybe_sleep()
        with self.account._op():
            self.state.blobs.get_container(container) \
                .get_blob(blob).release_lease(lease_id)

    def snapshot_blob(self, container: str, blob: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .get_blob(blob).snapshot()

    def download_snapshot(self, container: str, blob: str, snapshot_id: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.blobs.get_container(container) \
                .get_blob(blob).get_snapshot(snapshot_id).download()

    def list_blobs(self, container: str, prefix: str = ""):
        with self.account._op():
            return self.state.blobs.get_container(container).list_blobs(prefix)


class EmulatorQueueClient(_EmulatorClientBase):
    """Blocking queue client over the emulator."""

    def create_queue(self, name: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.queues.create_queue(name)

    def delete_queue(self, name: str) -> None:
        self.account._maybe_sleep()
        with self.account._op():
            self.state.queues.delete_queue(name)

    def put_message(self, queue: str, data, *, ttl: Optional[float] = None,
                    visibility_delay: float = 0.0):
        content = as_content(data)
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.queues.get_queue(queue).put_message(
                content, ttl=ttl, visibility_delay=visibility_delay)

    def get_message(self, queue: str, *,
                    visibility_timeout: Optional[float] = None):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.queues.get_queue(queue).get_message(
                visibility_timeout=visibility_timeout)

    def get_messages(self, queue: str, n: int = 1, *,
                     visibility_timeout: Optional[float] = None):
        """Batch ``GetMessages``: up to 32 messages in one call."""
        if not 1 <= n <= 32:
            raise ValueError("n must be in 1..32 (2012 API limit)")
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.queues.get_queue(queue).get_messages(
                n, visibility_timeout=visibility_timeout)

    def peek_message(self, queue: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.queues.get_queue(queue).peek_message()

    def delete_message(self, queue: str, message_id: str,
                       pop_receipt: str) -> None:
        self.account._maybe_sleep()
        with self.account._op():
            self.state.queues.get_queue(queue).delete_message(
                message_id, pop_receipt)

    def update_message(self, queue: str, message_id: str, pop_receipt: str,
                       data=None, *, visibility_timeout: float = 0.0):
        content = as_content(data) if data is not None else None
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.queues.get_queue(queue).update_message(
                message_id, pop_receipt, content,
                visibility_timeout=visibility_timeout)

    def get_message_count(self, queue: str) -> int:
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.queues.get_queue(queue).approximate_message_count()

    def list_queues(self, prefix: str = ""):
        with self.account._op():
            return self.state.queues.list_queues(prefix)


class EmulatorTableClient(_EmulatorClientBase):
    """Blocking table client over the emulator."""

    def create_table(self, name: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.create_table(name)

    def delete_table(self, name: str) -> None:
        self.account._maybe_sleep()
        with self.account._op():
            self.state.tables.delete_table(name)

    def insert(self, table: str, partition_key: str, row_key: str,
               properties: Mapping[str, Any]):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).insert(
                partition_key, row_key, properties)

    def get(self, table: str, partition_key: str, row_key: str):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).get(
                partition_key, row_key)

    def query(self, table: str, filter=None, *, top: Optional[int] = None,
              continuation=None, select=None):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).query(
                filter, top=top, continuation=continuation, select=select)

    def query_partition(self, table: str, partition_key: str, filter=None, *,
                        select=None):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).query_partition(
                partition_key, filter, select=select)

    def insert_or_replace(self, table: str, partition_key: str, row_key: str,
                          properties: Mapping[str, Any]):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).insert_or_replace(
                partition_key, row_key, properties)

    def insert_or_merge(self, table: str, partition_key: str, row_key: str,
                        properties: Mapping[str, Any]):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).insert_or_merge(
                partition_key, row_key, properties)

    def update(self, table: str, partition_key: str, row_key: str,
               properties: Mapping[str, Any], *, etag: Optional[str] = "*"):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).update(
                partition_key, row_key, properties, etag=etag)

    def merge(self, table: str, partition_key: str, row_key: str,
              properties: Mapping[str, Any], *, etag: Optional[str] = "*"):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).merge(
                partition_key, row_key, properties, etag=etag)

    def delete(self, table: str, partition_key: str, row_key: str, *,
               etag: Optional[str] = "*") -> None:
        self.account._maybe_sleep()
        with self.account._op():
            self.state.tables.get_table(table).delete(
                partition_key, row_key, etag=etag)

    def execute_batch(self, table: str, operations: Sequence[BatchOperation]):
        self.account._maybe_sleep()
        with self.account._op():
            return self.state.tables.get_table(table).execute_batch(operations)


class EmulatorCacheClient(_EmulatorClientBase):
    """Blocking caching-service client over the emulator."""

    def create_cache(self, name: str, *, capacity_bytes: int = None,
                     default_ttl: float = None):
        self.account._maybe_sleep()
        with self.account._op():
            kwargs = {}
            if capacity_bytes is not None:
                kwargs["capacity_bytes"] = capacity_bytes
            if default_ttl is not None:
                kwargs["default_ttl"] = default_ttl
            return self.account.cache_state.create_cache(name, **kwargs)

    def put(self, cache: str, key: str, value, *, ttl: float = None,
            sliding: bool = False):
        content = as_content(value)
        self.account._maybe_sleep()
        with self.account._op():
            return self.account.cache_state.get_cache(cache).put(
                key, content, ttl=ttl, sliding=sliding)

    def get(self, cache: str, key: str):
        self.account._maybe_sleep()
        with self.account._op():
            item = self.account.cache_state.get_cache(cache).get(key)
            return item.value if item is not None else None

    def remove(self, cache: str, key: str) -> bool:
        self.account._maybe_sleep()
        with self.account._op():
            return self.account.cache_state.get_cache(cache).remove(key)
