"""A thread-safe, in-process Azure storage emulator (Azurite-equivalent).

Wraps the same data-plane state machines the simulator uses with a reentrant
lock and a real (or injectable) clock, so multi-threaded application code —
like the bag-of-tasks framework driven by ``threading`` workers — runs
against semantics identical to the simulation.

The client APIs mirror :mod:`repro.sim.clients` method-for-method, minus the
``yield from`` (these are plain blocking calls). ::

    account = EmulatorAccount()
    queue = account.queue_client()
    queue.create_queue("tasks")
    queue.put_message("tasks", b"hello")
    msg = queue.get_message("tasks")
    queue.delete_message("tasks", msg.message_id, msg.pop_receipt)

The method bodies are not written here: like the sim clients, every class
below is derived from the shared operation registry
(:mod:`repro.pipeline.registry`), bound to the account's
:class:`~repro.pipeline.executors.BlockingExecutor`.  Because every call
crosses the same interceptor pipeline, the emulator supports fault
injection (:meth:`EmulatorAccount.set_fault_plan`), Storage Analytics
(:func:`repro.storage.analytics.attach_analytics`), and — opt-in —
enforcement of the published scalability targets, with zero sim-only code.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..pipeline import (
    BlockingExecutor,
    FaultInterceptor,
    OpCall,
    Pipeline,
    ThrottleInterceptor,
    blocking_method,
    derive_client_class,
    locked_local_method,
)
from ..storage import (
    Clock,
    LIMITS_2012,
    ServiceLimits,
    StorageAccountState,
    WallClock,
)
from ..storage.cache import CacheServiceState

__all__ = [
    "EmulatorAccount",
    "EmulatorBlobClient",
    "EmulatorQueueClient",
    "EmulatorTableClient",
    "EmulatorCacheClient",
]


class EmulatorAccount:
    """One emulated storage account shared by any number of threads."""

    def __init__(self, name: str = "devstoreaccount1", *,
                 limits: ServiceLimits = LIMITS_2012,
                 clock: Optional[Clock] = None,
                 latency: float = 0.0,
                 fifo_jitter_seed: Optional[int] = None,
                 enforce_targets: bool = False) -> None:
        self.state = StorageAccountState(
            name, clock if clock is not None else WallClock(), limits,
            fifo_jitter_seed=fifo_jitter_seed,
        )
        self._lock = threading.RLock()
        #: The co-located caching service (paper II.B).
        self.cache_state = CacheServiceState(self.state.clock)
        #: Artificial per-operation latency in seconds (0 disables); useful
        #: to make race conditions and contention observable in examples.
        self.latency = latency
        self.limits = limits
        #: Fault schedule consulted on every operation (None = no faults);
        #: windows are evaluated against this account's clock.
        self.fault_plan = None
        #: ServerBusy rejections served (injected faults + throttles).
        self.server_busy_count = 0
        stages = [
            FaultInterceptor(lambda: self.fault_plan, cluster=None,
                             on_busy=self._note_busy),
        ]
        if enforce_targets:
            # Opt-in: the framework's retry loop sleeps on real wall-clock
            # seconds, so target enforcement is off unless asked for.
            stages.append(ThrottleInterceptor(limits, on_busy=self._note_busy))
        self.pipeline = Pipeline(stages)
        self.executor = BlockingExecutor(self)
        self._op_call = OpCall(
            self.state, self.cache_state,
            now_fn=self.state.clock.now,
            plan_fn=lambda: self.fault_plan,
        )

    def set_fault_plan(self, plan) -> None:
        """Install (or clear, with ``None``) a :class:`FaultPlan`.

        Fault windows fire on this account's clock — wall-clock seconds by
        default, or a :class:`~repro.storage.clock.ManualClock` in tests.
        """
        self.fault_plan = plan

    def _note_busy(self) -> None:
        self.server_busy_count += 1

    def _op(self):
        return self._lock

    def _maybe_sleep(self) -> None:
        if self.latency > 0:
            time.sleep(self.latency)

    def blob_client(self) -> "EmulatorBlobClient":
        return EmulatorBlobClient(self)

    def queue_client(self) -> "EmulatorQueueClient":
        return EmulatorQueueClient(self)

    def table_client(self) -> "EmulatorTableClient":
        return EmulatorTableClient(self)

    def cache_client(self) -> "EmulatorCacheClient":
        return EmulatorCacheClient(self)


class _EmulatorClientBase:
    """Plumbing every derived emulator client shares."""

    def __init__(self, account: EmulatorAccount) -> None:
        self.account = account
        self.state = account.state
        self._executor = account.executor
        self._call = account._op_call


EmulatorBlobClient = derive_client_class(
    "EmulatorBlobClient", "blob", _EmulatorClientBase,
    method_factory=blocking_method, local_factory=locked_local_method,
    doc="Blocking blob client over the emulator (registry-derived).",
)

EmulatorQueueClient = derive_client_class(
    "EmulatorQueueClient", "queue", _EmulatorClientBase,
    method_factory=blocking_method, local_factory=locked_local_method,
    doc="Blocking queue client over the emulator (registry-derived).",
)

EmulatorTableClient = derive_client_class(
    "EmulatorTableClient", "table", _EmulatorClientBase,
    method_factory=blocking_method, local_factory=locked_local_method,
    doc="Blocking table client over the emulator (registry-derived).",
)

EmulatorCacheClient = derive_client_class(
    "EmulatorCacheClient", "cache", _EmulatorClientBase,
    method_factory=blocking_method, local_factory=locked_local_method,
    doc="Blocking cache client over the emulator (registry-derived).",
)
