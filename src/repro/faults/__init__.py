"""Deterministic fault injection for the simulated storage fabric.

The package has two layers:

* :mod:`repro.faults.spec` / :mod:`repro.faults.plan` — the engine: a
  :class:`FaultPlan` of seeded, schedulable :class:`FaultSpec`\\ s that
  :class:`repro.cluster.model.StorageCluster` consults on every
  operation.  This module intentionally does **not** import the cluster
  (the cluster imports us), so only the engine is re-exported here.
* :mod:`repro.faults.profiles` — named, ready-made fault scenarios plus
  a bag-of-tasks run harness.  Import it explicitly
  (``from repro.faults.profiles import PROFILES``); it pulls in the
  framework and sim layers.
"""

from .plan import FaultPlan
from .spec import DN_KINDS, GEO_KINDS, FaultEvent, FaultKind, FaultSpec

__all__ = ["FaultPlan", "FaultSpec", "FaultKind", "FaultEvent",
           "DN_KINDS", "GEO_KINDS"]
