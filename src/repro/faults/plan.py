"""The deterministic fault-injection engine.

A :class:`FaultPlan` owns a set of :class:`~repro.faults.spec.FaultSpec`
schedules plus one seeded RNG.  Both backends consult the plan on every
operation through the shared pipeline's
:class:`~repro.pipeline.interceptors.FaultInterceptor` (``cluster`` is the
:class:`~repro.cluster.model.StorageCluster` on the sim backend and
``None`` on the emulator, which has no placement model), and on the queue
data plane (:meth:`drop_message` / :meth:`duplicate_delivery`, wired into
the registry's queue operation bodies).

Determinism: the simulation itself is deterministic, so the sequence of
plan queries — and therefore the sequence of RNG draws — is identical
between runs with the same plan, seed, and workload.  Every injected
fault is appended to :attr:`FaultPlan.events`, giving a reproducible
trace that tests can diff byte-for-byte.  Probability-1 specs draw no
randomness at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..storage.errors import (
    OperationTimedOutError,
    RegionDownError,
    ServerBusyError,
    TransientServerError,
)
from .spec import DN_KINDS, FaultEvent, FaultKind, FaultSpec

__all__ = ["FaultPlan"]


class FaultPlan:
    """A seeded, reproducible schedule of fabric faults."""

    def __init__(self, specs: Iterable[FaultSpec] = (), *, seed: int = 0) -> None:
        self.specs: List[FaultSpec] = []
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        #: Reproducible trace of every injected fault occurrence.
        self.events: List[FaultEvent] = []
        #: Occurrence counts per fault kind.
        self.counts: Dict[FaultKind, int] = {}
        #: PARTITION_CRASH specs whose failover (reassignment) completed.
        self._reassigned: Set[int] = set()
        #: Synchronous observers of injected faults, ``listener(event)``.
        #: The tracing layer subscribes here to attribute injected
        #: anomalies on the span they hit (``Span.fault``).
        self._listeners: List[callable] = []
        for spec in specs:
            self.add(spec)

    # -- construction ------------------------------------------------------
    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append one spec (fluent)."""
        if not isinstance(spec, FaultSpec):
            raise TypeError(f"expected FaultSpec, got {spec!r}")
        self.specs.append(spec)
        return self

    def __len__(self) -> int:
        return len(self.specs)

    # -- internals ---------------------------------------------------------
    def _sample(self, probability: float) -> bool:
        """Bernoulli draw; degenerate probabilities skip the RNG entirely
        so adding a certain fault never perturbs another spec's draws."""
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return float(self._rng.random()) < probability

    def _record(self, kind: FaultKind, service: str, partition: str,
                now: float) -> None:
        event = FaultEvent(now, kind, str(service), partition)
        self.events.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener) -> None:
        """Register ``listener(event)``, called at each injection (idempotent).

        Listeners observe; they must not raise or draw randomness — the
        plan's event sequence is part of the determinism contract.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def trace(self) -> List[tuple]:
        """The event trace as plain tuples (stable, diffable)."""
        return [e.as_tuple() for e in self.events]

    def record_external(self, kind: FaultKind, service: str, partition: str,
                        now: float) -> None:
        """Record a fault injected by a cooperating layer.

        The geo stack (:mod:`repro.geo`) strips region-scale specs out of
        the plan and injects them itself — through the routing interceptor
        and the replication shipper — but reports every occurrence back
        here so the reproducible trace and the listeners (span/fault
        attribution) see one unified stream.
        """
        self._record(kind, service, partition, now)

    # -- fabric hook -------------------------------------------------------
    def pre_execute(self, op, now: float, cluster) -> Tuple[float, Optional[FaultSpec]]:
        """Consult the plan for one operation, before any time is charged.

        Raises the scheduled error for OUTAGE / THROTTLE / TRANSIENT_ERROR /
        PARTITION_CRASH faults.  Returns ``(latency_factor, timeout_spec)``:
        the multiplier active LATENCY windows impose, and the TIMEOUT spec
        that fired (the caller burns ``timeout_after`` seconds and raises),
        or ``None``.
        """
        service = op.service.value
        factor = 1.0
        timeout_spec: Optional[FaultSpec] = None
        for index, spec in enumerate(self.specs):
            kind = spec.kind
            if kind is FaultKind.PARTITION_CRASH:
                self._check_crash(index, spec, op, now, cluster)
                continue
            if kind is FaultKind.REPLICATION_STALL:
                # Interpreted by the geo replication shipper, never by the
                # per-op data plane (a stall degrades freshness, not ops).
                continue
            if kind in DN_KINDS:
                # Interpreted by the service tier's chaos campaign
                # (crash/slow a whole data node); a node death is not an
                # op-level event, so the per-op engine leaves it alone.
                continue
            if not spec.active(now) or not spec.matches(service, op.partition):
                continue
            if kind is FaultKind.REGION_OUTAGE:
                # On a geo account this spec is stripped out and handled by
                # the routing interceptor; reaching it here means the
                # account is single-region, where a region outage is a
                # total outage of every service.
                if self._sample(spec.probability):
                    self._record(kind, service, op.partition, now)
                    raise RegionDownError(
                        f"{service} unavailable (injected region outage)",
                        retry_after=self._retry_after(spec, cluster),
                    )
            elif kind is FaultKind.OUTAGE:
                if self._sample(spec.probability):
                    self._record(kind, service, op.partition, now)
                    raise ServerBusyError(
                        f"{service} unavailable (injected outage)",
                        retry_after=self._retry_after(spec, cluster),
                    )
            elif kind is FaultKind.THROTTLE:
                if self._sample(spec.probability):
                    self._record(kind, service, op.partition, now)
                    raise ServerBusyError(
                        f"{service} throttled (injected throttle storm)",
                        retry_after=self._retry_after(spec, cluster),
                    )
            elif kind is FaultKind.TRANSIENT_ERROR:
                if self._sample(spec.probability):
                    self._record(kind, service, op.partition, now)
                    raise TransientServerError(
                        f"{service} internal error (injected transient fault)",
                        retry_after=self._retry_after(spec, cluster),
                    )
            elif kind is FaultKind.TIMEOUT:
                if timeout_spec is None and self._sample(spec.probability):
                    timeout_spec = spec
            elif kind is FaultKind.LATENCY:
                factor *= spec.latency_factor
        return factor, timeout_spec

    def record_timeout(self, spec: FaultSpec, op, now: float) -> OperationTimedOutError:
        """Log a fired TIMEOUT fault; returns the error to raise."""
        service = op.service.value
        self._record(FaultKind.TIMEOUT, service, op.partition, now)
        return OperationTimedOutError(
            f"{service} request timed out after {spec.timeout_after}s "
            f"(injected timeout)",
            retry_after=self._retry_after(spec, cluster=None),
        )

    def _retry_after(self, spec: FaultSpec, cluster) -> float:
        if spec.retry_after is not None:
            return spec.retry_after
        if cluster is not None:
            return cluster.cal.throttle_retry_after_s
        return 1.0

    def _check_crash(self, index: int, spec: FaultSpec, op, now: float,
                     cluster) -> None:
        """PARTITION_CRASH: fail the crashed server's range during the
        failover window, then reassign it to a fresh server."""
        service = op.service.value
        if spec.service is not None and spec.service != service:
            return
        if cluster is None:
            # No placement model (the emulator backend): the crash hits the
            # named partition only, and there is no server pool to reassign
            # — the range "recovers" when the window closes.
            if spec.partition is not None and spec.partition != op.partition:
                return
            if spec.active(now):
                self._record(FaultKind.PARTITION_CRASH, service,
                             op.partition, now)
                raise ServerBusyError(
                    f"{service} partition server crashed; range of "
                    f"{op.partition!r} is being reassigned",
                    retry_after=self._retry_after(spec, cluster),
                )
            return
        pool = cluster.pool_for(op.service)
        if spec.partition is not None and (
                pool.server_key(op.partition) != pool.server_key(spec.partition)):
            return  # op lands on a different partition server
        if spec.active(now):
            self._record(FaultKind.PARTITION_CRASH, service, op.partition, now)
            raise ServerBusyError(
                f"{service} partition server crashed; range of "
                f"{op.partition!r} is being reassigned",
                retry_after=self._retry_after(spec, cluster),
            )
        if now >= spec.end and index not in self._reassigned:
            # Failover complete: the range moves to a fresh server (empty
            # queue, cold counters) — the reassignment of Calder SOSP'11.
            self._reassigned.add(index)
            pool.evict(spec.partition if spec.partition is not None
                       else op.partition)

    # -- queue data-plane hooks --------------------------------------------
    def _queue_event(self, kind: FaultKind, queue: str, now: float) -> bool:
        for spec in self.specs:
            if spec.kind is not kind:
                continue
            if not spec.active(now) or not spec.matches("queue", queue):
                continue
            if self._sample(spec.probability):
                self._record(kind, "queue", queue, now)
                return True
        return False

    def drop_message(self, queue: str, now: float) -> bool:
        """Should this acked PutMessage silently lose its payload?"""
        return self._queue_event(FaultKind.MESSAGE_LOSS, queue, now)

    def duplicate_delivery(self, queue: str, now: float) -> bool:
        """Should this gotten message stay visible (duplicate delivery)?"""
        return self._queue_event(FaultKind.DUPLICATE_DELIVERY, queue, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<FaultPlan specs={len(self.specs)} seed={self.seed} "
                f"events={len(self.events)}>")
