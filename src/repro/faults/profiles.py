"""Named fault profiles and a bag-of-tasks chaos harness.

A :class:`FaultProfile` is a reusable, named fault scenario — the chaos
equivalent of the benchmark suite's figure definitions.  The profiles
here are the scenarios the robustness benchmarks and the ``repro faults``
CLI subcommand run; :func:`run_faulted_taskpool` executes the paper's
bag-of-tasks application under one of them with a chosen retry policy and
reports completion time, retry accounting, and observed availability.

This module imports the framework/sim layers, so it is *not* re-exported
from :mod:`repro.faults` (the cluster imports the engine half of the
package; see the package docstring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .plan import FaultPlan
from .spec import FaultKind, FaultSpec

__all__ = [
    "FaultProfile",
    "PROFILES",
    "POLICIES",
    "get_profile",
    "build_plan",
    "make_policy",
    "run_faulted_taskpool",
]

#: Name of the harness app; fault specs that target a single partition
#: reference its first task queue.
APP_NAME = "chaos"
TASK_QUEUE_0 = f"{APP_NAME}-tasks-0"


@dataclass(frozen=True)
class FaultProfile:
    """One named, ready-made fault scenario."""

    name: str
    description: str
    specs: Tuple[FaultSpec, ...]
    #: Worker-role kill events the chaos scheduler should draw by default
    #: (spot evictions); only meaningful for crash-tolerant workloads
    #: (the bag-of-tasks app, elasticity campaigns).
    crashes: int = 0

    def plan(self, *, seed: int = 0) -> FaultPlan:
        """Build a fresh (stateful) plan from this (stateless) profile."""
        return FaultPlan(self.specs, seed=seed)


PROFILES: Dict[str, FaultProfile] = {p.name: p for p in (
    FaultProfile(
        "none",
        "healthy fabric (control run)",
        (),
    ),
    FaultProfile(
        "throttle-storm",
        "queue service rejects 50% of ops with 503 ServerBusy for 20 s "
        "(clustered scalability-target rejections, paper IV.C)",
        (FaultSpec(kind=FaultKind.THROTTLE, service="queue",
                   start=2.0, duration=20.0, probability=0.5,
                   retry_after=1.0),),
    ),
    FaultProfile(
        "failover",
        "the partition server holding the first task queue crashes at "
        "t=4 s; its range is reassigned after 15 s (Calder SOSP'11)",
        (FaultSpec(kind=FaultKind.PARTITION_CRASH, service="queue",
                   partition=TASK_QUEUE_0, start=4.0, failover_delay=15.0,
                   retry_after=1.0),),
    ),
    FaultProfile(
        "flaky-500s",
        "every service returns 500 InternalError on 5% of requests for "
        "the whole run (flaky front-ends)",
        (FaultSpec(kind=FaultKind.TRANSIENT_ERROR, probability=0.05,
                   retry_after=1.0),),
    ),
    FaultProfile(
        "slow-network",
        "all round trips and server occupancy stretched 8x between "
        "t=2 s and t=32 s (degraded, not down)",
        (FaultSpec(kind=FaultKind.LATENCY, start=2.0, duration=30.0,
                   latency_factor=8.0),),
    ),
    FaultProfile(
        "timeouts",
        "10% of queue requests burn a 5 s timeout and fail for 30 s",
        (FaultSpec(kind=FaultKind.TIMEOUT, service="queue", start=2.0,
                   duration=30.0, probability=0.1, timeout_after=5.0,
                   retry_after=1.0),),
    ),
    FaultProfile(
        "queue-storm",
        "queue-heavy chaos for the Fig 6 workload: a 503 throttle window, "
        "background 500s, plus message loss and duplicate delivery on the "
        "per-worker benchmark queues (the barrier queue is exempt so the "
        "synchronization protocol cannot deadlock)",
        (FaultSpec(kind=FaultKind.THROTTLE, service="queue",
                   start=1.0, duration=15.0, probability=0.3,
                   retry_after=1.0),
         FaultSpec(kind=FaultKind.TRANSIENT_ERROR, service="queue",
                   probability=0.05, retry_after=1.0))
        # Data-plane anomalies scoped to the benchmark queues
        # ("azurebenchqueue" + role id, first 8 workers) — never the
        # barrier queue: a lost barrier message would hang the run by
        # protocol design, not by a platform bug.
        + tuple(
            FaultSpec(kind=kind, service="queue",
                      partition=f"azurebenchqueue{i}", probability=0.08)
            for kind in (FaultKind.MESSAGE_LOSS,
                         FaultKind.DUPLICATE_DELIVERY)
            for i in range(8)
        ),
    ),
    FaultProfile(
        "table-storm",
        "table-heavy chaos for the Fig 8 workload: a 503 throttle window, "
        "background 500s, and a burst of 2 s timeouts on the table service",
        (FaultSpec(kind=FaultKind.THROTTLE, service="table",
                   start=1.0, duration=15.0, probability=0.3,
                   retry_after=1.0),
         FaultSpec(kind=FaultKind.TRANSIENT_ERROR, service="table",
                   probability=0.05, retry_after=1.0),
         FaultSpec(kind=FaultKind.TIMEOUT, service="table", start=2.0,
                   duration=10.0, probability=0.05, timeout_after=2.0,
                   retry_after=1.0)),
    ),
    FaultProfile(
        "region-outage",
        "the primary region goes hard-down between t=4 s and t=24 s: every "
        "primary op fails with 503 RegionUnavailable; a geo account serves "
        "reads from the RA-GRS secondary and writes back off until the "
        "region returns (single-region accounts just see a total outage)",
        (FaultSpec(kind=FaultKind.REGION_OUTAGE, region="primary",
                   start=4.0, duration=20.0, retry_after=1.0),),
    ),
    FaultProfile(
        "geo-failover",
        "geo shipping stalls at t=2 s, then the primary region dies at "
        "t=6 s and never comes back; the campaign drives a forced "
        "failover promoting the secondary, losing exactly the writes "
        "acknowledged after the (stalled) Last Sync Time — the bounded "
        "loss the 2012 contract allows",
        (FaultSpec(kind=FaultKind.REPLICATION_STALL,
                   start=2.0, duration=40.0),
         FaultSpec(kind=FaultKind.REGION_OUTAGE, region="primary",
                   start=6.0, duration=float("inf"), retry_after=1.0)),
    ),
    FaultProfile(
        "replication-stall",
        "geo-replication shipping stalls between t=3 s and t=18 s: the "
        "primary keeps acknowledging writes while Last Sync Time freezes "
        "(secondary staleness grows to the stall width plus the lag)",
        (FaultSpec(kind=FaultKind.REPLICATION_STALL,
                   start=3.0, duration=15.0),),
    ),
    FaultProfile(
        "spot-eviction",
        "three worker VMs are evicted mid-run (spot/low-priority reclaim) "
        "while the queue service throttles 20% of ops for 10 s; the "
        "supervisor recycles evicted roles and autoscaling replaces lost "
        "capacity",
        (FaultSpec(kind=FaultKind.THROTTLE, service="queue",
                   start=2.0, duration=10.0, probability=0.2,
                   retry_after=1.0),),
        crashes=3,
    ),
    FaultProfile(
        "dn-failover",
        "data node 1 of the service tier crash-stops at t=15 s under "
        "open-loop load; the failure domain must detect the death via "
        "heartbeats, heal the ring, and re-replicate with zero committed-"
        "write loss and bounded unavailability (service backend only)",
        (FaultSpec(kind=FaultKind.DN_CRASH, node=1, start=15.0),),
    ),
    FaultProfile(
        "lossy-queue",
        "task-queue puts lose their payload 10% of the time and gotten "
        "messages are duplicated 10% of the time for 30 s",
        (FaultSpec(kind=FaultKind.MESSAGE_LOSS, service="queue",
                   partition=TASK_QUEUE_0, start=0.0, duration=30.0,
                   probability=0.1),
         FaultSpec(kind=FaultKind.DUPLICATE_DELIVERY, service="queue",
                   partition=TASK_QUEUE_0, start=0.0, duration=30.0,
                   probability=0.1)),
    ),
)}


def get_profile(name: str) -> FaultProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; "
            f"available: {', '.join(sorted(PROFILES))}") from None


def build_plan(name: str, *, seed: int = 0) -> FaultPlan:
    """A fresh plan for the named profile."""
    return get_profile(name).plan(seed=seed)


#: Retry-policy factories the harness (and CLI) can name.  Factories,
#: not instances: policies are stateful (stats, RNGs, token buckets).
POLICIES: Dict[str, Callable[[], "object"]] = {}


def _register_policies() -> None:
    from ..resilience import (ExponentialJitterBackoff, FixedBackoff,
                              RetryBudget)
    POLICIES.update({
        "fixed": lambda: FixedBackoff(),
        "expo-jitter": lambda: ExponentialJitterBackoff(seed=7),
        "retry-budget": lambda: RetryBudget(capacity=20, refill_rate=0.5),
    })


_register_policies()


def make_policy(name: str):
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown retry policy {name!r}; "
            f"available: {', '.join(sorted(POLICIES))}") from None
    return factory()


def run_faulted_taskpool(profile: str, policy: str = "fixed", *,
                         tasks: int = 24, workers: int = 4,
                         work_s: float = 0.5, seed: int = 31,
                         horizon: float = 600.0) -> Dict[str, object]:
    """Run the paper's bag-of-tasks app under a fault profile.

    Returns a plain dict (CLI- and test-friendly) with completion
    accounting, the resilience summary, and the reproducible fault
    trace.  ``horizon`` bounds the run: data-loss profiles can make the
    bag of tasks unable to terminate, which is itself a result.
    """
    # Imported here: this module is reachable from the CLI before the
    # heavier layers are needed, and the engine half of repro.faults must
    # stay importable from repro.cluster without cycles.
    from ..compute import Fabric, Supervisor
    from ..framework import TaskPoolApp, TaskPoolConfig
    from ..sim import SimStorageAccount
    from ..simkit import AnyOf, Environment
    from ..storage.analytics import attach_analytics, resilience_summary

    plan = build_plan(profile, seed=seed)
    retry_policy = make_policy(policy)

    env = Environment()
    account = SimStorageAccount(env, seed=seed)
    account.cluster.set_fault_plan(plan)
    log, metrics = attach_analytics(account.cluster)

    def handler(ctx, payload):
        yield ctx.sleep(work_s)
        return payload

    # The policy under test applies to the *workers* (the paper's hot
    # path); the web role keeps the paper's patient fixed retry so a
    # giving-up policy can't kill the experiment's bookkeeping.  Both
    # apps share the config name and therefore the queues.
    worker_app = TaskPoolApp(
        TaskPoolConfig(name=APP_NAME, visibility_timeout=60.0,
                       idle_poll_interval=0.5, retry_policy=retry_policy),
        handler)
    app = TaskPoolApp(
        TaskPoolConfig(name=APP_NAME, visibility_timeout=60.0,
                       idle_poll_interval=0.5),
        handler)
    payloads = [f"t{i}".encode() for i in range(tasks)]

    fabric = Fabric(env, account)
    fabric.deploy(app.web_role_body(payloads, poll_interval=0.5),
                  instances=1, name="web")
    # Workers run crash-contained under a supervisor: a policy that gives
    # up (retry budget, deadline) surfaces the error, the fabric recycles
    # the role, and queue redelivery completes the task — the paper's full
    # fault-tolerance story.
    worker_pool = fabric.deploy(worker_app.worker_role_body(),
                                instances=workers, name="workers",
                                contain_crashes=True)
    supervisor = Supervisor(worker_pool, recycle_delay=5.0).start()
    fabric.start_all()
    all_done = env.all_of([d.all_done_event()
                           for d in fabric.deployments.values()])
    env.run(until=AnyOf(env, [all_done, env.timeout(horizon)]))
    completed = all_done.callbacks is None  # processed => everything done

    summary = resilience_summary(metrics, policy=retry_policy, plan=plan)
    return {
        "profile": profile,
        "policy": policy,
        "completed": completed,
        "completion_time": env.now,
        "tasks": tasks,
        "results_collected": len(app.results),
        "attempts": summary.attempts,
        "retries": summary.retries,
        "giveups": summary.giveups,
        "total_backoff": summary.total_backoff,
        "retry_amplification": summary.retry_amplification,
        "availability": summary.availability,
        "faults_injected": summary.faults_injected,
        "worker_restarts": supervisor.restart_count,
        "trace": plan.trace(),
        "requests_logged": len(log),
    }
