"""Fault specifications: what goes wrong, where, and when.

A :class:`FaultSpec` is a declarative, immutable description of one
failure mode scheduled against the simulated fabric.  A set of specs plus
a seed forms a :class:`~repro.faults.plan.FaultPlan` — the executable,
reproducible fault schedule.

The vocabulary generalizes the real 2012-era failure modes the paper and
its background literature describe:

* **OUTAGE** — a whole service (or one partition) hard-down for a window;
  the storage-stamp incidents the 99.9% SLA budgeted for.
* **THROTTLE** — probabilistic ``503 ServerBusy`` storms, i.e. the
  scalability-target rejections of paper IV.C but clustered in time.
* **TRANSIENT_ERROR** — probabilistic ``500 InternalError`` responses
  that succeed on retry (flaky front-ends).
* **TIMEOUT** — the request consumes the client's patience and then
  fails; the op burns ``timeout_after`` simulated seconds first.
* **LATENCY** — a degradation window multiplying service latency
  (overloaded or recovering infrastructure).
* **PARTITION_CRASH** — a partition server crashes; its range is
  unavailable for ``failover_delay`` seconds and is then *reassigned* to
  a fresh server (Calder et al., SOSP'11).
* **MESSAGE_LOSS** — an acked ``PutMessage`` whose payload never lands.
* **DUPLICATE_DELIVERY** — a gotten message is immediately re-exposed to
  other consumers (the at-least-once anomaly).
* **REGION_OUTAGE** — a whole region (storage stamp) hard-down for a
  window.  On a geo-replicated account (:mod:`repro.geo`) the spec's
  ``region`` selects which endpoint dies and the geo routing layer may
  serve reads from the surviving secondary; on a single-region account
  it degrades to a plain OUTAGE of every service.
* **REPLICATION_STALL** — the asynchronous geo-replication shipper stops
  applying the log for the window; Last Sync Time freezes while the
  primary keeps acknowledging writes (growing the forced-failover loss
  bound).  A no-op on single-region accounts.
* **DN_CRASH** — one data node of the service tier crash-stops at
  ``start`` and never returns; the failure domain
  (:mod:`repro.service.membership`) must detect it, heal the ring, and
  re-replicate.  Interpreted by the service-tier chaos campaign, not by
  the per-op fault engine (a node death is not an op-level event).
* **DN_SLOW** — one data node turns sick-but-alive for the window: every
  request it serves stalls, which is what the SN-side hedged reads and
  circuit breakers exist to absorb.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultKind", "FaultSpec", "FaultEvent", "DN_KINDS", "GEO_KINDS",
           "QUEUE_ONLY_KINDS", "REGIONS"]


class FaultKind(str, enum.Enum):
    """The failure modes the fault engine can inject."""

    OUTAGE = "outage"
    THROTTLE = "throttle"
    TRANSIENT_ERROR = "transient_error"
    TIMEOUT = "timeout"
    LATENCY = "latency"
    PARTITION_CRASH = "partition_crash"
    MESSAGE_LOSS = "message_loss"
    DUPLICATE_DELIVERY = "duplicate_delivery"
    REGION_OUTAGE = "region_outage"
    REPLICATION_STALL = "replication_stall"
    DN_CRASH = "dn_crash"
    DN_SLOW = "dn_slow"


#: Kinds that only make sense against the queue service's data plane.
QUEUE_ONLY_KINDS = frozenset({
    FaultKind.MESSAGE_LOSS, FaultKind.DUPLICATE_DELIVERY,
})

#: Kinds the geo layer (not the per-op fault engine) interprets.
GEO_KINDS = frozenset({
    FaultKind.REGION_OUTAGE, FaultKind.REPLICATION_STALL,
})

#: Kinds the service tier's failure domain interprets (node-level, not
#: op-level): the chaos campaign crashes/slows the named data node and
#: the membership layer must absorb it.
DN_KINDS = frozenset({
    FaultKind.DN_CRASH, FaultKind.DN_SLOW,
})

#: Valid values of :attr:`FaultSpec.region`.
REGIONS = (None, "primary", "secondary")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure mode.

    ``service`` may be a :class:`repro.cluster.Service` member or its
    string value (``"blob"``/``"queue"``/``"table"``/``"cache"``);
    ``None`` matches every service.  ``partition`` of ``None`` matches
    every partition.  ``probability`` applies per matching operation (it
    is ignored by PARTITION_CRASH, which is a single scheduled event).
    """

    kind: FaultKind
    service: Optional[str] = None
    partition: Optional[str] = None
    start: float = 0.0
    duration: float = float("inf")
    probability: float = 1.0
    #: LATENCY: multiplier applied to RTT and server occupancy.
    #: DN_SLOW: seconds each request stalls on the sick data node.
    latency_factor: float = 1.0
    #: TIMEOUT: seconds the doomed request burns before failing.
    timeout_after: float = 30.0
    #: PARTITION_CRASH: seconds until the partition range is reassigned.
    failover_delay: float = 15.0
    #: Retry-After hint carried by injected 503s (None: fabric default).
    retry_after: Optional[float] = None
    #: Geo faults: which region the fault hits (``None`` means "primary"
    #: on a geo account; single-region accounts ignore the field).
    region: Optional[str] = None
    #: DN faults: which data node crash-stops / turns slow.
    node: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise TypeError(f"kind must be a FaultKind, got {self.kind!r}")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.latency_factor <= 0:
            raise ValueError("latency_factor must be > 0")
        if self.timeout_after <= 0:
            raise ValueError("timeout_after must be > 0")
        if self.failover_delay <= 0:
            raise ValueError("failover_delay must be > 0")
        if self.kind in QUEUE_ONLY_KINDS and self.service not in (None, "queue"):
            raise ValueError(f"{self.kind.value} faults only apply to the "
                             f"queue service, not {self.service!r}")
        if self.region not in REGIONS:
            raise ValueError(
                f"region must be one of {REGIONS}, got {self.region!r}")
        if self.region is not None and self.kind not in GEO_KINDS:
            raise ValueError(
                f"region targeting only applies to geo fault kinds "
                f"({', '.join(sorted(k.value for k in GEO_KINDS))}), "
                f"not {self.kind.value}")
        if self.kind in DN_KINDS:
            if self.node is None or self.node < 0:
                raise ValueError(
                    f"{self.kind.value} faults need a data node index "
                    f"(node >= 0), got {self.node!r}")
            if self.service is not None:
                raise ValueError(
                    f"{self.kind.value} faults hit a whole data node; "
                    f"service targeting does not apply")
        elif self.node is not None:
            raise ValueError(
                f"node targeting only applies to DN fault kinds "
                f"({', '.join(sorted(k.value for k in DN_KINDS))}), "
                f"not {self.kind.value}")

    @property
    def end(self) -> float:
        """End of the fault window (crash faults: end of failover)."""
        if self.kind is FaultKind.PARTITION_CRASH:
            return self.start + self.failover_delay
        return self.start + self.duration

    def active(self, now: float) -> bool:
        """Is the fault window open at simulation time ``now``?"""
        return self.start <= now < self.end

    def matches(self, service: str, partition: str) -> bool:
        """Does an op against (service, partition) fall under this spec?"""
        if self.service is not None and self.service != service:
            return False
        if self.partition is not None and self.partition != partition:
            return False
        return True


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence — a line of the reproducible trace."""

    time: float
    kind: FaultKind
    service: str
    partition: str

    def as_tuple(self) -> tuple:
        return (self.time, self.kind.value, self.service, self.partition)
