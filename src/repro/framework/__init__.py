"""Generic application framework for Azure HPC apps (paper Section III)."""

from .barrier import QueueBarrier
from .taskpool import TaskPoolApp, TaskPoolConfig, TaskResult
from .threaded import ThreadedTaskPool

__all__ = ["QueueBarrier", "TaskPoolApp", "TaskPoolConfig", "TaskResult",
           "ThreadedTaskPool"]
