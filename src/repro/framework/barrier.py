"""Queue-based barrier synchronization among worker roles (paper Algorithm 2).

"There is no API in the Azure software development kit that provides a
traditional barrier like functionality.  However, a queue can be used as a
shared memory resource to implement explicit synchronization among multiple
worker role instances."

Protocol (the paper's trick): workers never delete their sync messages —
deleting would race with workers still polling, while leaving them breaks
the *next* barrier's count.  Instead each barrier crossing ``k`` waits for
``workers * k`` accumulated messages: the messages of all previous phases
stay in the queue and the ``sync_count`` accounts for them.
"""

from __future__ import annotations

from typing import Optional

from ..sim.retry import retrying

__all__ = ["QueueBarrier"]


class QueueBarrier:
    """One worker's handle on a shared queue barrier.

    Every participating worker builds its own :class:`QueueBarrier` over the
    same queue name and calls ``yield from barrier.wait()`` at each
    synchronization point.  ``workers`` must be identical across instances.

    "since a large number of requests to get the message count can throttle
    the queue, each worker sleeps for a second before issuing the next
    request" — ``poll_interval`` defaults to that one second.
    """

    def __init__(self, queue_client, queue_name: str, workers: int, *,
                 poll_interval: float = 1.0, env=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._client = queue_client
        self.queue_name = queue_name
        self.workers = workers
        self.poll_interval = poll_interval
        self._env = env if env is not None else queue_client.env
        #: Completed synchronization phases (the paper's ``syncCount``).
        self.sync_count = 0
        #: Simulated seconds this worker has spent inside barriers.
        self.time_in_barrier = 0.0

    def _retry(self, op_factory):
        """The paper's sleep-and-retry discipline for barrier traffic: a
        throttled or flaky sync op must delay the barrier, never crash the
        worker mid-protocol (a crashed worker would deadlock the others)."""
        result = yield from retrying(self._env, op_factory)
        return result

    def ensure_queue(self):
        """Create the barrier queue (any worker may call; idempotent)."""
        yield from self._retry(lambda: self._client.create_queue(
            self.queue_name))

    def wait(self, sync_count: Optional[int] = None):
        """Enter the barrier and block until all workers have arrived.

        ``sync_count`` defaults to one past the internally tracked phase
        (pass it explicitly to mirror the paper's ``Synchronize(++syncCount)``
        call sites).  Returns the phase number that completed.
        """
        if sync_count is None:
            sync_count = self.sync_count + 1
        if sync_count <= self.sync_count:
            raise ValueError(
                f"sync_count {sync_count} already completed "
                f"(at phase {self.sync_count})"
            )
        start = self._env.now
        # Announce arrival. The message must outlive long barriers, so rely
        # on the era's maximum TTL (7 days) rather than a custom one.
        yield from self._retry(lambda: self._client.put_message(
            self.queue_name, f"sync-{sync_count}".encode()
        ))
        target = self.workers * sync_count
        while True:
            arrived = yield from self._retry(
                lambda: self._client.get_message_count(self.queue_name))
            if arrived >= target:
                break
            yield self._env.timeout(self.poll_interval)
        self.sync_count = sync_count
        self.time_in_barrier += self._env.now - start
        return sync_count
