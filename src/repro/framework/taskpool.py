"""The generic bag-of-tasks application framework (paper Section III, Fig 3).

Workflow mirrored from the paper:

1. a **web role** receives input arguments and puts one message per task on
   a *task assignment queue* (multiple queues are supported for distinct
   parameter sets — and recommended, since separate queues scale better);
2. **worker roles** poll the task queues, process messages, and report each
   completion on a *termination indicator queue*;
3. the web role polls the termination indicator queue's message count to
   update the user interface and detect completion;
4. a dedicated **stop queue** signals shutdown — the paper explains a
   poison message on the task queue itself is unsafe because FIFO is not
   guaranteed ("the worker roles might read this message before the actual
   messages for tasks and hence quit processing while there is work in the
   task pool").

Fault tolerance comes from queue semantics: a worker that crashes after
``GetMessage`` never deletes its message, so it reappears after the
visibility timeout and another worker completes it ("queues can easily
facilitate the behavior of a shared task pool with in-built fault tolerance
mechanisms").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Sequence

from ..compute.roles import RoleContext
from ..resilience import RetryPolicy
from ..sim.retry import retrying
from ..storage.errors import MessageNotFoundError

__all__ = ["TaskPoolConfig", "TaskPoolApp", "TaskResult"]

#: A task handler: generator taking (context, payload bytes) and returning
#: an optional result payload.
TaskHandler = Callable[[RoleContext, bytes], Generator]


@dataclass(frozen=True)
class TaskPoolConfig:
    """Queue names and tunables of one task-pool application."""

    name: str = "app"
    #: Number of task assignment queues ("If there are distinct input
    #: parameter sets, there could be multiple task assignment queues").
    task_queues: int = 1
    #: Seconds a gotten task stays invisible; must exceed the longest task.
    visibility_timeout: float = 120.0
    #: Worker poll back-off when the task pool is momentarily empty.
    idle_poll_interval: float = 1.0
    #: Store results on a results queue (set False for side-effect tasks).
    collect_results: bool = True
    #: Poison-message cutoff: a task delivered more than this many times is
    #: moved to the dead-letter queue instead of re-processed (None
    #: disables).  Queue redelivery is at-least-once; a task whose payload
    #: *crashes the handler* would otherwise loop forever.
    max_dequeue_count: Optional[int] = None
    #: Retry policy for every storage op (None: the paper's fixed
    #: 1-second sleep).  Pass an :mod:`repro.resilience` policy to change
    #: the back-off schedule; its stats accumulate across the whole run.
    retry_policy: Optional[RetryPolicy] = None
    #: Per-op retry deadline in simulated seconds (None: retry forever,
    #: the paper's behaviour).  When the budget runs out the error
    #: surfaces to the role body — pair with a Supervisor to recycle.
    retry_deadline: Optional[float] = None

    def task_queue_name(self, index: int) -> str:
        return f"{self.name}-tasks-{index}"

    @property
    def poison_queue_name(self) -> str:
        return f"{self.name}-poison"

    @property
    def termination_queue_name(self) -> str:
        return f"{self.name}-termination"

    @property
    def results_queue_name(self) -> str:
        return f"{self.name}-results"

    @property
    def stop_queue_name(self) -> str:
        return f"{self.name}-stop"


@dataclass
class TaskResult:
    """One collected result message."""

    payload: bytes
    worker_hint: Optional[str] = None


class TaskPoolApp:
    """Builds web-role and worker-role bodies for a bag-of-tasks app.

    Usage::

        app = TaskPoolApp(TaskPoolConfig(name="pi"), handler)
        fabric.deploy(app.web_role_body(tasks), instances=1, name="web")
        fabric.deploy(app.worker_role_body(), instances=8, name="workers")
        fabric.run_all()
        results = app.results
    """

    def __init__(self, config: TaskPoolConfig, handler: TaskHandler) -> None:
        self.config = config
        self.handler = handler
        #: Results gathered by the web role (payload order is completion
        #: order — queues are not FIFO).
        self.results: List[TaskResult] = []
        #: Progress snapshots (time, completed count) from the web role.
        self.progress: List[tuple] = []
        self.tasks_submitted = 0

    # -- queue plumbing ------------------------------------------------------
    def _queue_client(self, ctx: RoleContext):
        return ctx.account.queue_client()

    def _retry(self, ctx: RoleContext, op_factory):
        """Run a queue op under the configured resilience policy (default:
        the paper's sleep-and-retry discipline), so throttling and outages
        delay the app instead of crashing it."""
        result = yield from retrying(
            ctx.env, op_factory,
            policy=self.config.retry_policy,
            deadline=self.config.retry_deadline)
        return result

    def setup(self, ctx: RoleContext):
        """Create all queues (called by the web role before submitting)."""
        qc = self._queue_client(ctx)
        for i in range(self.config.task_queues):
            yield from self._retry(ctx, lambda i=i: qc.create_queue(
                self.config.task_queue_name(i)))
        yield from self._retry(ctx, lambda: qc.create_queue(
            self.config.termination_queue_name))
        yield from self._retry(ctx, lambda: qc.create_queue(
            self.config.stop_queue_name))
        if self.config.collect_results:
            yield from self._retry(ctx, lambda: qc.create_queue(
                self.config.results_queue_name))
        if self.config.max_dequeue_count is not None:
            yield from self._retry(ctx, lambda: qc.create_queue(
                self.config.poison_queue_name))

    # -- web role ---------------------------------------------------------
    def web_role_body(self, tasks: Sequence[bytes], *,
                      poll_interval: float = 1.0,
                      submit_times: Optional[Sequence[float]] = None):
        """Body for the web role: submit tasks, track progress, signal stop.

        ``submit_times`` turns the bag into an open-loop stream: task ``i``
        is submitted at ``submit_times[i]`` seconds after setup finishes
        (instants from an :class:`repro.traffic.ArrivalSpec`), instead of
        the whole bag landing at once.  Must be non-decreasing and cover
        every task.
        """
        tasks = [bytes(t) for t in tasks]
        if submit_times is not None:
            submit_times = [float(t) for t in submit_times]
            if len(submit_times) < len(tasks):
                raise ValueError(
                    f"submit_times covers {len(submit_times)} of "
                    f"{len(tasks)} tasks")
            if any(b < a for a, b in zip(submit_times, submit_times[1:])):
                raise ValueError("submit_times must be non-decreasing")

        def body(ctx: RoleContext):
            qc = self._queue_client(ctx)
            yield from self.setup(ctx)
            # Task assignment: spread across the task queues round-robin,
            # pacing on the arrival schedule when one was given.
            origin = ctx.now
            for i, payload in enumerate(tasks):
                if submit_times is not None:
                    due = origin + submit_times[i]
                    if due > ctx.now:
                        yield ctx.sleep(due - ctx.now)
                queue = self.config.task_queue_name(i % self.config.task_queues)
                yield from self._retry(ctx, lambda q=queue, p=payload:
                                       qc.put_message(q, p))
            self.tasks_submitted = len(tasks)
            # Poll the termination indicator to "update the user interface".
            while True:
                done = yield from self._retry(ctx, lambda: qc.get_message_count(
                    self.config.termination_queue_name))
                self.progress.append((ctx.now, done))
                if done >= len(tasks):
                    break
                yield ctx.sleep(poll_interval)
            # Drain results.
            if self.config.collect_results:
                for _ in range(len(tasks)):
                    msg = yield from self._retry(ctx, lambda: qc.get_message(
                        self.config.results_queue_name,
                        visibility_timeout=self.config.visibility_timeout))
                    if msg is None:
                        break
                    self.results.append(TaskResult(msg.content.to_bytes()))
                    yield from self._retry(
                        ctx, lambda m=msg: qc.delete_message(
                            self.config.results_queue_name,
                            m.message_id, m.pop_receipt))
            # Tell the workers to exit (dedicated stop queue, not a poison
            # task message — FIFO is not guaranteed).
            yield from self._retry(ctx, lambda: qc.put_message(
                self.config.stop_queue_name, b"stop"))
            return len(self.results)

        return body

    # -- worker role ---------------------------------------------------------
    def worker_role_body(self):
        """Body for worker roles: poll task queues, process, report."""

        def body(ctx: RoleContext):
            qc = self._queue_client(ctx)
            # Role startup: create-if-not-exists, like real role OnStart code
            # (safe because queue creation is idempotent; avoids racing the
            # web role's setup).
            yield from self.setup(ctx)
            processed = 0
            # Start polling at a queue derived from the role id so workers
            # don't stampede a single queue.
            queue_index = ctx.role_id % self.config.task_queues
            while True:
                if getattr(ctx, "retire_requested", False):
                    # Cooperative scale-in: the autoscaler asked us to
                    # drain.  Between tasks is the safe exit point — the
                    # in-flight task (if any) was finished and deleted.
                    return processed
                got_task = False
                for attempt in range(self.config.task_queues):
                    queue = self.config.task_queue_name(
                        (queue_index + attempt) % self.config.task_queues)
                    msg = yield from self._retry(
                        ctx, lambda q=queue: qc.get_message(
                            q, visibility_timeout=self.config.visibility_timeout))
                    if msg is None:
                        continue
                    got_task = True
                    cutoff = self.config.max_dequeue_count
                    if cutoff is not None and msg.dequeue_count > cutoff:
                        # Poison message: park it on the dead-letter queue
                        # and count it toward termination so the run ends.
                        yield from self._retry(
                            ctx, lambda m=msg: qc.put_message(
                                self.config.poison_queue_name, m.content))
                        yield from self._retry(ctx, lambda: qc.put_message(
                            self.config.termination_queue_name, b"poisoned"))
                        yield from self._retry(
                            ctx, lambda q=queue, m=msg: qc.delete_message(
                                q, m.message_id, m.pop_receipt))
                        continue
                    result = yield from self.handler(
                        ctx, msg.content.to_bytes())
                    # Completion protocol: report, then delete the task.
                    if self.config.collect_results and result is not None:
                        yield from self._retry(ctx, lambda r=result: qc.put_message(
                            self.config.results_queue_name, r))
                    yield from self._retry(ctx, lambda: qc.put_message(
                        self.config.termination_queue_name, b"done"))
                    try:
                        yield from self._retry(
                            ctx, lambda q=queue, m=msg: qc.delete_message(
                                q, m.message_id, m.pop_receipt))
                    except MessageNotFoundError:
                        # Our processing outlived the visibility timeout and
                        # the task was re-delivered to (and possibly deleted
                        # by) another worker.  At-least-once semantics: our
                        # result stands, the stale receipt is harmless.
                        pass
                    processed += 1
                    break
                if not got_task:
                    # Idle: exit if the stop signal is up, else back off.
                    stop = yield from self._retry(ctx, lambda: qc.peek_message(
                        self.config.stop_queue_name))
                    if stop is not None:
                        return processed
                    yield ctx.sleep(self.config.idle_poll_interval)

        return body
