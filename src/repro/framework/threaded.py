"""The Section III task-pool protocol on real threads (emulator backend).

The simulated framework (:mod:`repro.framework.taskpool`) proves the
protocol's behaviour at scale; this module runs the *same protocol* —
task-assignment queue, termination-indicator queue, stop queue, visibility
timeouts — with ``threading`` workers against the thread-safe emulator, so
applications can be developed and debugged locally exactly as they would
run simulated.

Handlers here are plain callables (no generators): ``handler(payload) ->
bytes | None``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

from ..emulator import EmulatorAccount
from ..resilience import FixedBackoff
from ..storage.errors import RETRYABLE_ERRORS, MessageNotFoundError
from .taskpool import TaskPoolConfig, TaskResult

__all__ = ["ThreadedTaskPool"]


class ThreadedTaskPool:
    """Run a bag of tasks on worker threads over an emulator account. ::

        pool = ThreadedTaskPool(account, TaskPoolConfig(name="app"),
                                handler=lambda payload: payload.upper())
        results = pool.run([b"a", b"b", b"c"], workers=4)
    """

    def __init__(self, account: EmulatorAccount, config: TaskPoolConfig,
                 handler: Callable[[bytes], Optional[bytes]]) -> None:
        self.account = account
        self.config = config
        self.handler = handler
        self.results: List[TaskResult] = []
        self._results_lock = threading.Lock()
        self.processed_per_worker: List[int] = []

    # -- plumbing ---------------------------------------------------------
    def _setup(self) -> None:
        qc = self.account.queue_client()
        for i in range(self.config.task_queues):
            qc.create_queue(self.config.task_queue_name(i))
        qc.create_queue(self.config.termination_queue_name)
        qc.create_queue(self.config.stop_queue_name)
        if self.config.collect_results:
            qc.create_queue(self.config.results_queue_name)
        if self.config.max_dequeue_count is not None:
            qc.create_queue(self.config.poison_queue_name)

    def _with_retry(self, fn):
        """Paper discipline on real threads: back off (wall clock) and
        retry, under the configured policy when one is set."""
        policy = self.config.retry_policy or FixedBackoff()
        attempt = 0
        while True:
            try:
                return fn()
            except RETRYABLE_ERRORS as exc:
                attempt += 1
                delay = policy.backoff(attempt, exc, now=time.monotonic())
                if delay is None:  # policy gave up (e.g. budget exhausted)
                    raise
                time.sleep(delay)

    # -- worker thread ---------------------------------------------------
    def _worker(self, wid: int) -> None:
        qc = self.account.queue_client()
        config = self.config
        processed = 0
        queue_index = wid % config.task_queues
        while True:
            got_task = False
            for attempt in range(config.task_queues):
                queue = config.task_queue_name(
                    (queue_index + attempt) % config.task_queues)
                msg = self._with_retry(lambda q=queue: qc.get_message(
                    q, visibility_timeout=config.visibility_timeout))
                if msg is None:
                    continue
                got_task = True
                cutoff = config.max_dequeue_count
                if cutoff is not None and msg.dequeue_count > cutoff:
                    self._with_retry(lambda m=msg: qc.put_message(
                        config.poison_queue_name, m.content))
                    self._with_retry(lambda: qc.put_message(
                        config.termination_queue_name, b"poisoned"))
                    self._with_retry(lambda q=queue, m=msg: qc.delete_message(
                        q, m.message_id, m.pop_receipt))
                    continue
                result = self.handler(msg.content.to_bytes())
                if config.collect_results and result is not None:
                    self._with_retry(lambda r=result: qc.put_message(
                        config.results_queue_name, r))
                self._with_retry(lambda: qc.put_message(
                    config.termination_queue_name, b"done"))
                try:
                    self._with_retry(lambda q=queue, m=msg: qc.delete_message(
                        q, m.message_id, m.pop_receipt))
                except MessageNotFoundError:
                    pass  # re-delivered elsewhere; at-least-once
                processed += 1
                break
            if not got_task:
                stop = self._with_retry(lambda: qc.peek_message(
                    config.stop_queue_name))
                if stop is not None:
                    break
                time.sleep(config.idle_poll_interval)
        with self._results_lock:
            self.processed_per_worker.append(processed)

    # -- driver ------------------------------------------------------------
    def run(self, tasks: Sequence[bytes], *, workers: int = 4,
            poll_interval: float = 0.05) -> List[TaskResult]:
        """Submit tasks, run worker threads to completion, collect results."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._setup()
        qc = self.account.queue_client()
        config = self.config

        threads = [threading.Thread(target=self._worker, args=(w,),
                                    name=f"taskpool-worker-{w}")
                   for w in range(workers)]
        for t in threads:
            t.start()

        tasks = [bytes(t) for t in tasks]
        for i, payload in enumerate(tasks):
            queue = config.task_queue_name(i % config.task_queues)
            self._with_retry(lambda q=queue, p=payload: qc.put_message(q, p))

        # Web-role loop: poll the termination indicator.
        while True:
            done = self._with_retry(lambda: qc.get_message_count(
                config.termination_queue_name))
            if done >= len(tasks):
                break
            time.sleep(poll_interval)

        if config.collect_results:
            for _ in range(len(tasks)):
                msg = self._with_retry(lambda: qc.get_message(
                    config.results_queue_name,
                    visibility_timeout=config.visibility_timeout))
                if msg is None:
                    break
                with self._results_lock:
                    self.results.append(TaskResult(msg.content.to_bytes()))
                self._with_retry(lambda m=msg: qc.delete_message(
                    config.results_queue_name, m.message_id, m.pop_receipt))

        self._with_retry(lambda: qc.put_message(config.stop_queue_name,
                                                b"stop"))
        for t in threads:
            t.join()
        return list(self.results)
