"""Geo-replicated storage accounts: RA-GRS, failover, and the geo ledger.

The 2012 geo-distribution layer on the simulated fabric (Calder et al.,
SOSP'11 §2.4 inter-stamp replication; the "geo redundant storage"
preview of the paper's era):

* :class:`GeoAccount` — a primary + RA-GRS read-only secondary pair with
  asynchronous log-shipping replication and an exposed Last Sync Time;
* :class:`GeoReplicator` / :class:`ReplicationLog` — the seeded,
  deterministic inter-stamp shipper;
* :class:`GeoController` — region outage routing, planned/forced
  failover, bounded data loss;
* :class:`GeoLedger` — the mergeable accounting monoid proving the
  replication contract (durability at the watermark, prefix shipping,
  lag-bounded staleness);
* :func:`run_geo_chaos` / :func:`run_elasticity` — the chaos campaigns
  behind ``repro chaos --profile region-outage|geo-failover|
  replication-stall`` and the autoscaling elasticity scenario.
"""

from .account import (
    GeoAccount,
    GeoClient,
    MUTATING_METHODS,
    READ_FALLBACK_METHODS,
)
from .controller import MUTATING_KINDS, GeoController
from .ledger import GeoLedger, geo_ledger_from_events
from .replication import (
    GeoReplicator,
    ReplayClock,
    ReplicationLog,
    ReplicationRecord,
)

__all__ = [
    "GeoAccount",
    "GeoClient",
    "GeoController",
    "GeoLedger",
    "GeoReplicator",
    "MUTATING_KINDS",
    "MUTATING_METHODS",
    "READ_FALLBACK_METHODS",
    "ReplayClock",
    "ReplicationLog",
    "ReplicationRecord",
    "geo_ledger_from_events",
    "run_elasticity",
    "run_geo_chaos",
]


def __getattr__(name):
    # The campaigns import the framework/compute layers; keep the core
    # geo package importable without them (mirrors repro.faults).
    if name in ("run_geo_chaos", "run_elasticity"):
        from . import campaign
        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
