"""Geo-replicated (RA-GRS) storage accounts on the simulated fabric.

A :class:`GeoAccount` is two full simulated stamps — a primary
:class:`~repro.sim.clients.SimStorageAccount` and a secondary replica in
a paired "region" — wired together by the replication layer
(:mod:`repro.geo.replication`), the failover controller
(:mod:`repro.geo.controller`), and the geo pipeline interceptors.  It is
a drop-in replacement for a single-region account everywhere the
harness needs one: it exposes the same ``*_client()`` factories, a
``pipeline`` for tracing/analytics, a ``state`` for audits, and a
geo-aware ``set_fault_plan`` that strips region-scale specs out of the
plan and arms the region layer with them.

:class:`GeoClient` is the 2012 RA-GRS client contract per service:

* every call routes to the **primary** until the secondary is promoted;
* every acknowledged **mutation** is appended to the replication log in
  ack order (log shipping);
* a :class:`~repro.storage.errors.RegionDownError` on a *read* falls
  back to the secondary endpoint (peek/count/download/query — never
  ``get_message``, which consumes visibility and was primary-only);
* writes against the un-promoted secondary fail with the 403
  :class:`~repro.storage.errors.SecondaryReadOnlyError`.

Intentionally **no** ``cluster`` attribute: the chaos runner's plan
owner resolution must land on the account itself so the geo-aware
``set_fault_plan`` sees the region-scale specs before the per-op fault
engine does.  Queue data-plane anomalies (message loss, duplicate
delivery) injected on the primary are not mirrored to the secondary —
a dropped payload never enters the log, which is exactly the replica
the real incident would have produced.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Dict, Optional, Tuple

from ..cluster import StorageCluster
from ..cluster.calibration import DEFAULT_CALIBRATION, FabricCalibration
from ..faults.spec import GEO_KINDS, FaultKind
from ..pipeline import OpCall, SimExecutor
from ..pipeline.interceptors import (
    GeoRoutingInterceptor,
    GeoSecondaryInterceptor,
)
from ..sim.clients import SimStorageAccount
from ..storage import LIMITS_2012, ServiceLimits, StorageAccountState
from ..storage.cache import CacheServiceState
from ..storage.errors import RegionDownError
from .controller import GeoController
from .replication import GeoReplicator, ReplayClock, ReplicationLog

__all__ = [
    "GeoAccount",
    "GeoClient",
    "MUTATING_METHODS",
    "READ_FALLBACK_METHODS",
]

#: Offset between the primary and secondary clusters' placement seeds —
#: the paired stamp is different hardware, not a mirror of the layout.
SECONDARY_SEED_OFFSET = 24251

#: Registry method names whose success mutates account state — exactly
#: the calls the replication log ships, per client kind.
MUTATING_METHODS: Dict[str, frozenset] = {
    "blob": frozenset({
        "create_container", "delete_container",
        "put_block", "put_block_list", "upload_blob",
        "create_page_blob", "put_page", "delete_blob",
        "acquire_lease", "renew_lease", "release_lease",
        "snapshot_blob",
    }),
    "queue": frozenset({
        "create_queue", "delete_queue",
        "put_message", "get_message", "get_messages",
        "delete_message", "update_message",
    }),
    "table": frozenset({
        "create_table", "delete_table",
        "insert", "update", "merge",
        "insert_or_replace", "insert_or_merge", "delete",
        "execute_batch",
    }),
}

#: Pure reads an RA-GRS client may re-issue against the secondary when
#: the primary rejects with RegionDownError.  ``get_message`` is absent
#: by design (it consumes visibility); so are the ``local=True`` ops,
#: which never cross the pipeline.
READ_FALLBACK_METHODS: Dict[str, frozenset] = {
    "blob": frozenset({
        "get_block", "download_block_blob",
        "get_page", "download_page_blob", "download_snapshot",
    }),
    "queue": frozenset({"peek_message", "get_message_count"}),
    "table": frozenset({"get", "query_partition", "query"}),
}


def _capture_meta(kind: str, name: str, args: Tuple[Any, ...],
                  result: Any) -> Dict[str, Any]:
    """Result identifiers for the log record (failover accounting)."""
    meta: Dict[str, Any] = {}
    if kind == "queue":
        if args:
            meta["queue"] = args[0]
        if name == "put_message" and result is not None:
            meta["message_id"] = result.message_id
        elif name in ("delete_message", "update_message") and len(args) > 1:
            meta["message_id"] = args[1]
    elif kind == "table":
        if args:
            meta["table"] = args[0]
        if name not in ("create_table", "delete_table",
                        "execute_batch") and len(args) > 2:
            meta["pk"], meta["rk"] = args[1], args[2]
        if isinstance(result, str):
            meta["etag"] = result
    elif kind == "blob":
        if args:
            meta["container"] = args[0]
        if len(args) > 1:
            meta["blob"] = args[1]
    return meta


class _SecondaryAccount(SimStorageAccount):
    """The paired secondary stamp: same data plane, replay-pinnable clock.

    Mirrors :class:`SimStorageAccount.__init__` but drives the account
    state with a :class:`ReplayClock`, so the shipper can commit each
    replayed mutation at its original primary ack instant (bit-exact
    ETags, ids, and timestamps).  Live reads see normal simulation time.
    """

    def __init__(self, env, name: str, *,
                 limits: ServiceLimits = LIMITS_2012,
                 calibration: FabricCalibration = DEFAULT_CALIBRATION,
                 seed: int = 0,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        self.env = env
        self.replay_clock = ReplayClock(env)
        self.state = StorageAccountState(
            name, self.replay_clock, limits, fifo_jitter_seed=fifo_jitter_seed
        )
        self.cluster = StorageCluster(
            env, limits=limits, calibration=calibration, seed=seed
        )
        self.cache_state = CacheServiceState(self.state.clock)
        self.executor = SimExecutor(self.cluster)
        self._op_call = OpCall(
            self.state, self.cache_state,
            now_fn=self.replay_clock.now,
            plan_fn=lambda: self.cluster.fault_plan,
        )


class GeoClient:
    """RA-GRS routing proxy over one service's primary+secondary clients.

    Method calls resolve lazily against the underlying derived sim
    clients, so the full registry surface is available; generator
    methods stay generators (call with ``yield from``).
    """

    def __init__(self, geo: "GeoAccount", kind: str) -> None:
        self._geo = geo
        self._kind = kind
        self._primary = getattr(geo.primary, f"{kind}_client")()
        self._secondary = getattr(geo.secondary, f"{kind}_client")()
        self._mutating = MUTATING_METHODS.get(kind, frozenset())
        self._fallback = READ_FALLBACK_METHODS.get(kind, frozenset())

    @property
    def account(self) -> "GeoAccount":
        return self._geo

    @property
    def env(self):
        return self._geo.env

    @property
    def state(self):
        return self._geo.state

    def _active_client(self):
        return (self._secondary if self._geo.controller.promoted
                else self._primary)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        template = getattr(self._primary, name)
        if not callable(template):
            return getattr(self._active_client(), name)
        mutating = name in self._mutating
        fallback = name in self._fallback

        def call(*args, **kwargs):
            if self._geo.controller.promoted:
                return getattr(self._secondary, name)(*args, **kwargs)
            res = getattr(self._primary, name)(*args, **kwargs)
            if isinstance(res, GeneratorType) and (mutating or fallback):
                return self._drive(name, res, args, kwargs,
                                   mutating=mutating, fallback=fallback)
            return res

        call.__name__ = name
        self.__dict__[name] = call  # resolve once per method
        return call

    def _drive(self, name, gen, args, kwargs, *, mutating, fallback):
        geo = self._geo
        try:
            result = yield from gen
        except RegionDownError:
            ctrl = geo.controller
            if not (fallback and ctrl.read_secondary and not ctrl.promoted):
                raise
            # RA-GRS read fallback: re-issue the read on the secondary.
            ctrl.stats["secondary_reads"] += 1
            result = yield from getattr(self._secondary, name)(
                *args, **kwargs)
            return result
        if mutating and not (self._kind == "queue"
                             and name == "put_message" and result is None):
            # Acked mutation: ship it.  A dropped put (injected message
            # loss) acked without landing replicates as it happened —
            # not at all.
            geo.log.append(geo.env.now, self._kind, name, args, kwargs,
                           _capture_meta(self._kind, name, args, result))
        return result


class GeoAccount:
    """A geo-replicated (RA-GRS) storage account: two stamps, one name."""

    def __init__(self, env, name: str = "azurebench", *,
                 limits: ServiceLimits = LIMITS_2012,
                 calibration: FabricCalibration = DEFAULT_CALIBRATION,
                 seed: int = 0,
                 fifo_jitter_seed: Optional[int] = None,
                 lag_s: float = 4.0,
                 poll_interval: float = 0.25,
                 read_secondary: bool = True) -> None:
        self.env = env
        self.name = name
        self.lag_s = lag_s
        self.primary = SimStorageAccount(
            env, name, limits=limits, calibration=calibration, seed=seed,
            fifo_jitter_seed=fifo_jitter_seed,
        )
        self.secondary = _SecondaryAccount(
            env, f"{name}sec", limits=limits, calibration=calibration,
            seed=seed + SECONDARY_SEED_OFFSET,
            fifo_jitter_seed=fifo_jitter_seed,
        )
        self.log = ReplicationLog()
        self.replicator = GeoReplicator(
            env, self.log, self.secondary,
            lag_s=lag_s, poll_interval=poll_interval,
        ).start()
        self.controller = GeoController(env, self.replicator, self.log)
        self.controller.read_secondary = read_secondary
        self.primary.pipeline.add(
            GeoRoutingInterceptor(self.controller), before="faults")
        self.secondary.pipeline.add(
            GeoSecondaryInterceptor(self.controller), before="faults")

    # -- single-region drop-in surface -------------------------------------
    @property
    def active(self) -> SimStorageAccount:
        """The stamp currently serving the account endpoint."""
        return (self.secondary if self.controller.promoted
                else self.primary)

    @property
    def pipeline(self):
        return self.active.pipeline

    @property
    def state(self):
        return self.active.state

    @property
    def last_sync_time(self) -> float:
        return self.replicator.last_sync_time

    def blob_client(self) -> GeoClient:
        return GeoClient(self, "blob")

    def queue_client(self) -> GeoClient:
        return GeoClient(self, "queue")

    def table_client(self) -> GeoClient:
        return GeoClient(self, "table")

    def cache_client(self):
        """The caching service is region-local, never geo-replicated."""
        return self.primary.cache_client()

    # -- explicit secondary readers (RA-GRS probes) ------------------------
    def secondary_blob_client(self):
        return self.secondary.blob_client()

    def secondary_queue_client(self):
        return self.secondary.queue_client()

    def secondary_table_client(self):
        return self.secondary.table_client()

    # -- fault wiring ------------------------------------------------------
    def set_fault_plan(self, plan) -> None:
        """Arm the fault plan, geo-aware.

        Region-scale specs (``region_outage``, ``replication_stall``)
        are stripped out of the plan and handed to the controller and
        the shipper; everything else runs through the primary cluster's
        per-op fault engine unchanged.  Both layers report injections
        back into the plan's unified trace via ``record_external``.
        """
        if plan is None:
            self.primary.cluster.set_fault_plan(None)
            return
        geo_specs = [s for s in plan.specs if s.kind in GEO_KINDS]
        for spec in geo_specs:
            plan.specs.remove(spec)
        self.controller.install_outages(
            [s for s in geo_specs if s.kind is FaultKind.REGION_OUTAGE],
            recorder=plan)
        self.replicator.set_stalls(
            [s for s in geo_specs if s.kind is FaultKind.REPLICATION_STALL],
            recorder=plan)
        self.primary.cluster.set_fault_plan(plan)

    # -- failover ----------------------------------------------------------
    def failover_process(self, mode: str = "forced", *,
                         delay_s: float = 2.0):
        """Process generator promoting the secondary (see GeoController)."""
        return self.controller.failover(mode, delay_s=delay_s)

    def lost_records(self) -> tuple:
        """Acked-but-unshipped records, live (post-promotion: the loss)."""
        shipped = self.replicator.shipped_seqs()
        return tuple(r for r in self.log.records if r.seq not in shipped)

    def describe(self) -> dict:
        """JSON-friendly geo summary for verdicts and the CLI."""
        return {
            "account": self.name,
            "lag_s": self.lag_s,
            "log_records": len(self.log),
            "shipped": len(self.replicator.ship_events),
            "apply_errors": len(self.replicator.apply_errors),
            "last_sync_time": self.replicator.last_sync_time,
            **self.controller.describe(),
        }
