"""Geo chaos campaigns: region outages, failover, and elasticity.

:func:`run_geo_chaos` drives a purpose-built multi-service workload
against a :class:`~repro.geo.account.GeoAccount` under one of the
region-scale fault profiles (``region-outage``, ``geo-failover``,
``replication-stall``), records the full client-level history plus the
replication layer's own evidence, and folds everything into a
:class:`~repro.chaos.verdict.ChaosVerdict`:

* the standard history invariants (queue conservation, blob integrity,
  table ETag conformance) still hold across outage and failover;
* the :class:`~repro.geo.ledger.GeoLedger` laws hold over the
  acknowledgement/shipping/probe/promotion evidence — durability at the
  Last Sync Time watermark, prefix shipping, lag-bounded staleness,
  secondary reads never newer than the primary nor older than the
  watermark floor.

After a **forced** failover the acknowledged-but-unshipped suffix of the
log is genuinely rewound — the bounded loss the 2012 contract allows.
The campaign accounts for it explicitly: each lost queue put is
rewritten in the history as an *attributed* loss (fault tag
``geo_failover``) and each lost table mutation is dropped (its effect no
longer exists, so a post-failover optimistic write may lawfully reuse
its ETag).  Everything acknowledged before the watermark must survive
untouched — that is checked, not assumed.

The campaign runs **without** the Tracer/analytics stack on purpose:
RA-GRS read fallback re-issues operations on the secondary stamp's
pipeline, which the primary-bound span and metering checks would
misread as missing coverage.  The history invariants and the geo ledger
carry the conformance load here.

:func:`run_elasticity` is the compute-side companion: the paper's
bag-of-tasks app on a geo account, with a
:class:`~repro.compute.autoscaler.Autoscaler` growing the worker fleet
while a region outage (or spot-eviction churn) is in progress, and the
usual exactly-once/conservation checks at the end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..chaos.history import History, OpRecord, audit_account
from ..chaos.invariants import Violation, check_history
from ..chaos.runner import RETRY_BUDGET, _crash_verdict
from ..chaos.schedule import build_schedule
from ..chaos.verdict import ChaosVerdict
from ..faults.spec import FaultKind
from ..sim.retry import retrying
from ..simkit import AllOf, AnyOf, Environment
from ..storage.errors import (
    ETagMismatchError,
    ResourceNotFoundError,
    StorageError,
)
from .account import GeoAccount
from .ledger import geo_ledger_from_events

__all__ = ["run_geo_chaos", "run_elasticity"]

#: Profile -> failover mode driven by default (None: outage only).
_DEFAULT_FAILOVER: Dict[str, Optional[str]] = {
    "geo-failover": "forced",
}


def _geo_events(geo, probes, extra=()):
    """Fold the account's replication evidence into ledger events."""
    events: List[Tuple] = [("ack", r.seq, r.time) for r in geo.log.records]
    events.extend(("ship", seq, ack_t, apply_t)
                  for (seq, ack_t, apply_t) in geo.replicator.ship_events)
    events.extend(probes)
    if geo.controller.promoted:
        events.append(("promote", geo.controller.promoted_at,
                       geo.controller.final_last_sync_time))
    events.extend(extra)
    return events


def _staleness_allowance(geo, schedule) -> float:
    """The lag bound the ledger may hold ships to: configured lag, plus
    every injected stall width, plus shipper poll slack."""
    stall_total = sum(
        s.duration for s in schedule.specs
        if s.kind is FaultKind.REPLICATION_STALL
        and s.duration != float("inf"))
    return (geo.lag_s + stall_total
            + 2.0 * geo.replicator.poll_interval + 0.5)


def _geo_ledger_violations(geo, probes, schedule, *,
                           splice: bool = False) -> Tuple[List[Violation], int]:
    """Evaluate the GeoLedger laws (and optionally the splice self-test)."""
    out: List[Violation] = []
    max_lag = _staleness_allowance(geo, schedule)
    events = _geo_events(geo, probes)
    for msg in geo_ledger_from_events(events).violations(max_lag=max_lag):
        out.append(Violation("geo-ledger", msg))
    for seq, err, msg in geo.replicator.apply_errors:
        out.append(Violation(
            "geo-replication",
            f"record {seq} failed to apply on the secondary "
            f"({err}): {msg}"))
    spliced = 0
    if splice and geo.replicator.ship_events:
        # Self-test: erase one ship from the evidence — the prefix or
        # durability law must notice the hole, proving a real silent
        # replication skip could not slip through.
        seq0, ack0, t0 = sorted(geo.replicator.ship_events)[0]
        without = [e for e in events if e != ("ship", seq0, ack0, t0)]
        found = geo_ledger_from_events(without).violations(max_lag=max_lag)
        spliced = 1
        if not found:
            out.append(Violation(
                "geo-ledger",
                f"[geo-splice seq {seq0}] spliced-out ship was NOT "
                f"detected — the ledger laws have a hole"))
        out.extend(Violation("geo-ledger",
                             f"[geo-splice seq {seq0}] {msg}")
                   for msg in found)
    return out, spliced


def _erase_message_before(history: History, queue: str, msg_id: str,
                          cutoff: float) -> None:
    """Drop pre-``cutoff`` deliveries/deletes of one rewound message.

    The promoted secondary restarts its message counter at the shipped
    prefix, so a post-promotion put can lawfully *reuse* the id of a
    put the rewind destroyed.  Only records from before the promotion
    instant belong to the lost incarnation; the reused message's own
    delivery and delete must survive so queue conservation still
    balances.
    """
    kept = []
    for rec in history.records:
        if (rec.service == "queue" and rec.target == queue
                and rec.time <= cutoff):
            if (rec.op == "delete_message"
                    and rec.request.get("message_id") == msg_id):
                continue
            if rec.op in ("get_message", "get_messages") and rec.ok:
                messages = [m for m in rec.result.get("messages", ())
                            if m["message_id"] != msg_id]
                if len(messages) != len(rec.result.get("messages", ())):
                    result = dict(rec.result)
                    result["messages"] = tuple(messages)
                    rec = OpRecord(
                        seq=rec.seq, time=rec.time, service=rec.service,
                        op=rec.op, target=rec.target,
                        request=rec.request, result=result,
                        error=rec.error, faults=rec.faults)
        kept.append(rec)
    history.records = kept


def _exempt_failover_losses(history: History, lost,
                            promoted_at: float) -> int:
    """Rewrite the history to account for a forced failover's rewind.

    Lost queue puts become *attributed* losses (``geo_failover`` fault
    tag) with their pre-promotion downstream records erased; lost table
    mutations are dropped outright (the promoted replica never saw
    them, so their ETags are legitimately re-issuable).  Lost blob
    writes need nothing: the integrity checker replays history
    internally and the rewound bytes are never downloaded
    post-failover.
    """
    exempted = 0
    for lrec in lost:
        if lrec.service == "queue" and lrec.method == "put_message":
            msg_id = lrec.meta.get("message_id")
            if msg_id is None:
                continue
            for i, rec in enumerate(history.records):
                if (rec.service == "queue" and rec.op == "put_message"
                        and rec.ok and rec.time <= promoted_at
                        and rec.result.get("message_id") == msg_id):
                    history.records[i] = OpRecord(
                        seq=rec.seq, time=rec.time, service=rec.service,
                        op=rec.op, target=rec.target, request=rec.request,
                        result={"message_id": None}, error=rec.error,
                        faults=rec.faults + ("geo_failover",))
                    _erase_message_before(history, rec.target, msg_id,
                                          promoted_at)
                    exempted += 1
                    break
        elif lrec.service == "table":
            for i, rec in enumerate(history.records):
                if (rec.service == "table" and rec.op == lrec.method
                        and rec.ok and rec.time == lrec.time
                        and rec.target == lrec.meta.get("table", rec.target)
                        and rec.request.get("partition_key",
                                            lrec.meta.get("pk"))
                        == lrec.meta.get("pk",
                                         rec.request.get("partition_key"))
                        and rec.request.get("row_key", lrec.meta.get("rk"))
                        == lrec.meta.get("rk",
                                         rec.request.get("row_key"))):
                    del history.records[i]
                    exempted += 1
                    break
    return exempted


def run_geo_chaos(profile: str = "region-outage", seed: int = 0, *,
                  lag_s: float = 2.0, workers: int = 3,
                  failover: Optional[str] = None,
                  failover_delay_s: float = 2.0,
                  write_s: float = 36.0, horizon: float = 240.0,
                  retry_budget: int = RETRY_BUDGET,
                  splice: bool = False) -> ChaosVerdict:
    """The geo conformance campaign: one seeded run, fully checked.

    ``failover`` is ``None`` (profile default: forced for
    ``geo-failover``, none otherwise), ``"planned"`` (drain first, zero
    loss) or ``"forced"`` (promote as-is, bounded loss).
    """
    if failover is None:
        failover = _DEFAULT_FAILOVER.get(profile)
    if failover not in (None, "planned", "forced"):
        raise ValueError(f"unknown failover mode {failover!r}")

    schedule = build_schedule(profile, seed=seed)
    verdict = ChaosVerdict(workload="geo", profile=profile, seed=seed,
                           runs=[f"geo:{profile}@{workers}"],
                           schedules=[schedule.describe()])
    history = History()
    probes: List[Tuple] = []
    try:
        env = Environment()
        geo = GeoAccount(env, seed=seed, lag_s=lag_s)
        plan = schedule.plan()
        plan.subscribe(history.on_fault)
        geo.set_fault_plan(plan)
        audit_account(geo, history)

        #: Per-writer heartbeat acks: (ack_time, row_key, value) — the
        #: campaign's own ground truth for the staleness probes.
        hb_log: List[Tuple[float, str, int]] = []
        done = {"writers": False}

        def writer(w: int):
            qc = geo.queue_client()
            tc = geo.table_client()
            bc = geo.blob_client()
            v = 0
            pace = 0.6 + 0.1 * w
            while env.now < write_s:
                v += 1
                rk = f"w{w}"
                yield from retrying(
                    env, lambda val=v, r=rk: tc.insert_or_replace(
                        "geohb", "hb", r, {"v": val}),
                    max_retries=retry_budget)
                hb_log.append((env.now, rk, v))
                yield from retrying(
                    env, lambda val=v, r=rk: qc.put_message(
                        "geojobs", f"{r}-{val}".encode()),
                    max_retries=retry_budget)
                if v % 4 == 0:
                    blob = f"{rk}-{v}"
                    data = (blob * 8).encode()
                    yield from retrying(
                        env, lambda b=blob, d=data: bc.upload_blob(
                            "geodata", b, d),
                        max_retries=retry_budget)
                    try:
                        yield from retrying(
                            env, lambda b=blob: bc.download_block_blob(
                                "geodata", b),
                            max_retries=retry_budget)
                    except ResourceNotFoundError:
                        # RA-GRS fallback read landed on the secondary
                        # before the blob shipped — legitimately stale.
                        pass
                if v % 3 == 0:
                    # Optimistic concurrency on a contended row: read,
                    # conditional-update, retry on ETag mismatch.  A
                    # fallback read during an outage yields a stale
                    # (secondary) ETag, which must *lose*, never fork.
                    for _ in range(6):
                        try:
                            e = yield from retrying(
                                env, lambda: tc.get("geohb", "hb", "shared"),
                                max_retries=retry_budget)
                        except ResourceNotFoundError:
                            break
                        try:
                            yield from retrying(
                                env,
                                lambda ent=e: tc.update(
                                    "geohb", "hb", "shared",
                                    {"n": int(ent.get("n")) + 1},
                                    etag=ent.etag),
                                max_retries=retry_budget)
                        except ETagMismatchError:
                            continue
                        break
                yield env.timeout(pace)

        def reader():
            # A dashboard-style consumer of pure reads.  During a primary
            # outage these are exactly the calls RA-GRS keeps serving:
            # the GeoClient re-issues them against the secondary.
            qc = geo.queue_client()
            tc = geo.table_client()
            while not done["writers"] and not geo.controller.promoted:
                yield env.timeout(0.9)
                if done["writers"] or geo.controller.promoted:
                    return
                try:
                    yield from qc.get_message_count("geojobs")
                    yield from qc.peek_message("geojobs")
                    yield from tc.get("geohb", "hb", "shared")
                except StorageError:
                    continue

        def monitor():
            stc = geo.secondary_table_client()
            while not done["writers"] and not geo.controller.promoted:
                yield env.timeout(0.7)
                if done["writers"] or geo.controller.promoted:
                    return
                # Sample the watermark *before* the read: the floor only
                # ever grows while the probe is in flight, so the
                # guarantee stays sound against DES interleaving.
                lst = geo.replicator.last_sync_time
                floor = max((v for (t, r, v) in hb_log
                             if r == "w0" and t < lst), default=0)
                try:
                    e = yield from stc.get("geohb", "hb", "w0")
                except StorageError:
                    continue
                primary_val = max((v for (t, r, v) in hb_log if r == "w0"),
                                  default=0)
                probes.append(("probe", env.now, primary_val, floor,
                               int(e.get("v"))))

        def failover_driver():
            outage = [s for s in schedule.specs
                      if s.kind is FaultKind.REGION_OUTAGE]
            at = (outage[0].start + 3.0) if outage else 10.0
            if at > env.now:
                yield env.timeout(at - env.now)
            yield from geo.failover_process(failover,
                                            delay_s=failover_delay_s)

        def coordinator():
            qc = geo.queue_client()
            tc = geo.table_client()
            bc = geo.blob_client()
            yield from retrying(env, lambda: qc.create_queue("geojobs"),
                                max_retries=retry_budget)
            yield from retrying(env, lambda: tc.create_table("geohb"),
                                max_retries=retry_budget)
            yield from retrying(
                env, lambda: bc.create_container("geodata"),
                max_retries=retry_budget)
            yield from retrying(
                env, lambda: tc.insert_or_replace("geohb", "hb", "shared",
                                                  {"n": 0}),
                max_retries=retry_budget)
            writer_procs = [env.process(writer(w), name=f"geo-writer-{w}")
                            for w in range(workers)]
            yield AllOf(env, writer_procs)
            done["writers"] = True
            if failover is not None:
                while not geo.controller.promoted:
                    yield env.timeout(0.5)
            else:
                while geo.replicator.backlog > 0:
                    yield env.timeout(0.5)
            # Post-incident drain: every surviving message is consumed
            # and deleted exactly once, wherever the endpoint now lives.
            while True:
                msg = yield from retrying(
                    env, lambda: qc.get_message("geojobs",
                                                visibility_timeout=30.0),
                    max_retries=retry_budget)
                if msg is None:
                    break
                yield from retrying(
                    env, lambda m=msg: qc.delete_message(
                        "geojobs", m.message_id, m.pop_receipt),
                    max_retries=retry_budget)
            if not geo.controller.promoted:
                while geo.replicator.backlog > 0:
                    yield env.timeout(0.5)

        coord = env.process(coordinator(), name="geo-coordinator")
        env.process(reader(), name="geo-reader")
        env.process(monitor(), name="geo-monitor")
        if failover is not None:
            env.process(failover_driver(), name="geo-failover-driver")
        env.run(until=AnyOf(env, [coord, env.timeout(horizon)]))
        completed = coord.callbacks is None

        exempted = 0
        if geo.controller.promoted:
            exempted = _exempt_failover_losses(
                history, geo.controller.lost_records,
                geo.controller.promoted_at)
        history.snapshot_final_state(geo.state)
    except Exception as exc:
        verdict.counts = {"audited_ops": len(history.records)}
        raise _crash_verdict(verdict, f"geo:{profile}", exc) from exc

    if not completed:
        verdict.violations.append(Violation(
            "harness",
            f"geo campaign did not complete within the {horizon:g}s "
            f"horizon"))
    verdict.violations.extend(check_history(history))
    ledger_violations, spliced = _geo_ledger_violations(
        geo, probes, schedule, splice=splice)
    verdict.violations.extend(ledger_violations)
    verdict.geo = {
        **geo.describe(),
        "failover": failover or "none",
        "staleness_allowance": round(_staleness_allowance(geo, schedule), 3),
        "exempted_records": exempted,
    }
    verdict.counts = {
        "audited_ops": len(history.records),
        "faults_injected": len(history.fault_events),
        "log_records": len(geo.log),
        "shipped": len(geo.replicator.ship_events),
        "lost_records": len(geo.controller.lost_records),
        "probes": len(probes),
        "heartbeat_acks": len(hb_log),
        "secondary_reads": geo.controller.stats["secondary_reads"],
        "completion_time": round(env.now, 3),
    }
    if splice:
        verdict.counts["spliced"] = spliced
    return verdict


def run_elasticity(profile: str = "region-outage", seed: int = 0, *,
                   tasks: int = 24, workers: int = 2, work_s: float = 1.0,
                   lag_s: float = 2.0, max_instances: Optional[int] = None,
                   horizon: float = 400.0,
                   retry_budget: int = RETRY_BUDGET,
                   arrival=None) -> ChaosVerdict:
    """The bag-of-tasks app on a geo account with an elastic worker fleet.

    A deliberately under-provisioned pool (``workers``) faces ``tasks``
    tasks; the :class:`~repro.compute.autoscaler.Autoscaler` watches the
    task-queue backlog and grows the fleet — including while the region
    outage (or eviction churn) from ``profile`` is in progress.  The
    verdict requires completion, at least one scale-out, every task's
    result exactly once, and the full history conformance checks.

    ``arrival`` (an :class:`repro.traffic.ArrivalSpec`, optional) turns
    the fixed task bag into an open-loop stream: the web role submits
    task ``i`` at the spec's ``i``-th seeded arrival instant instead of
    dumping the whole bag at t=0, so the autoscaler reacts to a live
    arrival process (ROADMAP item 5).  The conformance checks are
    unchanged — arrival pacing moves *when* tasks enter the pool, never
    how many.
    """
    from ..compute import Autoscaler, Fabric, Supervisor
    from ..compute.roles import RoleStatus
    from ..framework import TaskPoolApp, TaskPoolConfig

    busy = work_s * tasks / max(1, workers)
    schedule = build_schedule(profile, seed=seed, workers=workers,
                              crash_window=(2.0, max(3.0, 2.0 + 0.8 * busy)))
    verdict = ChaosVerdict(workload="elasticity", profile=profile, seed=seed,
                           runs=[f"elasticity@{workers}+auto"],
                           schedules=[schedule.describe()])
    history = History()
    try:
        env = Environment()
        geo = GeoAccount(env, seed=seed, lag_s=lag_s)
        plan = schedule.plan()
        plan.subscribe(history.on_fault)
        geo.set_fault_plan(plan)
        audit_account(geo, history)

        def handler(ctx, payload):
            yield ctx.sleep(work_s)
            return payload

        config = TaskPoolConfig(name="geoelastic", visibility_timeout=90.0,
                                idle_poll_interval=0.5)
        app = TaskPoolApp(config, handler)
        payloads = [f"task-{i}".encode() for i in range(tasks)]

        submit_times = None
        require_scaleout = True
        if arrival is not None:
            submit_times = arrival.build().take(tasks)
            # The stream's tail arrives after t=0 bags would have finished;
            # stretch the completion horizon by the submission span.
            horizon += submit_times[-1]
            # A paced stream below the fleet's service rate never builds a
            # backlog, so staying at min_instances is the *correct*
            # autoscaler behaviour — only an overloading stream must force
            # a scale-out.
            span = submit_times[-1]
            offered = tasks / span if span > 0 else float("inf")
            require_scaleout = offered > workers / work_s

        fabric = Fabric(env, geo)
        web = fabric.deploy(
            app.web_role_body(payloads, poll_interval=0.5,
                              submit_times=submit_times),
            instances=1, name="web")
        pool = fabric.deploy(app.worker_role_body(), instances=workers,
                             name="workers", contain_crashes=True)
        supervisor = Supervisor(pool, recycle_delay=3.0).start()

        def backlog_fn() -> int:
            queues = geo.state.queues.queues
            return sum(
                len(queues[config.task_queue_name(i)]._messages)
                for i in range(config.task_queues)
                if config.task_queue_name(i) in queues)

        scaler = Autoscaler(
            env, pool, backlog_fn,
            high_watermark=4, low_watermark=0,
            check_interval=1.5, cooldown=4.0,
            min_instances=workers,
            max_instances=max_instances or workers + 4,
        ).start()

        def crash_driver():
            now = 0.0
            for event in schedule.crashes:
                if event.time > now:
                    yield env.timeout(event.time - now)
                    now = event.time
                if event.role_id >= len(pool.instances):
                    continue
                instance = pool.instances[event.role_id]
                if instance.status is RoleStatus.RUNNING:
                    pool.fail_instance(event.role_id, cause="chaos kill")
                    history.crash_events.append(
                        (env.now, "crash", event.role_id))

        if schedule.crashes:
            env.process(crash_driver(), name="chaos-crash-driver")
        fabric.start_all()
        web_done = web.all_done_event()
        env.run(until=AnyOf(env, [web_done, env.timeout(horizon)]))
        completed = web_done.callbacks is None
        scaler.stop()
        supervisor.stop()
        env.run(until=env.timeout(config.idle_poll_interval * 4 + 2.0))
        for record in supervisor.restarts:
            history.crash_events.append(
                (record.restarted_at, "restart", record.role_id))
        history.crash_events.sort()
        if not geo.controller.promoted:
            # Let the shipper drain so the ledger's prefix law sees a
            # settled frontier.
            settle = env.timeout(
                geo.lag_s + 4.0 * geo.replicator.poll_interval + 1.0)
            env.run(until=settle)
        history.snapshot_final_state(geo.state)
    except Exception as exc:
        verdict.counts = {"audited_ops": len(history.records)}
        raise _crash_verdict(verdict, f"elasticity:{profile}", exc) from exc

    if not completed:
        verdict.violations.append(Violation(
            "harness",
            f"elasticity run did not complete within the {horizon:g}s "
            f"horizon"))
    verdict.violations.extend(check_history(history, completed=completed))
    if completed:
        got = sorted(r.payload for r in app.results)
        want = sorted(payloads)
        dup_injected = any(e[1] == "duplicate_delivery"
                           for e in history.fault_events)
        if got != want and not dup_injected:
            verdict.violations.append(Violation(
                "elasticity",
                f"collected results do not cover every task exactly once: "
                f"{len(got)} results for {len(want)} tasks"))
        elif dup_injected:
            phantoms = set(got) - set(want)
            if phantoms:
                verdict.violations.append(Violation(
                    "elasticity",
                    f"{len(phantoms)} result(s) match no submitted task"))
    if scaler.scale_outs < 1 and require_scaleout:
        verdict.violations.append(Violation(
            "elasticity",
            f"autoscaler never scaled out despite a backlog of "
            f"{tasks} tasks over {workers} workers"))
    ledger_violations, _ = _geo_ledger_violations(geo, [], schedule)
    verdict.violations.extend(ledger_violations)
    verdict.geo = {**geo.describe(), "autoscaler": scaler.describe()}
    if arrival is not None:
        verdict.geo["arrival"] = arrival.describe()
    verdict.counts = {
        "tasks": tasks,
        "results_collected": len(app.results),
        "initial_workers": workers,
        "peak_workers": scaler.describe()["peak_instances"],
        "scale_outs": scaler.scale_outs,
        "scale_ins": scaler.scale_ins,
        "worker_crashes": sum(1 for e in history.crash_events
                              if e[1] == "crash"),
        "worker_restarts": supervisor.restart_count,
        "audited_ops": len(history.records),
        "faults_injected": len(history.fault_events),
        "log_records": len(geo.log),
        "shipped": len(geo.replicator.ship_events),
        "completion_time": round(env.now, 3),
    }
    return verdict
