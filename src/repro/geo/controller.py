"""Failover orchestration for a geo-replicated account.

The :class:`GeoController` is the single authority the two geo pipeline
interceptors (:class:`~repro.pipeline.interceptors.GeoRoutingInterceptor`
on the primary, :class:`~repro.pipeline.interceptors.GeoSecondaryInterceptor`
on the secondary) consult per operation, and the driver of the two
failover modes the 2012 service distinguished:

* **planned** — mutations on the primary are frozen (rejected with the
  retryable 503 so clients back off), the replication backlog drains
  completely, and only then is the secondary promoted: **zero data
  loss** by construction.
* **forced** — the secondary is promoted as-is after ``delay_s`` (the
  DNS repoint); every mutation acknowledged at or after the final Last
  Sync Time is lost — the bounded-loss contract the geo ledger's
  durability law verifies.

After promotion the old primary is decommissioned: anything still
routed there is rejected, and the promoted secondary accepts writes.
"""

from __future__ import annotations

from ..cluster.ops import OpKind, WRITE_KINDS
from ..faults.spec import FaultKind
from ..storage.errors import RegionDownError, SecondaryReadOnlyError

__all__ = ["GeoController", "MUTATING_KINDS"]

#: Descriptor kinds an RA-GRS secondary must reject until promoted.
#: ``GET_MESSAGE`` is not in :data:`~repro.cluster.ops.WRITE_KINDS` (it
#: is billed as a read) but consumes visibility — the real secondary
#: endpoint only allowed Peek, never Get.
MUTATING_KINDS = frozenset(WRITE_KINDS | {OpKind.GET_MESSAGE})


class GeoController:
    """Region health, routing admission, and failover state machine."""

    def __init__(self, env, replicator, log) -> None:
        self.env = env
        self.replicator = replicator
        self.log = log
        #: ``region_outage`` fault windows, keyed by target region.
        self.outages = {"primary": [], "secondary": []}
        self._recorder = None
        #: RA-GRS read fallback enabled (GRS-only accounts set it False).
        self.read_secondary = True
        self.draining = False
        self.promoted = False
        self.promoted_at = None
        self.failover_mode = None
        self.failover_requested_at = None
        #: Last Sync Time frozen at promotion — the loss bound.
        self.final_last_sync_time = None
        #: Records acknowledged but never shipped, snapshotted at
        #: promotion (forced failover's casualty list).
        self.lost_records = ()
        self.stats = {
            "primary_rejections": 0,
            "drain_rejections": 0,
            "secondary_write_rejections": 0,
            "secondary_reads": 0,
        }

    # -- configuration -----------------------------------------------------
    def install_outages(self, specs, recorder=None) -> None:
        """Arm ``region_outage`` windows (stripped from a FaultPlan).

        ``recorder`` is the plan itself: every per-op rejection is
        reported back through ``record_external`` so the unified fault
        trace and its listeners (span attribution) see the injections.
        """
        for spec in specs:
            region = spec.region or "primary"
            self.outages[region].append(spec)
        if recorder is not None:
            self._recorder = recorder

    def region_down(self, region: str, now: float) -> bool:
        """Is an injected outage window open against ``region``?"""
        return any(s.active(now) for s in self.outages[region])

    def _record(self, op, now: float) -> None:
        if self._recorder is not None:
            self._recorder.record_external(
                FaultKind.REGION_OUTAGE, op.service.value, op.partition, now)

    # -- pipeline admission (called by the geo interceptors) ---------------
    def check_primary(self, ctx) -> None:
        """Admission on the primary endpoint; raise to reject."""
        op = ctx.op
        now = ctx.started_at
        if self.promoted:
            self.stats["primary_rejections"] += 1
            raise RegionDownError(
                "primary region decommissioned after failover; "
                "the promoted secondary is the account endpoint now")
        if self.region_down("primary", now):
            self.stats["primary_rejections"] += 1
            self._record(op, now)
            raise RegionDownError(
                f"{op.service.value} primary region unavailable "
                f"(injected region outage)")
        if self.draining and op.kind in MUTATING_KINDS:
            # Planned failover: mutations freeze so the backlog can
            # drain; not an injected fault, so nothing is recorded.
            self.stats["drain_rejections"] += 1
            raise RegionDownError(
                "primary mutations frozen for planned failover")

    def check_secondary(self, ctx) -> None:
        """Admission on the secondary endpoint; raise to reject."""
        op = ctx.op
        now = ctx.started_at
        if not self.promoted and self.region_down("secondary", now):
            self._record(op, now)
            raise RegionDownError(
                f"{op.service.value} secondary region unavailable "
                f"(injected region outage)")
        if not self.promoted and op.kind in MUTATING_KINDS:
            self.stats["secondary_write_rejections"] += 1
            raise SecondaryReadOnlyError(
                f"{op.kind.value} rejected: the RA-GRS secondary "
                f"endpoint is read-only until promoted")

    # -- failover ----------------------------------------------------------
    def failover(self, mode: str = "forced", *, delay_s: float = 2.0):
        """Process generator: drive a failover to promotion.

        Run it with ``env.process(controller.failover("forced"))``.
        Planned mode drains the replication backlog under a write freeze
        before promoting (zero loss); forced mode promotes after the
        ``delay_s`` repoint with the backlog abandoned (bounded loss).
        """
        if mode not in ("planned", "forced"):
            raise ValueError(f"unknown failover mode {mode!r}")
        if self.promoted:
            return
        self.failover_mode = mode
        self.failover_requested_at = self.env.now
        poll = self.replicator.poll_interval
        if mode == "planned":
            self.draining = True
            # Drain, wait out the repoint, then re-check: a mutation
            # in flight when the freeze landed may still append.
            while True:
                while self.replicator.backlog > 0:
                    yield self.env.timeout(poll)
                yield self.env.timeout(max(delay_s, poll))
                if self.replicator.backlog == 0:
                    break
        elif delay_s > 0:
            yield self.env.timeout(delay_s)
        self._promote()

    def _promote(self) -> None:
        self.final_last_sync_time = self.replicator.last_sync_time
        shipped = self.replicator.shipped_seqs()
        self.lost_records = tuple(
            r for r in self.log.records if r.seq not in shipped)
        self.promoted = True
        self.promoted_at = self.env.now
        self.draining = False
        self.replicator.stop()

    def describe(self) -> dict:
        """JSON-friendly failover summary for the chaos verdict."""
        return {
            "promoted": self.promoted,
            "failover_mode": self.failover_mode,
            "promoted_at": self.promoted_at,
            "final_last_sync_time": self.final_last_sync_time,
            "lost_records": len(self.lost_records),
            **{k: v for k, v in self.stats.items()},
        }
