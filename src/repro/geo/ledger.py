"""The geo-replication ledger: a mergeable accounting monoid.

The :class:`GeoLedger` is the geo counterpart of the queue-conservation
:class:`~repro.chaos.ledger.QueueLedger`: it folds plain *ledger events*
— tuples, so tests can synthesize histories without the harness — and
evaluates the replication contract as algebraic laws:

* ``("ack", seq, t)`` — the primary acknowledged mutation ``seq`` at
  time ``t`` (one per replication-log record);
* ``("ship", seq, ack_t, apply_t)`` — the shipper applied record
  ``seq`` (acked at ``ack_t``) on the secondary at ``apply_t``;
* ``("probe", t, primary, floor, secondary)`` — a staleness probe: at
  time ``t`` a monotone counter read ``secondary`` from the secondary
  endpoint while the primary's ground truth was ``primary`` and
  ``floor`` was the newest value acknowledged strictly before the Last
  Sync Time (the freshness the watermark *guarantees*);
* ``("promote", t, lst)`` — the secondary was promoted at ``t`` with
  final Last Sync Time ``lst``.

Every field is a :class:`frozenset`, so :meth:`GeoLedger.merge` is set
union — associative, commutative, with :meth:`GeoLedger.empty` as the
identity — and per-worker or per-phase sub-ledgers fold in any order
(the hypothesis suite in ``tests/geo/test_geo_ledger.py`` pins the
laws).

:meth:`GeoLedger.violations` checks:

1. no phantom ships (every shipped seq was acked, at the same ack time,
   at most once);
2. prefix shipping (records apply strictly in sequence order: no gaps
   behind a shipped record among earlier acked seqs, and apply times
   are monotone in seq);
3. causality and the lag bound (``ack_t <= apply_t``, and when
   ``max_lag`` is given, ``apply_t - ack_t <= max_lag``);
4. durability at promotion (every mutation acknowledged strictly before
   the final Last Sync Time was shipped — the bounded-loss contract of
   a forced failover), and at most one promotion;
5. probe staleness (``floor <= secondary <= primary``: the secondary is
   never newer than the primary nor staler than the Last Sync Time
   guarantees) and monotone secondary reads over probe time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["GeoLedger", "geo_ledger_from_events"]


@dataclass(frozen=True)
class GeoLedger:
    """Replication-contract accounting for one geo-replicated account."""

    #: (seq, ack_time) — primary acknowledgements (log records).
    acks: FrozenSet[Tuple[int, float]] = frozenset()
    #: (seq, ack_time, apply_time) — secondary applications.
    ships: FrozenSet[Tuple[int, float, float]] = frozenset()
    #: (time, primary, floor, secondary) — staleness probes.
    probes: FrozenSet[Tuple[float, int, int, int]] = frozenset()
    #: (time, last_sync_time) — promotions (at most one is lawful).
    promotions: FrozenSet[Tuple[float, float]] = frozenset()

    # -- monoid ------------------------------------------------------------
    @classmethod
    def empty(cls) -> "GeoLedger":
        return cls()

    def merge(self, other: "GeoLedger") -> "GeoLedger":
        """Set union per field: associative, commutative, ``empty`` id."""
        return GeoLedger(
            acks=self.acks | other.acks,
            ships=self.ships | other.ships,
            probes=self.probes | other.probes,
            promotions=self.promotions | other.promotions,
        )

    # -- folding -----------------------------------------------------------
    def observe(self, event: Tuple) -> "GeoLedger":
        """Fold one ledger event (returns a new ledger)."""
        return self.merge(geo_ledger_from_events([event]))

    # -- derived -----------------------------------------------------------
    def shipped_seqs(self) -> FrozenSet[int]:
        return frozenset(seq for (seq, _, _) in self.ships)

    def final_last_sync_time(self) -> Optional[float]:
        """The promotion watermark, if the account failed over."""
        if not self.promotions:
            return None
        return max(lst for (_, lst) in self.promotions)

    # -- the laws ----------------------------------------------------------
    def violations(self, *, max_lag: Optional[float] = None) -> List[str]:
        """Every replication-contract breach, as human-readable strings.

        ``max_lag`` is the caller's total staleness allowance — the
        configured replication lag plus any injected stall width plus
        shipper poll slack; ``None`` skips the lag-bound law (stall
        windows legitimately stretch apply times).
        """
        out: List[str] = []
        ack_times: Dict[int, float] = {}
        for seq, t in sorted(self.acks):
            if seq in ack_times and ack_times[seq] != t:
                out.append(
                    f"record {seq} acknowledged twice at different times "
                    f"({ack_times[seq]:.6f} and {t:.6f})")
            ack_times.setdefault(seq, t)

        ship_by_seq: Dict[int, List[Tuple[float, float]]] = {}
        for seq, ack_t, apply_t in sorted(self.ships):
            ship_by_seq.setdefault(seq, []).append((ack_t, apply_t))
        for seq, entries in sorted(ship_by_seq.items()):
            if seq not in ack_times:
                out.append(
                    f"record {seq} shipped without an acknowledgement "
                    f"(phantom ship)")
                continue
            if len(entries) > 1:
                out.append(
                    f"record {seq} shipped {len(entries)} times "
                    f"(duplicate application)")
            for ack_t, apply_t in entries:
                if ack_t != ack_times[seq]:
                    out.append(
                        f"record {seq} shipped with ack time {ack_t:.6f} "
                        f"but was acknowledged at {ack_times[seq]:.6f}")
                if apply_t < ack_t:
                    out.append(
                        f"record {seq} applied at {apply_t:.6f}, before "
                        f"its acknowledgement at {ack_t:.6f} (time travel)")
                elif (max_lag is not None
                      and apply_t - ack_t > max_lag
                      and not math.isclose(apply_t - ack_t, max_lag,
                                           rel_tol=1e-9, abs_tol=1e-9)):
                    # The tolerance forgives float rounding only: an
                    # apply at exactly ack + lag must not be flagged
                    # because (ack + lag) - ack landed one ULP high.
                    out.append(
                        f"record {seq} applied {apply_t - ack_t:.3f}s "
                        f"after its ack, beyond the {max_lag:.3f}s "
                        f"staleness allowance")

        # Prefix shipping: behind any shipped record, every earlier
        # acked seq must be shipped too, and applies are seq-ordered.
        shipped = self.shipped_seqs()
        if shipped:
            frontier = max(shipped)
            for seq in sorted(ack_times):
                if seq < frontier and seq not in shipped:
                    out.append(
                        f"record {seq} skipped: later record {frontier} "
                        f"shipped first (gap in the log prefix)")
            last_apply = None
            for seq in sorted(ship_by_seq):
                for _, apply_t in ship_by_seq[seq]:
                    if last_apply is not None and apply_t < last_apply:
                        out.append(
                            f"record {seq} applied at {apply_t:.6f}, "
                            f"earlier than a lower-seq record "
                            f"({last_apply:.6f}) — out-of-order replay")
                    last_apply = (apply_t if last_apply is None
                                  else max(last_apply, apply_t))

        if len(self.promotions) > 1:
            out.append(
                f"{len(self.promotions)} promotions recorded; a failover "
                f"promotes the secondary at most once")
        lst = self.final_last_sync_time()
        if lst is not None:
            for seq, t in sorted(ack_times.items()):
                if t < lst and seq not in shipped:
                    out.append(
                        f"record {seq} (acked at {t:.6f}) lost by failover "
                        f"despite Last Sync Time {lst:.6f} covering it")

        last_secondary = None
        for t, primary, floor, secondary in sorted(self.probes):
            if secondary > primary:
                out.append(
                    f"probe at {t:.6f}: secondary read {secondary} newer "
                    f"than the primary's {primary}")
            if secondary < floor:
                out.append(
                    f"probe at {t:.6f}: secondary read {secondary} older "
                    f"than the Last-Sync-Time floor {floor}")
            if last_secondary is not None and secondary < last_secondary:
                out.append(
                    f"probe at {t:.6f}: secondary read {secondary} went "
                    f"backwards (previous probe saw {last_secondary})")
            last_secondary = secondary
        return out


def geo_ledger_from_events(events: Iterable[Tuple]) -> GeoLedger:
    """Fold plain geo ledger events into one :class:`GeoLedger`."""
    acks = set()
    ships = set()
    probes = set()
    promotions = set()
    for event in events:
        kind = event[0]
        if kind == "ack":
            acks.add((event[1], event[2]))
        elif kind == "ship":
            ships.add((event[1], event[2], event[3]))
        elif kind == "probe":
            probes.add((event[1], event[2], event[3], event[4]))
        elif kind == "promote":
            promotions.add((event[1], event[2]))
        else:
            raise ValueError(f"unknown geo ledger event kind {kind!r}")
    return GeoLedger(
        acks=frozenset(acks), ships=frozenset(ships),
        probes=frozenset(probes), promotions=frozenset(promotions),
    )
