"""Asynchronous geo-replication: the log, the shipper, Last Sync Time.

The 2012-era geo-redundant storage (GRS) design (Calder et al., SOSP'11
§2.4) replicates committed mutations *asynchronously* from the primary
stamp to a paired secondary stamp: the primary acknowledges as soon as
the write is durable locally, an inter-stamp shipper applies the
transaction log on the secondary in commit order, and the account
exposes a **Last Sync Time** — the instant ``t`` such that every write
acknowledged strictly before ``t`` has been applied on the secondary.
A forced failover can therefore lose exactly the writes acknowledged at
or after the final Last Sync Time, and nothing else.

This module reproduces that contract on the simulated fabric:

* :class:`ReplicationLog` — the append-only inter-stamp transaction log;
  one :class:`ReplicationRecord` per acknowledged mutating operation on
  the primary, in acknowledgement order.
* :class:`GeoReplicator` — the shipper, a simkit process applying records
  on the secondary ``lag_s`` seconds after their primary ack, deferring
  across ``replication_stall`` fault windows (Last Sync Time freezes
  while the primary keeps acknowledging — the growing loss bound).
* :class:`ReplayClock` — the secondary stamp's clock, pinned to each
  record's original ack instant during replay.

**Replay is bit-exact.**  ETags, queue message ids, and pop receipts are
all drawn from per-account counters, and every timestamp the data plane
records comes from the account clock — so applying the same mutations in
the same order with the clock pinned to the original ack times produces
a secondary whose state (ids, ETags, insertion timestamps) is identical
to the primary's at the Last Sync Time watermark.  The shipper drives
the shared operation-registry bodies directly against the secondary's
state — no pipeline, no cost model, no fault hooks and **no RNG**: a
geo-replicated run draws exactly the same random numbers as a
single-region run (the determinism contract the golden-trace test
pins).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..faults.spec import FaultKind, FaultSpec
from ..pipeline.registry import OPERATIONS, OpCall
from ..storage.errors import StorageError

__all__ = [
    "ReplicationRecord",
    "ReplicationLog",
    "ReplayClock",
    "GeoReplicator",
]


@dataclass(frozen=True)
class ReplicationRecord:
    """One acknowledged primary mutation, as shipped inter-stamp.

    ``time`` is the primary's acknowledgement instant — the commit time
    the durability contract is stated against.  ``service``/``method``
    name the shared registry operation; ``args``/``kwargs`` are the
    original call arguments (the log ships logical operations, not byte
    diffs, exactly like the stamp-to-stamp transaction shipping of
    SOSP'11).  ``meta`` carries result identifiers (message id, ETag,
    target names) so failover accounting can name what a lost record
    would have created.
    """

    seq: int
    time: float
    service: str
    method: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)


class ReplicationLog:
    """The append-only inter-stamp transaction log (ack order)."""

    def __init__(self) -> None:
        self.records: List[ReplicationRecord] = []

    def append(self, now: float, service: str, method: str,
               args: Tuple[Any, ...], kwargs: Dict[str, Any],
               meta: Optional[Dict[str, Any]] = None) -> ReplicationRecord:
        rec = ReplicationRecord(
            seq=len(self.records), time=now, service=service, method=method,
            args=tuple(args), kwargs=dict(kwargs), meta=dict(meta or {}),
        )
        self.records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


class ReplayClock:
    """The secondary stamp's clock: simulation time, pinnable for replay.

    Reads against the secondary see the live simulation time; while the
    shipper applies a log record it pins the clock to the record's
    original primary ack instant, so every timestamp the data plane
    stamps (ETag datetimes, message insertion/visibility times, entity
    timestamps) is identical to the value the primary produced.
    """

    def __init__(self, env) -> None:
        self._env = env
        self._pinned: Optional[float] = None

    def now(self) -> float:
        return self._env.now if self._pinned is None else self._pinned

    def pin(self, instant: float) -> None:
        self._pinned = instant

    def unpin(self) -> None:
        self._pinned = None


class GeoReplicator:
    """The inter-stamp shipper: a simkit process applying the log.

    Records become due ``lag_s`` seconds after their primary ack, are
    deferred across any ``replication_stall`` fault window, and are
    applied strictly in sequence (no gaps, no reordering — the prefix
    property the :class:`~repro.geo.ledger.GeoLedger` laws check).

    :attr:`last_sync_time` is the exposed watermark: the ack time of the
    newest applied record, advanced to "now" whenever the backlog is
    empty outside a stall window.  The durability contract is *strict*:
    every mutation acknowledged strictly **before** ``last_sync_time``
    has been applied on the secondary.
    """

    def __init__(self, env, log: ReplicationLog, secondary, *,
                 lag_s: float = 4.0, poll_interval: float = 0.25) -> None:
        if lag_s < 0:
            raise ValueError("lag_s must be >= 0")
        self.env = env
        self.log = log
        self.secondary = secondary
        self.lag_s = lag_s
        self.poll_interval = poll_interval
        self.clock: ReplayClock = secondary.replay_clock
        #: The exposed Last Sync Time watermark (see class docstring).
        self.last_sync_time = 0.0
        #: ``(seq, ack_time, apply_time)`` per applied record — the
        #: shipping trace the geo ledger's "ship" events come from.
        self.ship_events: List[Tuple[int, float, float]] = []
        #: ``(seq, error_type, message)`` per record whose replay raised —
        #: replica divergence, always a verdict violation.
        self.apply_errors: List[Tuple[int, str, str]] = []
        self.stall_specs: List[FaultSpec] = []
        self._recorder = None
        self._noted_stalls: Set[int] = set()
        self._next = 0
        self._stopped = False
        self._process = None
        # Replay bypasses the pipeline and the fault hooks: plan_fn is
        # None so injected queue anomalies never re-fire during replay.
        self._replay_call = OpCall(
            secondary.state, secondary.cache_state,
            now_fn=self.clock.now, plan_fn=lambda: None,
        )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "GeoReplicator":
        self._process = self.env.process(self._run())
        return self

    def stop(self) -> None:
        """Halt shipping (failover promotes the secondary as-is)."""
        self._stopped = True

    # -- introspection -----------------------------------------------------
    @property
    def backlog(self) -> int:
        """Acknowledged-but-unapplied records."""
        return len(self.log) - self._next

    @property
    def next_index(self) -> int:
        return self._next

    def shipped_seqs(self) -> Set[int]:
        return {seq for (seq, _, _) in self.ship_events}

    # -- stall windows -----------------------------------------------------
    def set_stalls(self, specs, recorder=None) -> None:
        """Arm ``replication_stall`` windows (stripped from a FaultPlan).

        ``recorder`` is the plan itself; each window is reported back
        through :meth:`~repro.faults.plan.FaultPlan.record_external` once,
        so the unified fault trace shows the stall.
        """
        self.stall_specs = list(specs)
        if recorder is not None:
            self._recorder = recorder

    def _note_stall(self, spec: FaultSpec) -> None:
        key = id(spec)
        if key in self._noted_stalls:
            return
        self._noted_stalls.add(key)
        if self._recorder is not None:
            self._recorder.record_external(
                FaultKind.REPLICATION_STALL, "geo", "replication", spec.start)

    def _in_stall(self, now: float) -> bool:
        return any(s.start <= now < s.end for s in self.stall_specs)

    def _deferred(self, due: float) -> float:
        """Push a due time past the lag and any stall window it lands in."""
        moved = True
        while moved:
            moved = False
            if due < self.env.now:
                due = self.env.now
            for spec in self.stall_specs:
                if spec.start <= due < spec.end:
                    due = spec.end
                    moved = True
                    self._note_stall(spec)
        return due

    # -- the shipper process -----------------------------------------------
    def _run(self):
        while not self._stopped:
            if self._next < len(self.log.records):
                rec = self.log.records[self._next]
                due = self._deferred(rec.time + self.lag_s)
                if due > self.env.now:
                    yield self.env.timeout(due - self.env.now)
                    continue
                self._apply(rec)
            else:
                if (self.env.now > self.last_sync_time
                        and not self._in_stall(self.env.now)):
                    # Drained and not stalled: everything acknowledged
                    # before this instant has been applied.
                    self.last_sync_time = self.env.now
                yield self.env.timeout(self.poll_interval)

    def _apply(self, rec: ReplicationRecord) -> None:
        spec = OPERATIONS[rec.service][rec.method]
        self.clock.pin(rec.time)
        try:
            gen = spec.body(self._replay_call, *rec.args, **rec.kwargs)
            next(gen)  # the single OpDescriptor — replay charges nothing
            try:
                gen.send(None)
            except StopIteration:
                pass
        except StorageError as exc:
            self.apply_errors.append((rec.seq, type(exc).__name__, str(exc)))
        else:
            self.ship_events.append((rec.seq, rec.time, self.env.now))
            if rec.time > self.last_sync_time:
                self.last_sync_time = rec.time
        finally:
            self.clock.unpin()
            self._next += 1
