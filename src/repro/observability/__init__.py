"""Trace-level observability for the storage-operation pipeline.

The paper reports per-phase times and throughputs; this package explains
them.  A :class:`Tracer` interceptor at the front of the shared pipeline
emits one attributed :class:`Span` per storage round trip — worker role,
benchmark phase, target partition server, fault/throttle verdicts, retry
burn — into a bounded :class:`TraceBuffer` with JSONL and Chrome
trace-event exporters (one track per worker role in Perfetto), plus
mergeable log-bucketed latency :class:`Histogram` rollups and a
:class:`RunManifest` pinning the provenance (seed, calibration, backend,
version) of every figure output.

Tracing is opt-in (``RunConfig(trace=True)`` or ``repro trace <figure>``)
and reads only the backend clock: enabling it does not move a single
simulated event.
"""

from .buffer import TraceBuffer, chrome_trace
from .histogram import DEFAULT_GROWTH, Histogram, HistogramSet
from .manifest import RunManifest
from .span import STATUS_ERROR, STATUS_OK, Span
from .tracer import (
    Tracer,
    phase_totals,
    sim_worker_resolver,
    thread_worker_resolver,
)

__all__ = [
    "Span",
    "STATUS_OK",
    "STATUS_ERROR",
    "TraceBuffer",
    "chrome_trace",
    "Histogram",
    "HistogramSet",
    "DEFAULT_GROWTH",
    "RunManifest",
    "Tracer",
    "phase_totals",
    "sim_worker_resolver",
    "thread_worker_resolver",
]
