"""Bounded span storage plus the two on-disk trace formats.

:class:`TraceBuffer` keeps spans in completion order (the order the DES
or the emulator finished them), bounded so a runaway trace cannot exhaust
memory: once full, *new* spans are dropped and counted, keeping the
already-recorded prefix stable for digests.

Exporters:

* :meth:`TraceBuffer.to_jsonl` — one JSON object per line, the raw span
  schema (``docs/observability.md``).
* :func:`chrome_trace` / :meth:`TraceBuffer.to_chrome` — Chrome
  trace-event JSON loadable in Perfetto or ``chrome://tracing``: one
  process per traced run, one track (thread) per worker role, one
  complete ("X") event per span.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .span import Span

__all__ = ["TraceBuffer", "chrome_trace"]


class TraceBuffer:
    """Append-only, bounded, in-memory span store."""

    def __init__(self, capacity: Optional[int] = 1_000_000) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.capacity = capacity
        self._spans: List[Span] = []
        #: Spans rejected because the buffer was full.
        self.dropped = 0

    def append(self, span: Span) -> bool:
        """Record ``span``; False (and counted) if the buffer is full."""
        if self.capacity is not None and len(self._spans) >= self.capacity:
            self.dropped += 1
            return False
        self._spans.append(span)
        return True

    def __len__(self) -> int:
        return len(self._spans)

    def replace_last(self, span: Span) -> None:
        """Swap the most recent span (post-hoc fault attribution).

        The data-plane fault hooks (injected message loss / duplicate
        delivery) fire at the *apply* instant, after the span for the
        round trip was already recorded; the tracer rewrites that last
        span with its fault verdict.  No-op on an empty buffer.
        """
        if self._spans:
            self._spans[-1] = span

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    # -- digests -------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over the ordered span tuples (golden-trace tests).

        Byte-stable: two runs with the same seed, code, and dependency
        versions produce the same hex digest.
        """
        h = hashlib.sha256()
        for span in self._spans:
            h.update(repr(span.to_tuple()).encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()

    # -- exports ---------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The raw trace: one sorted-key JSON object per line."""
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True) for span in self._spans
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as f:
            text = self.to_jsonl()
            f.write(text + ("\n" if text else ""))

    def to_chrome(self, *, label: str = "trace", pid: int = 1) -> Dict:
        """This buffer alone as a Chrome trace-event document."""
        return chrome_trace([(label, self)], first_pid=pid)

    def write_chrome(self, path: str, *, label: str = "trace") -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome(label=label), f, sort_keys=True)


def _span_events(spans: Iterable[Span], pid: int) -> Tuple[List[Dict], List[str]]:
    """Complete events for one process; workers become tids in first-seen order."""
    tids: Dict[str, int] = {}
    events: List[Dict] = []
    for span in spans:
        worker = span.worker or "(unattributed)"
        tid = tids.setdefault(worker, len(tids) + 1)
        args = {
            "partition": span.partition,
            "nbytes": span.nbytes,
            "status": span.status,
            "retries": span.retries,
        }
        if span.phase is not None:
            args["phase"] = span.phase
        if span.server is not None:
            args["server"] = span.server
        if span.error:
            args["error"] = span.error
            args["error_code"] = span.error_code
        events.append({
            "name": f"{span.service}.{span.operation}",
            "cat": span.service,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            # Chrome trace timestamps are microseconds.
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "args": args,
        })
    return events, list(tids)


def chrome_trace(runs: Sequence[Tuple[str, "TraceBuffer"]], *,
                 first_pid: int = 1) -> Dict:
    """Merge traced runs into one Chrome trace-event document.

    Each ``(label, buffer)`` pair becomes one process (so a whole figure
    sweep — one traced run per worker count — lands in a single file),
    with one named track per worker role inside it.
    """
    events: List[Dict] = []
    for offset, (label, buffer) in enumerate(runs):
        pid = first_pid + offset
        events.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": label},
        })
        span_events, workers = _span_events(buffer, pid)
        for tid, worker in enumerate(workers, start=1):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": worker},
            })
        events.extend(span_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
