"""Mergeable log-bucketed latency histograms.

The paper reports one mean per (operation, size, worker-count) cell;
explaining tail behaviour needs percentiles.  :class:`Histogram` buckets
positive values into geometrically-growing bins (~9% relative resolution
at the default growth factor), so histograms from different workers,
worker counts, or whole runs can be **merged exactly** — merging is
associative and commutative because the state is integer bucket counts
plus min/max/count.  Percentile reads are approximate (bucket upper
bound) but always clamped into the observed ``[min, max]``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["Histogram", "HistogramSet", "DEFAULT_GROWTH"]

#: ~9% relative bucket width: 2 ** (1/8).
DEFAULT_GROWTH = 2.0 ** 0.125


class Histogram:
    """Log-bucketed histogram of non-negative values."""

    __slots__ = ("growth", "_log_growth", "counts", "zeros", "count",
                 "total", "min", "max")

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.growth = growth
        self._log_growth = math.log(growth)
        #: bucket index -> count; bucket ``i`` covers
        #: ``[growth**i, growth**(i+1))``.
        self.counts: Dict[int, int] = {}
        #: Exact-zero observations get their own bucket.
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording ---------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The bucket a positive ``value`` falls into."""
        if value <= 0:
            raise ValueError("bucket_index needs a positive value")
        return int(math.floor(math.log(value) / self._log_growth))

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``[low, high)`` bounds of one bucket."""
        return self.growth ** index, self.growth ** (index + 1)

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be >= 0")
        if value == 0:
            self.zeros += 1
        else:
            idx = self.bucket_index(value)
            self.counts[idx] = self.counts.get(idx, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    # -- merging -----------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both sets of observations.

        Pure on its inputs; associative and commutative over the compared
        state (bucket counts, count, min, max — see :meth:`__eq__`).
        """
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with different growth factors "
                f"({self.growth} vs {other.growth})")
        merged = Histogram(self.growth)
        merged.counts = dict(self.counts)
        for idx, n in other.counts.items():
            merged.counts[idx] = merged.counts.get(idx, 0) + n
        merged.zeros = self.zeros + other.zeros
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        merged.min = min(mins) if mins else None
        merged.max = max(maxs) if maxs else None
        return merged

    def __eq__(self, other: object) -> bool:
        # ``total`` is deliberately excluded: float addition is not
        # associative, and equality is what the merge laws are stated over.
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.growth == other.growth
                and self.counts == other.counts
                and self.zeros == other.zeros
                and self.count == other.count
                and self.min == other.min
                and self.max == other.max)

    __hash__ = None  # mutable container

    # -- reading -----------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (``0 < q <= 100``).

        Returns the upper bound of the bucket holding the q-th ranked
        observation, clamped into the observed ``[min, max]`` — so the
        result is always bounded by real data points.  0.0 when empty.
        """
        if not 0 < q <= 100:
            raise ValueError("q must be in (0, 100]")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q / 100.0 * self.count)
        cum = self.zeros
        if cum >= rank:
            value = 0.0
        else:
            value = self.max  # fallback: the top bucket
            for idx in sorted(self.counts):
                cum += self.counts[idx]
                if cum >= rank:
                    value = self.bucket_bounds(idx)[1]
                    break
        return min(max(value, self.min), self.max)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.p50 if self.count else 0.0,
            "p90": self.p90 if self.count else 0.0,
            "p99": self.p99 if self.count else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram n={self.count} min={self.min} max={self.max}>"


class HistogramSet:
    """Latency histograms keyed by ``service.operation``."""

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        self.growth = growth
        self._hists: Dict[str, Histogram] = {}

    @staticmethod
    def key(service: str, operation: str) -> str:
        return f"{service}.{operation}"

    def observe(self, service: str, operation: str, value: float) -> None:
        key = self.key(service, operation)
        hist = self._hists.get(key)
        if hist is None:
            hist = Histogram(self.growth)
            self._hists[key] = hist
        hist.observe(value)

    def get(self, service: str, operation: str) -> Optional[Histogram]:
        return self._hists.get(self.key(service, operation))

    def keys(self) -> Iterable[str]:
        return sorted(self._hists)

    def merge(self, other: "HistogramSet") -> "HistogramSet":
        merged = HistogramSet(self.growth)
        for key, hist in self._hists.items():
            theirs = other._hists.get(key)
            merged._hists[key] = hist.merge(theirs) if theirs else hist.merge(
                Histogram(self.growth))
        for key, hist in other._hists.items():
            if key not in self._hists:
                merged._hists[key] = Histogram(self.growth).merge(hist)
        return merged

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {key: self._hists[key].to_dict() for key in self.keys()}

    def __len__(self) -> int:
        return len(self._hists)
