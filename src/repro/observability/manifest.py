"""The run manifest: everything needed to reproduce a figure output.

A figure (or trace) without its seed, calibration, and backend is an
anecdote.  :class:`RunManifest` captures the full provenance of one run —
seed(s), the :class:`~repro.core.runner.RunConfig` knobs, the complete
:class:`~repro.cluster.calibration.FabricCalibration` and
:class:`~repro.storage.limits.ServiceLimits`, the backend, and the
package version — as a deterministic JSON document written alongside the
figure/trace artifacts.  No wall-clock timestamp is recorded on purpose:
two identical runs must produce byte-identical manifests.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["RunManifest"]


@dataclass(frozen=True)
class RunManifest:
    """Provenance record of one benchmark / figure / trace run."""

    #: What was produced ("fig6", "fig4/5", "all", ...).
    figure: str
    #: Benchmark scale name ("quick" / "paper"), "" for ad-hoc runs.
    scale: str
    #: Backend name ("sim" / "emulator").
    backend: str
    seed: int
    fifo_jitter_seed: Optional[int]
    #: Worker counts swept (single-run manifests hold one entry).
    workers: Tuple[int, ...]
    vm_size: str
    #: Whether trace-level observability was enabled.
    trace: bool
    package_version: str
    #: Full FabricCalibration constants, field -> value.
    calibration: Dict[str, Any] = field(default_factory=dict)
    #: Full ServiceLimits targets, field -> value.
    limits: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_config(cls, config, *, figure: str = "", scale: str = "",
                    workers: Optional[Tuple[int, ...]] = None) -> "RunManifest":
        """Build a manifest from a :class:`~repro.core.runner.RunConfig`."""
        from .. import __version__

        backend = config.backend
        backend_name = backend if isinstance(backend, str) else getattr(
            backend, "name", type(backend).__name__)
        return cls(
            figure=figure,
            scale=scale,
            backend=backend_name,
            seed=config.seed,
            fifo_jitter_seed=config.fifo_jitter_seed,
            workers=tuple(workers) if workers is not None else (config.workers,),
            vm_size=config.vm_size.name,
            trace=bool(getattr(config, "trace", False)),
            package_version=__version__,
            calibration=dataclasses.asdict(config.calibration),
            limits=dataclasses.asdict(config.limits),
        )

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["workers"] = list(self.workers)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")
