"""The span: one storage round trip, fully attributed.

A :class:`Span` is the trace-level record of a single operation crossing
the pipeline — the unit the paper's per-phase numbers are made of, but
with everything the aggregates throw away: *which* worker issued it,
*which* partition server absorbed it, what the fault and throttle stages
decided, and how the round trip ended.

All times are backend-clock readings (simulated seconds on the DES
fabric, account-clock seconds on the emulator); tracing never reads the
wall clock on the sim backend, so enabling it cannot perturb timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["Span", "STATUS_OK", "STATUS_ERROR"]

STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class Span:
    """One completed (or rejected) storage round trip."""

    #: Identifier of the traced run this span belongs to.
    trace_id: str
    #: Monotonic per-buffer sequence number (completion order).
    span_id: int
    #: Worker role that issued the op ("azurebench#3"), or "" if unknown.
    worker: str
    #: Open benchmark phase at completion ("put_16384"), or None when the
    #: op ran outside any recorded phase (barrier traffic, setup).
    phase: Optional[str]
    #: Executor that drove the round trip: "sim" or "emulator".
    backend: str
    #: Service / operation / partition from the :class:`OpDescriptor`.
    service: str
    operation: str
    partition: str
    #: Partition server that absorbed the op ("queue/azurebenchqueue0"),
    #: or None when no placement model applies (emulator, rejected ops).
    server: Optional[str]
    #: Payload bytes moved and units charged against per-second targets.
    nbytes: int
    units: int
    #: Backend-clock readings bracketing the round trip.
    start: float
    end: float
    #: Un-jittered server occupancy (0 where no cost model ran).
    server_latency: float
    #: Latency multiplier injected by active fault windows (1.0 = none).
    latency_factor: float
    #: Failed attempts of this same (worker, op, partition) immediately
    #: preceding this one — the retry burn attributable to this span.
    retries: int
    #: "ok" or "error".
    status: str
    #: Error class name ("ServerBusyError") and protocol code, if failed.
    error: str = ""
    error_code: str = ""
    #: Fault verdict: comma-joined kinds of the injected faults that hit
    #: this round trip ("message_loss", "duplicate_delivery", "outage",
    #: ...), or "" when nothing was injected.  Lets a history checker
    #: distinguish injected anomalies from genuine bugs.
    fault: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def faults(self) -> Tuple[str, ...]:
        """The injected fault kinds as a tuple ("" splits to empty)."""
        return tuple(self.fault.split(",")) if self.fault else ()

    def to_tuple(self) -> Tuple:
        """The ordered, digest-stable projection of this span.

        The fault verdict is appended only when set, so fault-free runs
        keep the digests pinned before the field existed (chaos off ==
        bit-identical golden traces).
        """
        base = (
            self.span_id, self.worker, self.phase, self.backend,
            self.service, self.operation, self.partition, self.server,
            self.nbytes, self.units, self.start, self.end,
            self.server_latency, self.latency_factor, self.retries,
            self.status, self.error, self.error_code,
        )
        return base + (self.fault,) if self.fault else base

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (one JSONL line of a trace export)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "worker": self.worker,
            "phase": self.phase,
            "backend": self.backend,
            "service": self.service,
            "operation": self.operation,
            "partition": self.partition,
            "server": self.server,
            "nbytes": self.nbytes,
            "units": self.units,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "server_latency": self.server_latency,
            "latency_factor": self.latency_factor,
            "retries": self.retries,
            "status": self.status,
            "error": self.error,
            "error_code": self.error_code,
            "fault": self.fault,
        }
