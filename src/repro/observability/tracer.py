"""The tracing stage of the operation pipeline.

:class:`Tracer` is an :class:`~repro.pipeline.interceptors.Interceptor`
that sits at the *front* of the stack (``trace -> auth -> analytics ->
faults -> throttles``), so its ``after``/``failed`` hooks see the verdict
of every stage behind it.  It emits one :class:`~.span.Span` per storage
round trip into a :class:`~.buffer.TraceBuffer` and feeds a
:class:`~.histogram.HistogramSet` of per-``service.operation`` latencies.

Determinism contract: the tracer only *reads* the context — the clock
fields the executor already filled (sim time on the DES backend, account
clock on the emulator), the descriptor, and the fault/throttle
annotations.  It never sleeps, never draws randomness, and never touches
the wall clock on the sim backend, so a traced run is bit-identical to an
untraced one.

Worker attribution comes from :attr:`OpContext.worker` (set by the
executors: the active simkit process name on the DES fabric, the thread
name on the emulator).  Benchmark-phase attribution comes from the
:func:`repro.core.metrics.set_phase_hook` callback, which the backends
point at :meth:`Tracer.on_phase` for the duration of a traced run.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..pipeline.interceptors import Interceptor
from .buffer import TraceBuffer
from .histogram import HistogramSet
from .span import STATUS_ERROR, STATUS_OK, Span

__all__ = [
    "Tracer",
    "sim_worker_resolver",
    "thread_worker_resolver",
    "phase_totals",
]


def sim_worker_resolver(env) -> Callable[[], str]:
    """Current worker = the simkit process being resumed."""
    def resolve() -> str:
        proc = env.active_process
        return proc.name if proc is not None else ""
    return resolve


def thread_worker_resolver() -> Callable[[], str]:
    """Current worker = the current thread (emulator backend)."""
    def resolve() -> str:
        return threading.current_thread().name
    return resolve


class Tracer(Interceptor):
    """Pipeline stage recording one span per storage round trip."""

    name = "trace"

    def __init__(self, *, trace_id: str = "trace",
                 buffer: Optional[TraceBuffer] = None,
                 histograms: Optional[HistogramSet] = None,
                 worker_resolver: Optional[Callable[[], str]] = None) -> None:
        self.trace_id = trace_id
        self.buffer = buffer if buffer is not None else TraceBuffer()
        self.histograms = (histograms if histograms is not None
                           else HistogramSet())
        #: Resolves "who is executing right now" for phase bookkeeping;
        #: defaults to the thread name (correct off the DES fabric).
        self.worker_resolver = (worker_resolver if worker_resolver is not None
                                else thread_worker_resolver())
        self._next_span_id = 0
        #: Open benchmark phase per worker (fed by the metrics phase hook).
        self._phases: Dict[str, str] = {}
        #: Consecutive failed attempts per (worker, service, op, partition).
        self._failures: Dict[Tuple[str, str, str, str], int] = {}
        #: Placement model for target-server attribution (sim only).
        self._cluster = None
        #: Injected-fault kinds awaiting the next span (pre-execute faults
        #: fire before the span is recorded; see :meth:`attach_fault_plan`).
        self._pending_faults: List[str] = []

    # -- installation ------------------------------------------------------
    def install(self, target) -> "Tracer":
        """Hook into ``target``'s pipeline at the front of the stack.

        ``target`` is anything with an operation ``pipeline`` — a
        :class:`~repro.sim.clients.SimStorageAccount`, an
        :class:`~repro.emulator.clients.EmulatorAccount`, or a
        :class:`~repro.cluster.model.StorageCluster`.
        """
        pipeline = getattr(target, "pipeline", None)
        if pipeline is None:
            raise TypeError(
                f"Tracer.install needs an object with an operation pipeline; "
                f"got {target!r}")
        cluster = getattr(target, "cluster", None)
        if cluster is None and hasattr(target, "pool_for"):
            cluster = target  # a bare StorageCluster
        self._cluster = cluster
        pipeline.add_first(self)
        # Fault attribution: when a plan is already set, subscribe so
        # injected anomalies land on the spans they hit.
        plan_owner = cluster if cluster is not None else target
        plan = getattr(plan_owner, "fault_plan", None)
        if plan is not None:
            self.attach_fault_plan(plan)
        return self

    def uninstall(self, target) -> None:
        target.pipeline.remove(self)

    def attach_fault_plan(self, plan) -> "Tracer":
        """Record injected-fault verdicts on the spans they hit.

        Pre-execute faults (outage, throttle, transient, timeout,
        partition crash) fire *before* the round trip's span exists, so
        their kinds are parked and drained into the next recorded span —
        always the failing round trip, since every such fault terminates
        its op.  Data-plane faults (message loss, duplicate delivery)
        fire at the apply instant, *after* the span was recorded, so the
        last span is rewritten in place.
        """
        plan.subscribe(self._on_fault_event)
        return self

    #: Fault kinds injected during apply, after the span was recorded.
    _APPLY_STAGE_FAULTS = frozenset({"message_loss", "duplicate_delivery"})

    def _on_fault_event(self, event) -> None:
        kind = event.kind.value
        if kind in self._APPLY_STAGE_FAULTS:
            spans = self.buffer._spans
            if spans:
                last = spans[-1]
                joined = f"{last.fault},{kind}" if last.fault else kind
                self.buffer.replace_last(replace(last, fault=joined))
        else:
            self._pending_faults.append(kind)

    # -- phase bookkeeping -------------------------------------------------
    def on_phase(self, event: str, name: str) -> None:
        """Target for :func:`repro.core.metrics.set_phase_hook`.

        ``start``/``stop`` bracket a recorded phase for the *current*
        worker; ``span`` events (post-hoc :meth:`PhaseRecorder.record_span`
        phases, e.g. Algorithm 4's accumulated timings) carry no live
        window and are ignored.
        """
        worker = self.worker_resolver()
        if event == "start":
            self._phases[worker] = name
        elif event == "stop":
            self._phases.pop(worker, None)

    def current_phase(self, worker: str) -> Optional[str]:
        return self._phases.get(worker)

    # -- interceptor hooks -------------------------------------------------
    def after(self, ctx) -> None:
        self._record(ctx, STATUS_OK, None)

    def failed(self, ctx, exc: BaseException) -> None:
        self._record(ctx, STATUS_ERROR, exc)

    def _server_of(self, op) -> Optional[str]:
        if self._cluster is None:
            return None
        pool = self._cluster.pool_for(op.service)
        # server_key is a pure lookup: attribution must not create servers
        # (a rejected op never reached one).
        return f"{pool.name}/{pool.server_key(op.partition)}"

    def _record(self, ctx, status: str, exc: Optional[BaseException]) -> None:
        op = ctx.op
        worker = ctx.worker or ""
        key = (worker, op.service.value, op.kind.value, op.partition)
        if status == STATUS_OK:
            retries, self._failures[key] = self._failures.get(key, 0), 0
            server = self._server_of(op)
            error = error_code = ""
        else:
            retries = self._failures.get(key, 0)
            self._failures[key] = retries + 1
            server = None  # the round trip never reached a partition server
            error = type(exc).__name__
            error_code = getattr(exc, "error_code", "") or ""
        span = Span(
            trace_id=self.trace_id,
            span_id=self._next_span_id,
            worker=worker,
            phase=self._phases.get(worker),
            backend=ctx.backend,
            service=op.service.value,
            operation=op.kind.value,
            partition=op.partition,
            server=server,
            nbytes=op.nbytes,
            units=op.units,
            start=ctx.started_at,
            end=ctx.finished_at,
            server_latency=ctx.server_latency,
            latency_factor=ctx.latency_factor,
            retries=retries,
            status=status,
            error=error,
            error_code=error_code,
            fault=",".join(self._pending_faults),
        )
        self._pending_faults.clear()
        self._next_span_id += 1
        if self.buffer.append(span):
            self.histograms.observe(span.service, span.operation,
                                    span.duration)

    # -- convenience reads -------------------------------------------------
    def digest(self) -> str:
        return self.buffer.digest()

    @property
    def spans(self):
        return self.buffer.spans


def phase_totals(spans: Iterable[Span], *,
                 ops_exclude: frozenset = frozenset()
                 ) -> Dict[str, Tuple[int, int, int]]:
    """Per-phase ``(ops, nbytes, retries)`` rollup of a span stream.

    Reconciles traces against :class:`~repro.core.metrics.PhaseRecorder`
    totals: ``ops``/``nbytes`` count successful spans whose operation is
    not in ``ops_exclude`` (e.g. the queue benchmark times Get+Delete as
    one logical op, so ``delete_message`` spans are excluded), and
    ``retries`` counts failed spans — one per back-off the worker took.
    Spans outside any phase (barrier traffic, setup) are skipped.
    """
    totals: Dict[str, Tuple[int, int, int]] = {}
    for span in spans:
        if span.phase is None:
            continue
        ops, nbytes, retries = totals.get(span.phase, (0, 0, 0))
        if span.ok:
            if span.operation not in ops_exclude:
                ops += 1
                nbytes += span.nbytes
        else:
            retries += 1
        totals[span.phase] = (ops, nbytes, retries)
    return totals
