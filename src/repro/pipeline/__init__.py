"""Unified storage-operation pipeline shared by the DES and emulator backends.

One op registry defines the 2012 SDK surface; an ordered interceptor stack
(auth -> analytics -> faults -> throttles) applies every cross-cutting
concern on both backends; two thin executors bind the registry to DES
timing and to blocking threads respectively.
"""

from .context import OpContext
from .interceptors import (
    AnalyticsInterceptor,
    AuthInterceptor,
    FaultInterceptor,
    Interceptor,
    Pipeline,
    ThrottleInterceptor,
)
from .registry import OPERATIONS, OpCall, OpSpec
from .executors import (
    AsyncExecutor,
    BlockingExecutor,
    SimExecutor,
    drive_operation,
)
from .clients import (
    blocking_method,
    derive_client_class,
    local_method,
    locked_local_method,
    shim_method,
    sim_method,
)

__all__ = [
    "OpContext",
    "Interceptor",
    "Pipeline",
    "AuthInterceptor",
    "AnalyticsInterceptor",
    "FaultInterceptor",
    "ThrottleInterceptor",
    "OPERATIONS",
    "OpCall",
    "OpSpec",
    "SimExecutor",
    "BlockingExecutor",
    "AsyncExecutor",
    "drive_operation",
    "derive_client_class",
    "sim_method",
    "blocking_method",
    "shim_method",
    "local_method",
    "locked_local_method",
]
