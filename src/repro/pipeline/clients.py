"""Derive backend client classes from the operation registry.

Both ``Sim*Client`` and ``Emulator*Client`` classes are generated here from
the single registry in :mod:`repro.pipeline.registry` — one method per
:class:`~repro.pipeline.registry.OpSpec`, bound to the backend's executor:

* :func:`sim_method` — a simkit **generator method**: prepare, ``yield
  from`` the DES executor's charge, apply.  Call with ``yield from``.
* :func:`blocking_method` — a plain **blocking method** delegating to the
  account's :class:`~repro.pipeline.executors.BlockingExecutor`.
* :func:`shim_method` — a generator method over the *blocking* executor
  that never actually yields, so sim-style bodies (``yield from
  client.op(...)``) run unmodified against the emulator.  This is what
  lets one benchmark body drive either backend.

``local=True`` specs (pure bookkeeping reads) become plain methods on
every backend: no round trip, no charge, no lock contention beyond the
emulator's own.
"""

from __future__ import annotations

from typing import Callable, Dict, Type

from .registry import OPERATIONS, OpSpec

__all__ = [
    "sim_method",
    "blocking_method",
    "shim_method",
    "local_method",
    "locked_local_method",
    "derive_client_class",
]


def _describe(method: Callable, spec: OpSpec) -> Callable:
    method.__name__ = spec.name
    method.__doc__ = spec.body.__doc__
    return method


def sim_method(spec: OpSpec) -> Callable:
    """Generator method charging the DES cost model between prepare/apply."""
    body = spec.body

    def method(self, *args, **kwargs):
        gen = body(self._call, *args, **kwargs)
        desc = next(gen)  # prepare: data-plane errors raise before timing
        try:
            yield from self._executor.charge(desc)
        except BaseException:
            gen.close()
            raise
        try:
            gen.send(None)  # apply at the simulated completion instant
        except StopIteration as stop:
            return stop.value
        gen.close()
        raise RuntimeError(
            f"operation body {spec.name!r} yielded more than once")

    return _describe(method, spec)


def blocking_method(spec: OpSpec) -> Callable:
    """Plain blocking method over the emulator's executor."""
    body_spec = spec

    def method(self, *args, **kwargs):
        return self._executor.run(body_spec, self._call, args, kwargs)

    return _describe(method, spec)


def shim_method(spec: OpSpec) -> Callable:
    """Never-yielding generator over the blocking executor.

    ``yield from`` on it returns the blocking result immediately, so code
    written for the sim clients drives the emulator unchanged.
    """
    body_spec = spec

    def method(self, *args, **kwargs):
        return self._executor.run(body_spec, self._call, args, kwargs)
        yield  # pragma: no cover -- marks this as a generator function

    return _describe(method, spec)


def local_method(spec: OpSpec) -> Callable:
    """Bookkeeping read: no round trip on any backend."""
    body = spec.body

    def method(self, *args, **kwargs):
        return body(self._call, *args, **kwargs)

    return _describe(method, spec)


def locked_local_method(spec: OpSpec) -> Callable:
    """Bookkeeping read under the emulator account's lock."""
    body = spec.body

    def method(self, *args, **kwargs):
        with self.account._lock:
            return body(self._call, *args, **kwargs)

    return _describe(method, spec)


def derive_client_class(class_name: str, client_kind: str, base: type, *,
                        method_factory: Callable[[OpSpec], Callable],
                        local_factory: Callable[[OpSpec], Callable] = None,
                        doc: str = None) -> Type:
    """Build one client class: registry methods on top of ``base``."""
    if local_factory is None:
        local_factory = local_method
    namespace: Dict[str, object] = {"__doc__": doc}
    for name, spec in OPERATIONS[client_kind].items():
        factory = local_factory if spec.local else method_factory
        namespace[name] = factory(spec)
    cls = type(class_name, (base,), namespace)
    cls.__module__ = base.__module__
    for attr in cls.__dict__.values():
        if callable(attr):
            attr.__qualname__ = f"{class_name}.{attr.__name__}"
    return cls
