"""The per-operation context flowing through the interceptor stack.

One :class:`OpContext` is created per storage round trip, regardless of
backend.  Interceptors read the immutable
:class:`~repro.cluster.ops.OpDescriptor` and annotate the mutable fields:
fault interceptors set ``latency_factor``/``timeout_spec``, the executors
fill in the timing fields, and observers (Storage Analytics) read the
finished record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # avoids a cycle: repro.cluster.model imports this module
    from ..cluster.ops import OpDescriptor

__all__ = ["OpContext"]


@dataclass
class OpContext:
    """Mutable state of one storage operation crossing the pipeline.

    The descriptor says *what* is being done; everything else records what
    the pipeline decided about it and how the round trip went.
    """

    #: What operation (service, kind, partition, bytes) is in flight.
    op: OpDescriptor
    #: Which executor is driving: ``"sim"`` or ``"emulator"``.
    backend: str = "sim"
    #: Worker role the op is attributed to (the active simkit process name
    #: on the DES fabric, the thread name on the emulator); None when the
    #: executor could not tell.  Read by the tracing stage.
    worker: Optional[str] = None
    #: Backend clock reading when the round trip began (sim time or wall
    #: seconds since the emulator account was created).
    started_at: float = 0.0
    #: Clock reading when the round trip completed (or failed).
    finished_at: float = 0.0
    #: Un-jittered server occupancy — what Storage Analytics reports as
    #: server latency.  The emulator has no cost model, so it stays 0.
    server_latency: float = 0.0
    #: Multiplier injected by active LATENCY fault windows (1.0 = none).
    latency_factor: float = 1.0
    #: The TIMEOUT fault spec that fired for this op, if any.  The executor
    #: burns ``timeout_spec.timeout_after`` and raises.
    timeout_spec: Optional[Any] = None
    #: The fault plan that set ``timeout_spec`` (the executor asks it to
    #: record the fired timeout).
    fault_plan: Optional[Any] = None
    #: The error that terminated the round trip, if it failed.
    error: Optional[BaseException] = None
    #: Free-form scratch space for custom interceptors.
    extras: dict = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Round-trip duration as observed by the backend clock."""
        return self.finished_at - self.started_at
