"""The thin executors driving operation bodies through the pipeline.

An executor owns the *how* of a round trip; the operation bodies in
:mod:`repro.pipeline.registry` own the *what*.

* :class:`SimExecutor` — charges the round trip on the DES fabric:
  ``charge`` is a simkit generator delegating to
  :meth:`repro.cluster.model.StorageCluster.execute`, which runs the
  interceptor chain and then the cost model (RTT + partition-server
  occupancy) in simulated time.
* :class:`BlockingExecutor` — the emulator path: serialize on the
  account's reentrant lock, run the same interceptor chain against the
  wall (or injectable) clock, then apply the data-plane change.  No cost
  model — the only time consumed is real time (optional artificial
  latency, and injected TIMEOUT faults, which burn their budget on the
  account clock).
* :class:`AsyncExecutor` — the service-tier path: one data-node event
  loop drives the same sequence without a lock (the loop itself
  serializes operations); injected TIMEOUT budgets burn as
  ``asyncio.sleep`` awaits so other requests keep flowing.

The prepare → interceptors → apply sequence itself lives in
:func:`drive_operation`, a generator shared by the blocking and async
executors: it yields the seconds of any injected timeout budget and lets
the caller decide *how* to burn them (``time.sleep``, ``clock.advance``,
or ``await asyncio.sleep``).  Emulator threads and data-node event loops
therefore execute byte-for-byte the same state-machine code.
"""

from __future__ import annotations

import threading
import time

from .context import OpContext

__all__ = ["SimExecutor", "BlockingExecutor", "AsyncExecutor",
           "drive_operation"]


class SimExecutor:
    """DES executor: charge descriptors on a :class:`StorageCluster`."""

    backend = "sim"

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    def charge(self, desc):
        """Simkit sub-generator: burn the op's simulated round trip."""
        yield from self.cluster.execute(desc)


def drive_operation(spec, call, args, kwargs, *, pipeline, clock,
                    backend: str, worker=None):
    """The backend-agnostic core of one non-DES round trip.

    A generator: runs prepare, the interceptor ``before`` chain, then —
    if a TIMEOUT fault fired — **yields the seconds to burn** and, once
    resumed, raises the recorded timeout error.  Otherwise it runs the
    ``after`` chain and applies the state change, returning the op
    result via ``StopIteration``.  Exactly one caller-visible yield can
    occur, and only on the timeout path.

    Both :class:`BlockingExecutor` (emulator threads) and
    :class:`AsyncExecutor` (data-node event loops) drive this one
    function, so the storage state machines and the interceptor
    contract cannot drift between the two.
    """
    gen = spec.body(call, *args, **kwargs)
    desc = next(gen)  # prepare: validation errors raise here
    ctx = OpContext(op=desc, backend=backend,
                    started_at=clock.now(), worker=worker)
    try:
        pipeline.run_before(ctx)
        if ctx.timeout_spec is not None:
            # The request is doomed: it consumes the timeout budget
            # (the server never completes the work).
            yield ctx.timeout_spec.timeout_after
            raise ctx.fault_plan.record_timeout(
                ctx.timeout_spec, desc, clock.now())
    except BaseException as exc:
        gen.close()
        ctx.finished_at = clock.now()
        pipeline.run_failed(ctx, exc)
        raise
    ctx.finished_at = clock.now()
    pipeline.run_after(ctx)
    try:
        gen.send(None)  # apply at the completion instant
    except StopIteration as stop:
        return stop.value
    gen.close()
    raise RuntimeError(
        f"operation body {spec.name!r} yielded more than once")


class BlockingExecutor:
    """Emulator executor: lock, run interceptors on the clock, apply."""

    backend = "emulator"

    def __init__(self, account) -> None:
        self.account = account

    def _burn(self, seconds: float) -> None:
        """Consume an injected timeout budget on the account's clock."""
        clock = self.account.state.clock
        if hasattr(clock, "advance"):
            clock.advance(seconds)  # ManualClock: tests stay instant
        else:
            time.sleep(seconds)

    def run(self, spec, call, args, kwargs):
        """Drive one operation body: prepare, pipeline, apply, return."""
        account = self.account
        account._maybe_sleep()
        with account._lock:
            drive = drive_operation(
                spec, call, args, kwargs,
                pipeline=account.pipeline, clock=account.state.clock,
                backend=self.backend,
                worker=threading.current_thread().name)
            try:
                burn_seconds = next(drive)
            except StopIteration as stop:
                return stop.value
            self._burn(burn_seconds)
            try:
                drive.send(None)  # resumes into the timeout raise
            except StopIteration as stop:  # pragma: no cover - defensive
                return stop.value
            raise RuntimeError(  # pragma: no cover - drive always raises
                f"operation body {spec.name!r} survived its timeout")


class AsyncExecutor:
    """Data-node executor: the event loop serializes, awaits burn time.

    The owning node exposes ``state`` (a
    :class:`~repro.storage.account.StorageAccountState`) and ``pipeline``
    (its interceptor stack); operations run to completion between
    awaits, so — exactly like the DES and the emulator's lock — no two
    state-machine mutations interleave.  Only an injected TIMEOUT
    budget suspends mid-operation, *after* the failure verdict is
    already decided, so the interleaving cannot produce states the
    other backends could not.
    """

    backend = "service"

    def __init__(self, state, pipeline) -> None:
        self.state = state
        self.pipeline = pipeline

    async def _burn(self, seconds: float) -> None:
        clock = self.state.clock
        if hasattr(clock, "advance"):
            clock.advance(seconds)  # ManualClock: tests stay instant
        else:
            import asyncio
            await asyncio.sleep(seconds)

    async def run(self, spec, call, args, kwargs, *, worker=None):
        drive = drive_operation(
            spec, call, args, kwargs,
            pipeline=self.pipeline, clock=self.state.clock,
            backend=self.backend, worker=worker)
        try:
            burn_seconds = next(drive)
        except StopIteration as stop:
            return stop.value
        await self._burn(burn_seconds)
        try:
            drive.send(None)  # resumes into the timeout raise
        except StopIteration as stop:  # pragma: no cover - defensive
            return stop.value
        raise RuntimeError(  # pragma: no cover - drive always raises
            f"operation body {spec.name!r} survived its timeout")
