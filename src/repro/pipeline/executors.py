"""The two thin executors driving operation bodies through the pipeline.

An executor owns the *how* of a round trip; the operation bodies in
:mod:`repro.pipeline.registry` own the *what*.

* :class:`SimExecutor` — charges the round trip on the DES fabric:
  ``charge`` is a simkit generator delegating to
  :meth:`repro.cluster.model.StorageCluster.execute`, which runs the
  interceptor chain and then the cost model (RTT + partition-server
  occupancy) in simulated time.
* :class:`BlockingExecutor` — the emulator path: serialize on the
  account's reentrant lock, run the same interceptor chain against the
  wall (or injectable) clock, then apply the data-plane change.  No cost
  model — the only time consumed is real time (optional artificial
  latency, and injected TIMEOUT faults, which burn their budget on the
  account clock).
"""

from __future__ import annotations

import threading
import time

from .context import OpContext

__all__ = ["SimExecutor", "BlockingExecutor"]


class SimExecutor:
    """DES executor: charge descriptors on a :class:`StorageCluster`."""

    backend = "sim"

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    def charge(self, desc):
        """Simkit sub-generator: burn the op's simulated round trip."""
        yield from self.cluster.execute(desc)


class BlockingExecutor:
    """Emulator executor: lock, run interceptors on the clock, apply."""

    backend = "emulator"

    def __init__(self, account) -> None:
        self.account = account

    def _burn(self, seconds: float) -> None:
        """Consume an injected timeout budget on the account's clock."""
        clock = self.account.state.clock
        if hasattr(clock, "advance"):
            clock.advance(seconds)  # ManualClock: tests stay instant
        else:
            time.sleep(seconds)

    def run(self, spec, call, args, kwargs):
        """Drive one operation body: prepare, pipeline, apply, return."""
        account = self.account
        account._maybe_sleep()
        with account._lock:
            gen = spec.body(call, *args, **kwargs)
            desc = next(gen)  # prepare: validation errors raise here
            clock = account.state.clock
            ctx = OpContext(op=desc, backend=self.backend,
                            started_at=clock.now(),
                            worker=threading.current_thread().name)
            try:
                account.pipeline.run_before(ctx)
                if ctx.timeout_spec is not None:
                    # The request is doomed: it consumes the timeout budget
                    # (the server never completes the work).
                    self._burn(ctx.timeout_spec.timeout_after)
                    raise ctx.fault_plan.record_timeout(
                        ctx.timeout_spec, desc, clock.now())
            except BaseException as exc:
                gen.close()
                ctx.finished_at = clock.now()
                account.pipeline.run_failed(ctx, exc)
                raise
            ctx.finished_at = clock.now()
            account.pipeline.run_after(ctx)
            try:
                gen.send(None)  # apply at the completion instant
            except StopIteration as stop:
                return stop.value
            gen.close()
            raise RuntimeError(
                f"operation body {spec.name!r} yielded more than once")
