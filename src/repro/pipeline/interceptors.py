"""The ordered, composable interceptor stack shared by both executors.

An :class:`Interceptor` sees every operation crossing one account's
pipeline — on the simulated fabric *and* on the emulator — through three
hooks:

* :meth:`~Interceptor.before` runs in stack order before any time is
  charged; raising here rejects the operation (throttles and injected
  outages do exactly that);
* :meth:`~Interceptor.after` runs in reverse stack order once the round
  trip has completed;
* :meth:`~Interceptor.failed` runs in reverse stack order when the
  operation was rejected or timed out, with the terminating error.

The canonical stack order is ``trace -> auth -> analytics -> faults ->
throttles`` (then the executor's cost-model/data-plane stage, which is
not an interceptor: it is the backend itself).  Observers sit early so
their ``after``/``failed`` hooks see the verdicts of everything behind
them; the tracing stage (:class:`repro.observability.Tracer`) sits
first of all via :meth:`Pipeline.add_first`, so every span records the
whole stack's verdict.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..storage.errors import ServerBusyError
from .context import OpContext

__all__ = [
    "Interceptor",
    "Pipeline",
    "AuthInterceptor",
    "AnalyticsInterceptor",
    "FaultInterceptor",
    "GeoRoutingInterceptor",
    "GeoSecondaryInterceptor",
    "ThrottleInterceptor",
]


class Interceptor:
    """Base class for pipeline stages; override any subset of the hooks."""

    #: Stable name used for ordered insertion (``Pipeline.add(before=...)``).
    name = "interceptor"

    def before(self, ctx: OpContext) -> None:
        """Inspect/annotate ``ctx`` before the round trip; raise to reject."""

    def after(self, ctx: OpContext) -> None:
        """Observe a completed round trip."""

    def failed(self, ctx: OpContext, exc: BaseException) -> None:
        """Observe a rejected or timed-out round trip."""


class Pipeline:
    """An ordered interceptor chain: before in order, after/failed reversed.

    The three hook chains are **pre-bound**: every mutation of the stack
    recomputes flat lists of bound hook methods, with stages that inherit
    a base-class no-op hook skipped entirely.  ``run_before``/``run_after``
    /``run_failed`` then just walk a prebuilt list — no per-call
    ``reversed()`` allocation, no attribute lookups, and no calls into
    empty hooks on the hot path (the default fault+throttle stack has no
    ``after``/``failed`` observers at all, so a completed round trip pays
    nothing there).
    """

    def __init__(self, interceptors: Sequence[Interceptor] = ()) -> None:
        self._interceptors: List[Interceptor] = list(interceptors)
        self._rebind()

    def _rebind(self) -> None:
        """Recompute the pre-bound hook chains after a stack mutation."""
        base = Interceptor
        self._before_hooks = [
            i.before for i in self._interceptors
            if type(i).before is not base.before]
        self._after_hooks = [
            i.after for i in reversed(self._interceptors)
            if type(i).after is not base.after]
        self._failed_hooks = [
            i.failed for i in reversed(self._interceptors)
            if type(i).failed is not base.failed]

    def add(self, interceptor: Interceptor, *,
            before: Optional[str] = None) -> Interceptor:
        """Append ``interceptor`` (or insert it before the named stage)."""
        if before is not None:
            for i, existing in enumerate(self._interceptors):
                if existing.name == before:
                    self._interceptors.insert(i, interceptor)
                    self._rebind()
                    return interceptor
        self._interceptors.append(interceptor)
        self._rebind()
        return interceptor

    def add_first(self, interceptor: Interceptor) -> Interceptor:
        """Insert ``interceptor`` at the very front of the stack.

        Front-of-stack observers (tracing) see every later stage's
        rejection in ``failed`` and every completion in ``after``.
        """
        self._interceptors.insert(0, interceptor)
        self._rebind()
        return interceptor

    def remove(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)
        self._rebind()

    def stages(self) -> List[str]:
        """The stack order, by stage name (diagnostics, docs, tests)."""
        return [i.name for i in self._interceptors]

    def __len__(self) -> int:
        return len(self._interceptors)

    def run_before(self, ctx: OpContext) -> None:
        for hook in self._before_hooks:
            hook(ctx)

    def run_after(self, ctx: OpContext) -> None:
        for hook in self._after_hooks:
            hook(ctx)

    def run_failed(self, ctx: OpContext, exc: BaseException) -> None:
        ctx.error = exc
        for hook in self._failed_hooks:
            hook(ctx, exc)


class AuthInterceptor(Interceptor):
    """Request authorization at the front of the stack.

    ``authorizer(ctx)`` raises a
    :class:`~repro.storage.errors.StorageError` (typically
    :class:`~repro.storage.errors.AuthenticationFailedError`) to reject the
    operation before it touches the fabric — the slot where the 2012
    service checked the account key or SAS signature.
    """

    name = "auth"

    def __init__(self, authorizer: Callable[[OpContext], None]) -> None:
        self.authorizer = authorizer

    def before(self, ctx: OpContext) -> None:
        self.authorizer(ctx)


class AnalyticsInterceptor(Interceptor):
    """Storage Analytics (August 2011) as a pipeline observer.

    Appends one :class:`~repro.storage.analytics.RequestRecord` per round
    trip — successes in ``after``, rejections/timeouts in ``failed`` —
    mirroring the $logs line the real service would have written.
    Installed by :func:`repro.storage.analytics.attach_analytics`.
    """

    name = "analytics"

    def __init__(self, log, metrics) -> None:
        self.log = log
        self.metrics = metrics

    def _observe(self, record) -> None:
        self.log.append(record)
        self.metrics.observe(record)

    def after(self, ctx: OpContext) -> None:
        from ..storage.analytics import RequestRecord
        op = ctx.op
        self._observe(RequestRecord(
            time=ctx.started_at, service=op.service.value,
            operation=op.kind.value, partition=op.partition,
            nbytes=op.nbytes, end_to_end_latency=ctx.elapsed,
            server_latency=ctx.server_latency,
            status_code=201 if op.is_write else 200,
            is_write=op.is_write,
        ))

    def failed(self, ctx: OpContext, exc: BaseException) -> None:
        from ..storage.analytics import RequestRecord
        from ..storage.errors import StorageError
        if not isinstance(exc, StorageError):
            return  # non-protocol failures never produced a $logs line
        op = ctx.op
        self._observe(RequestRecord(
            time=ctx.started_at, service=op.service.value,
            operation=op.kind.value, partition=op.partition,
            nbytes=op.nbytes, end_to_end_latency=ctx.elapsed,
            server_latency=0.0,
            status_code=exc.status_code, error_code=exc.error_code,
            is_write=op.is_write,
        ))


class FaultInterceptor(Interceptor):
    """Consult the account's :class:`~repro.faults.plan.FaultPlan`.

    Raises the scheduled error for outage/throttle/transient/crash faults,
    stretches ``ctx.latency_factor`` for LATENCY windows, and parks fired
    TIMEOUT specs on the context for the executor to burn.  ``cluster`` is
    the :class:`~repro.cluster.model.StorageCluster` on the sim backend and
    ``None`` on the emulator (no placement model there).
    """

    name = "faults"

    def __init__(self, plan_source: Callable[[], Optional[object]], *,
                 cluster=None,
                 on_busy: Optional[Callable[[], None]] = None) -> None:
        self._plan_source = plan_source
        self.cluster = cluster
        self.on_busy = on_busy

    def before(self, ctx: OpContext) -> None:
        plan = self._plan_source()
        if plan is None:
            return
        try:
            factor, timeout_spec = plan.pre_execute(
                ctx.op, ctx.started_at, self.cluster)
        except ServerBusyError:
            if self.on_busy is not None:
                self.on_busy()
            raise
        ctx.latency_factor *= factor
        if timeout_spec is not None and ctx.timeout_spec is None:
            ctx.timeout_spec = timeout_spec
            ctx.fault_plan = plan


class GeoRoutingInterceptor(Interceptor):
    """Region-scale routing on a geo account's *primary* pipeline.

    Sits just before the ``faults`` stage and delegates every admission
    decision to the account's :class:`~repro.geo.controller.GeoController`:
    an open ``region_outage`` window (or a completed failover, which
    decommissions the old primary) rejects the op with
    :class:`~repro.storage.errors.RegionDownError`; a planned-failover
    drain freezes mutations only.  The RA-GRS client
    (:class:`~repro.geo.account.GeoClient`) catches the rejection and may
    re-issue *reads* against the secondary endpoint.
    """

    name = "geo"

    def __init__(self, controller) -> None:
        self.controller = controller

    def before(self, ctx: OpContext) -> None:
        self.controller.check_primary(ctx)


class GeoSecondaryInterceptor(Interceptor):
    """RA-GRS semantics on a geo account's *secondary* pipeline.

    Until the secondary is promoted, every mutating operation (including
    ``GetMessage``, which consumes visibility) is rejected with
    :class:`~repro.storage.errors.SecondaryReadOnlyError` — the 403 the
    real ``-secondary`` endpoint returned; reads pass through.  After
    promotion the endpoint is a full primary.  A ``region_outage`` window
    scheduled against the secondary region rejects everything.
    """

    name = "geo"

    def __init__(self, controller) -> None:
        self.controller = controller

    def before(self, ctx: OpContext) -> None:
        self.controller.check_secondary(ctx)


class ThrottleInterceptor(Interceptor):
    """Enforce the published per-second scalability targets (paper §IV).

    Owns the sliding-window limiters for the account-wide 5,000 tx/s and
    3 GB/s targets plus the lazily-created 500 msg/s-per-queue and 500
    ent/s-per-partition windows, rejecting with
    :class:`~repro.storage.errors.ServerBusyError` exactly where the real
    service would.  The caching service is billed and scaled separately,
    so its ops are exempt.
    """

    name = "throttles"

    def __init__(self, limits, *, window_s: float = 1.0,
                 retry_after_s: float = 1.0,
                 on_busy: Optional[Callable[[], None]] = None) -> None:
        from ..cluster.ratelimit import SlidingWindowThrottle
        self.limits = limits
        self.window_s = window_s
        self.retry_after_s = retry_after_s
        self.on_busy = on_busy
        self.account_tx = SlidingWindowThrottle(
            limits.account_transactions_per_second, window_s,
            name="account transactions", retry_after=retry_after_s,
        )
        self.account_bw = SlidingWindowThrottle(
            limits.account_bandwidth_bytes_per_second, window_s,
            name="account bandwidth", retry_after=retry_after_s,
        )
        self.queue_throttles = {}
        self.partition_throttles = {}

    def queue_throttle(self, partition: str):
        from ..cluster.ratelimit import SlidingWindowThrottle
        throttle = self.queue_throttles.get(partition)
        if throttle is None:
            throttle = SlidingWindowThrottle(
                self.limits.queue_messages_per_second, self.window_s,
                name=f"queue {partition!r} messages",
                retry_after=self.retry_after_s,
            )
            self.queue_throttles[partition] = throttle
        return throttle

    def partition_throttle(self, partition: str):
        from ..cluster.ratelimit import SlidingWindowThrottle
        throttle = self.partition_throttles.get(partition)
        if throttle is None:
            throttle = SlidingWindowThrottle(
                self.limits.partition_entities_per_second, self.window_s,
                name=f"table partition {partition!r} entities",
                retry_after=self.retry_after_s,
            )
            self.partition_throttles[partition] = throttle
        return throttle

    def before(self, ctx: OpContext) -> None:
        from ..cluster.ops import OpKind, Service
        op = ctx.op
        if op.service is Service.CACHE:
            # Billed and scaled separately from the storage account: cache
            # ops do not count against the 5,000 tx/s or 3 GB/s targets.
            return
        now = ctx.started_at
        try:
            self.account_tx.charge(now, op.units)
            if op.nbytes:
                self.account_bw.charge(now, op.nbytes)
            if op.service is Service.QUEUE and op.kind in (
                OpKind.PUT_MESSAGE, OpKind.GET_MESSAGE,
                OpKind.PEEK_MESSAGE, OpKind.DELETE_MESSAGE,
                OpKind.UPDATE_MESSAGE,
            ):
                self.queue_throttle(op.partition).charge(now, op.units)
            elif op.service is Service.TABLE and op.kind in (
                OpKind.INSERT_ENTITY, OpKind.QUERY_ENTITY,
                OpKind.UPDATE_ENTITY, OpKind.MERGE_ENTITY,
                OpKind.DELETE_ENTITY, OpKind.BATCH,
            ):
                self.partition_throttle(op.partition).charge(now, op.units)
        except Exception:
            if self.on_busy is not None:
                self.on_busy()
            raise
