"""The operation registry: the 2012 SDK surface, defined exactly once.

Every data-plane operation both backends expose (the bold API names in the
paper's Algorithms 1-5) is one *operation body*: a generator that

1. **prepares** — validates arguments and peeks whatever state the cost
   model needs (transfer sizes, existence), raising data-plane errors
   before any time is charged, exactly like a front-end rejecting a bad
   request;
2. **yields** the single :class:`~repro.cluster.ops.OpDescriptor` of the
   round trip — the executor charges it (DES timing + interceptors on the
   sim backend, lock + interceptors on the emulator);
3. **applies** the state-machine change at the completion instant and
   returns the result.

Operations marked ``local=True`` are pure client-side bookkeeping (no
round trip, no charge); their body is a plain function.

The two client modules (:mod:`repro.sim.clients`,
:mod:`repro.emulator.clients`) derive their classes from this table via
:mod:`repro.pipeline.clients` — there are no hand-written per-op method
bodies anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from ..cluster.ops import OpDescriptor, OpKind, Service
from ..storage import Content, as_content
from ..storage.table import BatchOperation

__all__ = ["OpSpec", "OPERATIONS", "OpCall", "blob_partition", "props_bytes"]


@dataclass(frozen=True)
class OpSpec:
    """One registered operation: where it lives and how it runs."""

    #: Which client class exposes it: "blob" | "queue" | "table" | "cache".
    client: str
    #: Method name on the client class.
    name: str
    #: Generator body (prepare / yield descriptor / apply), or a plain
    #: function for ``local`` operations.
    body: Callable
    #: True for client-side bookkeeping reads that make no round trip.
    local: bool = False


#: The full registry, keyed by client kind then method name.
OPERATIONS: Dict[str, Dict[str, OpSpec]] = {
    "blob": {}, "queue": {}, "table": {}, "cache": {},
}


def _operation(client: str, *, local: bool = False,
               name: Optional[str] = None):
    def register(fn: Callable) -> Callable:
        method = name if name is not None else fn.__name__
        OPERATIONS[client][method] = OpSpec(client, method, fn, local=local)
        return fn
    return register


class OpCall:
    """What an operation body may touch: state machines + the fault plan.

    One per client; both executors hand it to every body.  ``now`` and the
    queue fault hooks use the *backend's* clock, so injected message loss
    and duplicate delivery fire on sim time and wall-clock time alike.
    """

    __slots__ = ("state", "cache_state", "_now_fn", "_plan_fn")

    def __init__(self, state, cache_state,
                 now_fn: Callable[[], float],
                 plan_fn: Callable[[], Optional[object]]) -> None:
        self.state = state
        self.cache_state = cache_state
        self._now_fn = now_fn
        self._plan_fn = plan_fn

    @property
    def now(self) -> float:
        return self._now_fn()

    def drop_message(self, queue: str) -> bool:
        """Injected message loss: ack the put but lose the payload?"""
        plan = self._plan_fn()
        return plan is not None and plan.drop_message(queue, self.now)

    def duplicate_delivery(self, queue: str) -> bool:
        """Injected at-least-once anomaly: leave the message visible?"""
        plan = self._plan_fn()
        return plan is not None and plan.duplicate_delivery(queue, self.now)


def blob_partition(container: str, blob: str) -> str:
    """"Blobs are partitioned based on container name + blob name."""
    return f"{container}/{blob}"


def props_bytes(properties: Mapping[str, Any]) -> int:
    """Wire size of an entity property bag (UTF-16 strings, 8-byte scalars)."""
    total = 0
    for value in properties.values():
        if isinstance(value, Content):
            total += value.size
        elif isinstance(value, bytes):
            total += len(value)
        elif isinstance(value, str):
            total += 2 * len(value)
        else:
            total += 8
    return total


# ---------------------------------------------------------------------------
# Blob service (paper Algorithm 1 API surface)
# ---------------------------------------------------------------------------

@_operation("blob")
def create_container(call, name: str):
    yield OpDescriptor(Service.BLOB, OpKind.CREATE_CONTAINER, partition=name)
    return call.state.blobs.create_container(name)


@_operation("blob")
def delete_container(call, name: str):
    yield OpDescriptor(Service.BLOB, OpKind.DELETE_CONTAINER, partition=name)
    call.state.blobs.delete_container(name)


@_operation("blob")
def put_block(call, container: str, blob: str, block_id: str, data):
    """``PutBlock``: stage one block (creates the blob if needed)."""
    content = as_content(data)
    yield OpDescriptor(
        Service.BLOB, OpKind.PUT_BLOCK,
        partition=blob_partition(container, blob), nbytes=content.size)
    c = call.state.blobs.get_container(container)
    if blob not in c:
        c.create_block_blob(blob)
    c.get_block_blob(blob).put_block(block_id, content)


@_operation("blob")
def put_block_list(call, container: str, blob: str,
                   block_ids: Sequence[str], *, merge: bool = False):
    """``PutBlockList``: commit the staged blocks in order.

    ``merge=True`` commits on top of the current committed list (the
    multi-writer discipline Algorithm 1 relies on, applied atomically at
    the completion instant).
    """
    yield OpDescriptor(
        Service.BLOB, OpKind.PUT_BLOCK_LIST,
        partition=blob_partition(container, blob),
        block_count=len(block_ids))
    c = call.state.blobs.get_container(container)
    c.get_block_blob(blob).put_block_list(block_ids, merge=merge)


@_operation("blob")
def upload_blob(call, container: str, blob: str, data):
    """Single-shot block blob upload (< 64 MB)."""
    content = as_content(data)
    yield OpDescriptor(
        Service.BLOB, OpKind.UPLOAD_BLOB,
        partition=blob_partition(container, blob), nbytes=content.size)
    c = call.state.blobs.get_container(container)
    if blob not in c:
        c.create_block_blob(blob)
    c.get_block_blob(blob).upload(content)


@_operation("blob")
def get_block(call, container: str, blob: str, index: int):
    """``GetBlock``: read one committed block sequentially."""
    blob_state = call.state.blobs.get_container(container).get_block_blob(blob)
    content = blob_state.get_block(index)
    yield OpDescriptor(
        Service.BLOB, OpKind.GET_BLOCK,
        partition=blob_partition(container, blob), nbytes=content.size)
    return content


@_operation("blob")
def download_block_blob(call, container: str, blob: str):
    """``DownloadText``: stream the whole committed blob."""
    blob_state = call.state.blobs.get_container(container).get_block_blob(blob)
    yield OpDescriptor(
        Service.BLOB, OpKind.DOWNLOAD_BLOB,
        partition=blob_partition(container, blob), nbytes=blob_state.size)
    return blob_state.download()


@_operation("blob", local=True)
def block_count(call, container: str, blob: str) -> int:
    """Committed block count (no round trip: local bookkeeping)."""
    return call.state.blobs.get_container(container) \
        .get_block_blob(blob).block_count


@_operation("blob", local=True)
def list_blobs(call, container: str, prefix: str = ""):
    """Blob names under a container (local bookkeeping read)."""
    return call.state.blobs.get_container(container).list_blobs(prefix)


@_operation("blob")
def create_page_blob(call, container: str, blob: str, max_size: int):
    yield OpDescriptor(
        Service.BLOB, OpKind.CREATE_CONTAINER,  # metadata-cost op
        partition=blob_partition(container, blob))
    c = call.state.blobs.get_container(container)
    return c.create_page_blob(blob, max_size)


@_operation("blob")
def put_page(call, container: str, blob: str, offset: int, data):
    """``PutPage``: random write at a 512-aligned offset."""
    content = as_content(data)
    yield OpDescriptor(
        Service.BLOB, OpKind.PUT_PAGE,
        partition=blob_partition(container, blob), nbytes=content.size)
    c = call.state.blobs.get_container(container)
    c.get_page_blob(blob).put_pages(offset, content)


@_operation("blob")
def get_page(call, container: str, blob: str, offset: int, length: int):
    """``GetPage``: random read of an aligned range (pays seek cost)."""
    yield OpDescriptor(
        Service.BLOB, OpKind.GET_PAGE,
        partition=blob_partition(container, blob), nbytes=length)
    blob_state = call.state.blobs.get_container(container).get_page_blob(blob)
    return blob_state.read(offset, length)


@_operation("blob")
def download_page_blob(call, container: str, blob: str, *,
                       written_only: bool = True):
    """``openRead()``-style streaming download of a page blob.

    ``written_only`` charges only written ranges (the service does not
    ship unwritten zero pages over the wire).
    """
    blob_state = call.state.blobs.get_container(container).get_page_blob(blob)
    nbytes = blob_state.written_bytes if written_only else blob_state.size
    yield OpDescriptor(
        Service.BLOB, OpKind.DOWNLOAD_BLOB,
        partition=blob_partition(container, blob), nbytes=nbytes)
    return blob_state.read_all()


@_operation("blob")
def delete_blob(call, container: str, blob: str, *,
                lease_id=None, delete_snapshots: bool = False):
    yield OpDescriptor(
        Service.BLOB, OpKind.DELETE_BLOB,
        partition=blob_partition(container, blob))
    call.state.blobs.get_container(container).delete_blob(
        blob, lease_id=lease_id, delete_snapshots=delete_snapshots)


@_operation("blob")
def acquire_lease(call, container: str, blob: str):
    """Take the blob's one-minute exclusive write lease."""
    yield OpDescriptor(
        Service.BLOB, OpKind.CREATE_CONTAINER,  # metadata-cost round trip
        partition=blob_partition(container, blob))
    return call.state.blobs.get_container(container) \
        .get_blob(blob).acquire_lease()


@_operation("blob")
def renew_lease(call, container: str, blob: str, lease_id: str):
    yield OpDescriptor(
        Service.BLOB, OpKind.CREATE_CONTAINER,
        partition=blob_partition(container, blob))
    call.state.blobs.get_container(container) \
        .get_blob(blob).renew_lease(lease_id)


@_operation("blob")
def release_lease(call, container: str, blob: str, lease_id: str):
    yield OpDescriptor(
        Service.BLOB, OpKind.CREATE_CONTAINER,
        partition=blob_partition(container, blob))
    call.state.blobs.get_container(container) \
        .get_blob(blob).release_lease(lease_id)


@_operation("blob")
def snapshot_blob(call, container: str, blob: str):
    """Take an immutable point-in-time snapshot."""
    yield OpDescriptor(
        Service.BLOB, OpKind.CREATE_CONTAINER,
        partition=blob_partition(container, blob))
    return call.state.blobs.get_container(container).get_blob(blob).snapshot()


@_operation("blob")
def download_snapshot(call, container: str, blob: str, snapshot_id: str):
    blob_state = call.state.blobs.get_container(container).get_blob(blob)
    snap = blob_state.get_snapshot(snapshot_id)
    yield OpDescriptor(
        Service.BLOB, OpKind.DOWNLOAD_BLOB,
        partition=blob_partition(container, blob), nbytes=snap.size)
    return snap.download()


# ---------------------------------------------------------------------------
# Queue service (paper Algorithms 2-4 API surface)
# ---------------------------------------------------------------------------

@_operation("queue")
def create_queue(call, name: str):
    yield OpDescriptor(Service.QUEUE, OpKind.CREATE_QUEUE, partition=name)
    return call.state.queues.create_queue(name)


@_operation("queue")
def delete_queue(call, name: str):
    yield OpDescriptor(Service.QUEUE, OpKind.DELETE_QUEUE, partition=name)
    call.state.queues.delete_queue(name)


@_operation("queue")
def put_message(call, queue: str, data, *, ttl: Optional[float] = None,
                visibility_delay: float = 0.0):
    """``PutMessage``."""
    content = as_content(data)
    yield OpDescriptor(
        Service.QUEUE, OpKind.PUT_MESSAGE, partition=queue,
        nbytes=content.size)
    if call.drop_message(queue):
        # Injected message loss: the service acked the put but the
        # payload never landed (lost replica write).
        call.state.queues.get_queue(queue)  # still 404s if missing
        return None
    return call.state.queues.get_queue(queue).put_message(
        content, ttl=ttl, visibility_delay=visibility_delay)


def _next_visible_size(call, queue: str) -> int:
    q = call.state.queues.get_queue(queue)
    peeked = q.peek_messages(1)
    return peeked[0].size if peeked else 0


@_operation("queue")
def get_message(call, queue: str, *,
                visibility_timeout: Optional[float] = None):
    """``GetMessage``: returns a message or ``None``."""
    nbytes = _next_visible_size(call, queue)
    yield OpDescriptor(
        Service.QUEUE, OpKind.GET_MESSAGE, partition=queue, nbytes=nbytes)
    msg = call.state.queues.get_queue(queue).get_message(
        visibility_timeout=visibility_timeout)
    if msg is not None and call.duplicate_delivery(queue):
        # Injected duplicate delivery: the message stays visible, so
        # another consumer receives it too (at-least-once anomaly).
        call.state.queues.get_queue(queue).make_visible(msg.message_id)
    return msg


@_operation("queue")
def get_messages(call, queue: str, n: int = 1, *,
                 visibility_timeout: Optional[float] = None):
    """Batch ``GetMessages``: up to 32 messages in one round trip."""
    if not 1 <= n <= 32:
        raise ValueError("n must be in 1..32 (2012 API limit)")
    q = call.state.queues.get_queue(queue)
    visible = q.peek_messages(n)
    nbytes = sum(m.size for m in visible)
    yield OpDescriptor(
        Service.QUEUE, OpKind.GET_MESSAGE, partition=queue,
        nbytes=nbytes, units=max(1, len(visible)))
    got = q.get_messages(n, visibility_timeout=visibility_timeout)
    for m in got:
        if call.duplicate_delivery(queue):
            q.make_visible(m.message_id)
    return got


@_operation("queue")
def peek_message(call, queue: str):
    """``PeekMessage``: non-destructive read, or ``None``."""
    nbytes = _next_visible_size(call, queue)
    yield OpDescriptor(
        Service.QUEUE, OpKind.PEEK_MESSAGE, partition=queue, nbytes=nbytes)
    return call.state.queues.get_queue(queue).peek_message()


@_operation("queue")
def delete_message(call, queue: str, message_id: str, pop_receipt: str):
    """``DeleteMessage``."""
    yield OpDescriptor(
        Service.QUEUE, OpKind.DELETE_MESSAGE, partition=queue)
    call.state.queues.get_queue(queue).delete_message(message_id, pop_receipt)


@_operation("queue")
def update_message(call, queue: str, message_id: str, pop_receipt: str,
                   data=None, *, visibility_timeout: float = 0.0):
    content = as_content(data) if data is not None else None
    yield OpDescriptor(
        Service.QUEUE, OpKind.UPDATE_MESSAGE, partition=queue,
        nbytes=content.size if content is not None else 0)
    return call.state.queues.get_queue(queue).update_message(
        message_id, pop_receipt, content,
        visibility_timeout=visibility_timeout)


@_operation("queue")
def get_message_count(call, queue: str):
    """``GetMsgCount``: the approximate count Algorithm 2 polls."""
    yield OpDescriptor(
        Service.QUEUE, OpKind.GET_MESSAGE_COUNT, partition=queue)
    return call.state.queues.get_queue(queue).approximate_message_count()


@_operation("queue", local=True)
def list_queues(call, prefix: str = ""):
    """Queue names under the account (local bookkeeping read)."""
    return call.state.queues.list_queues(prefix)


# ---------------------------------------------------------------------------
# Table service (paper Algorithm 5 API surface)
# ---------------------------------------------------------------------------

@_operation("table")
def create_table(call, name: str):
    yield OpDescriptor(Service.TABLE, OpKind.CREATE_TABLE, partition=name)
    return call.state.tables.create_table(name)


@_operation("table")
def delete_table(call, name: str):
    yield OpDescriptor(Service.TABLE, OpKind.DELETE_TABLE, partition=name)
    call.state.tables.delete_table(name)


@_operation("table")
def insert(call, table: str, partition_key: str, row_key: str,
           properties: Mapping[str, Any]):
    """``AddRow``: insert a new entity."""
    yield OpDescriptor(
        Service.TABLE, OpKind.INSERT_ENTITY, partition=partition_key,
        nbytes=props_bytes(properties))
    return call.state.tables.get_table(table).insert(
        partition_key, row_key, properties)


@_operation("table")
def get(call, table: str, partition_key: str, row_key: str):
    """``Query`` (point lookup by full key)."""
    t = call.state.tables.get_table(table)
    existing = t.try_get(partition_key, row_key)
    nbytes = existing.size if existing is not None else 0
    yield OpDescriptor(
        Service.TABLE, OpKind.QUERY_ENTITY, partition=partition_key,
        nbytes=nbytes)
    return t.get(partition_key, row_key)


@_operation("table")
def query_partition(call, table: str, partition_key: str,
                    filter=None, *, select=None):
    """Range query over one partition (optionally ``$select``-ed)."""
    t = call.state.tables.get_table(table)
    entities = t.query_partition(partition_key, filter, select=select)
    nbytes = sum(e.size for e in entities)
    yield OpDescriptor(
        Service.TABLE, OpKind.QUERY_ENTITY, partition=partition_key,
        nbytes=nbytes, units=max(1, len(entities)))
    return entities


@_operation("table")
def query(call, table: str, filter=None, *, top: Optional[int] = None,
          continuation=None, select=None):
    """Cross-partition scan with paging (OData ``$top``/continuation)."""
    t = call.state.tables.get_table(table)
    result = t.query(filter, top=top, continuation=continuation,
                     select=select)
    nbytes = sum(e.size for e in result.entities)
    # Spans partitions: charged against the table's own range, like the
    # real service's table-server scan coordinator.
    yield OpDescriptor(
        Service.TABLE, OpKind.QUERY_ENTITY, partition=table,
        nbytes=nbytes, units=max(1, len(result.entities)))
    return result


@_operation("table")
def update(call, table: str, partition_key: str, row_key: str,
           properties: Mapping[str, Any], *, etag: Optional[str] = "*"):
    """``Update``: replace the property bag (wildcard ETag by default)."""
    yield OpDescriptor(
        Service.TABLE, OpKind.UPDATE_ENTITY, partition=partition_key,
        nbytes=props_bytes(properties))
    return call.state.tables.get_table(table).update(
        partition_key, row_key, properties, etag=etag)


@_operation("table")
def merge(call, table: str, partition_key: str, row_key: str,
          properties: Mapping[str, Any], *, etag: Optional[str] = "*"):
    yield OpDescriptor(
        Service.TABLE, OpKind.MERGE_ENTITY, partition=partition_key,
        nbytes=props_bytes(properties))
    return call.state.tables.get_table(table).merge(
        partition_key, row_key, properties, etag=etag)


@_operation("table")
def insert_or_replace(call, table: str, partition_key: str, row_key: str,
                      properties: Mapping[str, Any]):
    """Upsert, replacing the property bag if the entity exists."""
    yield OpDescriptor(
        Service.TABLE, OpKind.UPDATE_ENTITY, partition=partition_key,
        nbytes=props_bytes(properties))
    return call.state.tables.get_table(table).insert_or_replace(
        partition_key, row_key, properties)


@_operation("table")
def insert_or_merge(call, table: str, partition_key: str, row_key: str,
                    properties: Mapping[str, Any]):
    """Upsert, merging into the property bag if the entity exists."""
    yield OpDescriptor(
        Service.TABLE, OpKind.MERGE_ENTITY, partition=partition_key,
        nbytes=props_bytes(properties))
    return call.state.tables.get_table(table).insert_or_merge(
        partition_key, row_key, properties)


@_operation("table")
def delete(call, table: str, partition_key: str, row_key: str, *,
           etag: Optional[str] = "*"):
    """``Delete``."""
    t = call.state.tables.get_table(table)
    existing = t.try_get(partition_key, row_key)
    nbytes = existing.size if existing is not None else 0
    yield OpDescriptor(
        Service.TABLE, OpKind.DELETE_ENTITY, partition=partition_key,
        nbytes=nbytes)
    t.delete(partition_key, row_key, etag=etag)


@_operation("table")
def execute_batch(call, table: str, operations: Sequence[BatchOperation]):
    """Entity-group transaction: one round trip, atomic."""
    ops = list(operations)
    nbytes = sum(props_bytes(op.properties or {}) for op in ops)
    partition = ops[0].partition_key if ops else table
    yield OpDescriptor(
        Service.TABLE, OpKind.BATCH, partition=partition,
        nbytes=nbytes, units=max(1, len(ops)))
    return call.state.tables.get_table(table).execute_batch(ops)


# ---------------------------------------------------------------------------
# Caching service (paper II.B; the paper's future-work item)
# ---------------------------------------------------------------------------

@_operation("cache")
def create_cache(call, name: str, *, capacity_bytes: int = None,
                 default_ttl: float = None):
    yield OpDescriptor(Service.CACHE, OpKind.CREATE_CACHE, partition=name)
    kwargs = {}
    if capacity_bytes is not None:
        kwargs["capacity_bytes"] = capacity_bytes
    if default_ttl is not None:
        kwargs["default_ttl"] = default_ttl
    return call.cache_state.create_cache(name, **kwargs)


@_operation("cache")
def put(call, cache: str, key: str, value, *, ttl: float = None,
        sliding: bool = False):
    content = as_content(value)
    yield OpDescriptor(
        Service.CACHE, OpKind.CACHE_PUT, partition=cache,
        nbytes=content.size)
    return call.cache_state.get_cache(cache).put(
        key, content, ttl=ttl, sliding=sliding)


@_operation("cache", name="get")
def cache_get(call, cache: str, key: str):
    """Returns the cached Content or None on miss."""
    c = call.cache_state.get_cache(cache)
    # The transfer size of a hit is known server-side; peek it for the
    # cost model without disturbing LRU order or statistics.
    nbytes = 0
    if c.contains(key):
        nbytes = c._items[key].size
    yield OpDescriptor(
        Service.CACHE, OpKind.CACHE_GET, partition=cache, nbytes=nbytes)
    item = c.get(key)
    return item.value if item is not None else None


@_operation("cache")
def remove(call, cache: str, key: str):
    yield OpDescriptor(Service.CACHE, OpKind.CACHE_REMOVE, partition=cache)
    return call.cache_state.get_cache(cache).remove(key)
