"""Resilience policies: retry strategies, budgets, breakers, deadlines.

The counterpart of :mod:`repro.faults`: where the fault engine decides
what breaks, this package decides how clients cope.  The paper-faithful
default everywhere is :class:`FixedBackoff` (sleep the server's
Retry-After hint — 1 s — and retry forever); everything else exists so
the robustness benchmarks can compare recovery strategies.
"""

from .breaker import BreakerState, CircuitBreaker, CircuitOpenError
from .deadline import Deadline
from .policy import (
    ExponentialJitterBackoff,
    FixedBackoff,
    RetryBudget,
    RetryPolicy,
    RetryStats,
)

__all__ = [
    "RetryPolicy",
    "RetryStats",
    "FixedBackoff",
    "ExponentialJitterBackoff",
    "RetryBudget",
    "CircuitBreaker",
    "CircuitOpenError",
    "BreakerState",
    "Deadline",
]
