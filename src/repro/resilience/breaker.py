"""Circuit breaker: fail fast instead of hammering a dead dependency.

A :class:`CircuitBreaker` sits in front of the retry loop.  While CLOSED
it only counts failures; after ``failure_threshold`` consecutive
retryable failures it OPENs and every attempt fails immediately with
:class:`CircuitOpenError` (no fabric round trip, no back-off sleep).
After ``reset_timeout`` simulated seconds it becomes HALF_OPEN: one
trial attempt is admitted — success re-CLOSEs the breaker, failure
re-OPENs it for another ``reset_timeout``.  The trial is a *single*
probe: while it is in flight every other caller is rejected, so a herd
of concurrent workers sharing one breaker cannot all stampede a
dependency that is still recovering.

During a partition failover this converts thousands of doomed requests
into instant local failures, which is exactly the retry-amplification
control Calder et al. describe the real fabric needing.
"""

from __future__ import annotations

import enum

__all__ = ["BreakerState", "CircuitBreaker", "CircuitOpenError"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitOpenError(Exception):
    """Raised without attempting the operation: the circuit is open."""

    def __init__(self, message: str = "circuit breaker is open", *,
                 retry_at: float = 0.0) -> None:
        super().__init__(message)
        #: Simulated time at which the breaker will admit a trial attempt.
        self.retry_at = retry_at


class CircuitBreaker:
    """Consecutive-failure circuit breaker over simulated time."""

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout: float = 30.0) -> None:
        if failure_threshold < 1 or reset_timeout <= 0:
            raise ValueError("need failure_threshold >= 1 and reset_timeout > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = float("-inf")
        #: Times the breaker tripped CLOSED/HALF_OPEN -> OPEN.
        self.trips = 0
        #: Attempts rejected while OPEN.
        self.rejections = 0
        #: The HALF_OPEN trial attempt currently in flight, if any.
        self._probe_in_flight = False

    # -- gate --------------------------------------------------------------
    def before_attempt(self, now: float) -> None:
        """Admit or reject one attempt; raises :class:`CircuitOpenError`."""
        if self.state is BreakerState.OPEN:
            retry_at = self.opened_at + self.reset_timeout
            if now < retry_at:
                self.rejections += 1
                raise CircuitOpenError(
                    f"circuit open until t={retry_at:g}", retry_at=retry_at)
            # Reset window elapsed: admit exactly one trial probe.
            self.state = BreakerState.HALF_OPEN
            self._probe_in_flight = True
        elif self.state is BreakerState.HALF_OPEN:
            if self._probe_in_flight:
                # Another caller's trial is still undecided.  Admitting
                # more would let a whole worker herd through the
                # half-open door at once — the outcome decides shortly,
                # so concurrent callers fail fast and retry.
                self.rejections += 1
                raise CircuitOpenError(
                    "circuit half-open: trial probe in flight",
                    retry_at=now)
            self._probe_in_flight = True

    # -- outcome reporting -------------------------------------------------
    def record_success(self, now: float) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self, now: float) -> None:
        self._probe_in_flight = False
        self.consecutive_failures += 1
        if (self.state is BreakerState.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold):
            if self.state is not BreakerState.OPEN:
                self.trips += 1
            self.state = BreakerState.OPEN
            self.opened_at = now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CircuitBreaker {self.state.value} "
                f"failures={self.consecutive_failures} trips={self.trips}>")
