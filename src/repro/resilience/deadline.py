"""Deadline propagation: a retry loop must not outlive its caller's patience.

A :class:`Deadline` is an absolute point in simulated time after which no
further attempt or back-off sleep may start.  Passing the *same* deadline
object down through nested operations propagates the caller's overall
budget (each callee consumes from it) instead of resetting the clock at
every layer — the standard fix for "retry storms of retries".

:func:`repro.sim.retrying` accepts either a :class:`Deadline` or a plain
``float`` (seconds from the first attempt, converted internally).
"""

from __future__ import annotations

__all__ = ["Deadline"]


class Deadline:
    """An absolute give-up time in simulated seconds."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, now: float, seconds: float) -> "Deadline":
        """Deadline ``seconds`` from ``now`` (e.g. ``Deadline.after(env.now, 30)``)."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        return cls(now + seconds)

    def remaining(self, now: float) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - now)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def allows_sleep(self, now: float, delay: float) -> bool:
        """Would sleeping ``delay`` seconds still leave time to retry?"""
        return now + delay < self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(expires_at={self.expires_at:g})"
