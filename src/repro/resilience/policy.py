"""Retry policies: how a client backs off after a retryable failure.

The paper's discipline (IV.C) is "sleep for a second before retrying the
same operation" — :class:`FixedBackoff` with no override, which honours
the server's Retry-After hint (1 s by default) and is the repo-wide
default so paper benchmarks are unchanged.  The richer policies let the
robustness benchmarks ask the questions the paper could not:

* :class:`ExponentialJitterBackoff` — capped exponential back-off with
  full jitter (the AWS architecture-blog recipe), seeded for
  reproducibility.
* :class:`RetryBudget` — a token bucket that bounds cluster-wide retry
  *amplification*: when the budget is exhausted the policy gives up
  instead of joining a retry storm.

Policies are consumed by :func:`repro.sim.retrying` and carry their own
:class:`RetryStats`, which :func:`repro.storage.analytics.resilience_summary`
folds into benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "RetryStats",
    "RetryPolicy",
    "FixedBackoff",
    "ExponentialJitterBackoff",
    "RetryBudget",
]


@dataclass
class RetryStats:
    """Counters one policy accumulates across every op it guards."""

    policy: str = "policy"
    #: Operation attempts (first tries + retries).
    attempts: int = 0
    #: Attempts that returned successfully.
    successes: int = 0
    #: Retryable failures that led to a back-off and another attempt.
    retries: int = 0
    #: Retryable failures re-raised (budget/deadline/max-retries giveups).
    giveups: int = 0
    #: Total simulated seconds spent sleeping between attempts.
    total_backoff: float = 0.0

    @property
    def logical_ops(self) -> int:
        """Distinct operations issued (attempts minus re-attempts)."""
        return self.attempts - self.retries

    @property
    def amplification(self) -> float:
        """Observed retry amplification: attempts per logical operation."""
        ops = self.logical_ops
        return self.attempts / ops if ops else 1.0


class RetryPolicy:
    """Base class: decides the delay before the next retry.

    :meth:`backoff` returns the back-off delay in (simulated) seconds, or
    ``None`` to give up (the caller re-raises the error).  ``attempt``
    counts retryable failures so far, starting at 1 for the failure that
    triggers the first retry.  Implementations must be deterministic
    given their constructor arguments (seed any randomness).
    """

    name = "policy"

    def __init__(self) -> None:
        self.stats = RetryStats(policy=self.name)

    def backoff(self, attempt: int, exc: BaseException, *,
                now: float = 0.0) -> Optional[float]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.stats!r}>"


class FixedBackoff(RetryPolicy):
    """The paper's policy: sleep a fixed interval, retry forever.

    ``delay=None`` (the default) honours the error's ``retry_after`` hint
    — exactly the pre-policy behaviour of :func:`repro.sim.retrying`, so
    paper benchmarks are bit-identical under it.
    """

    name = "fixed"

    def __init__(self, delay: Optional[float] = None) -> None:
        super().__init__()
        if delay is not None and delay < 0:
            raise ValueError("delay must be >= 0")
        self.delay = delay

    def backoff(self, attempt: int, exc: BaseException, *,
                now: float = 0.0) -> Optional[float]:
        if self.delay is not None:
            return self.delay
        return getattr(exc, "retry_after", 1.0)


class ExponentialJitterBackoff(RetryPolicy):
    """Capped exponential back-off with full jitter.

    Delay before retry ``k`` is uniform on ``[0, min(cap, base *
    factor**(k-1))]``; the uniform draw comes from a seeded generator so
    runs are reproducible.
    """

    name = "expo-jitter"

    def __init__(self, *, base: float = 0.25, factor: float = 2.0,
                 cap: float = 30.0, seed: int = 0) -> None:
        super().__init__()
        if base <= 0 or factor < 1.0 or cap < base:
            raise ValueError("need base > 0, factor >= 1, cap >= base")
        self.base = base
        self.factor = factor
        self.cap = cap
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def backoff(self, attempt: int, exc: BaseException, *,
                now: float = 0.0) -> Optional[float]:
        ceiling = min(self.cap, self.base * self.factor ** (attempt - 1))
        return float(self._rng.uniform(0.0, ceiling))


class RetryBudget(RetryPolicy):
    """A token bucket bounding the global retry rate.

    Each retry spends one token; tokens refill at ``refill_rate`` per
    simulated second up to ``capacity``.  An empty bucket makes the
    policy give up (return ``None``) — under a fabric-wide throttle storm
    this is what stops N workers from amplifying the load N-fold, at the
    cost of surfacing the error to the application.

    ``inner`` supplies the delay when a token is available (default: the
    paper's :class:`FixedBackoff`).
    """

    name = "retry-budget"

    def __init__(self, *, capacity: float = 10.0, refill_rate: float = 0.5,
                 inner: Optional[RetryPolicy] = None) -> None:
        super().__init__()
        if capacity < 1 or refill_rate < 0:
            raise ValueError("need capacity >= 1 and refill_rate >= 0")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.inner = inner if inner is not None else FixedBackoff()
        self.tokens = self.capacity
        self._last_refill = 0.0
        #: Retries declined because the bucket was empty.
        self.exhaustions = 0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self.tokens = min(self.capacity, self.tokens + elapsed * self.refill_rate)

    def backoff(self, attempt: int, exc: BaseException, *,
                now: float = 0.0) -> Optional[float]:
        self._refill(now)
        if self.tokens < 1.0:
            self.exhaustions += 1
            return None
        self.tokens -= 1.0
        return self.inner.backoff(attempt, exc, now=now)
