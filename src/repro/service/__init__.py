"""The networked SN/DN service tier with an Azurite-compatible wire.

This package promotes the in-process emulator into a small distributed
system shaped like the real storage service (and like HSDS's
service-node / data-node split):

* **Service nodes** (:mod:`~repro.service.servicenode`) — stateless HTTP
  front-ends: SharedKey auth, per-tenant ``auth -> analytics ->
  throttles`` pipelines, partition routing, fan-out merges.
* **Data nodes** (:mod:`~repro.service.datanode`) — the shards owning
  partition sets, executing ops through the same registry pipeline the
  emulator and the DES drive.
* **Wire** (:mod:`~repro.service.wire`) — the 2012-02-12 Azurite subset:
  enough Blob/Queue/Table REST that period SDKs (or raw HTTP) work.

``repro serve`` boots a cluster from the CLI; ``--backend service`` runs
any figure workload against one in-process.
"""

from .cluster import ClusterRunner, ServiceCluster
from .client import (
    ServiceConnection,
    WireBlobClient,
    WireQueueClient,
    WireTableClient,
)
from .datanode import DataNode, DataNodeClient
from .membership import FailureDomainConfig, Membership, NodeState
from .ring import DEFAULT_VNODES, HashRing
from .servicenode import SERVICES, ServiceNode
from .sharedkey import DEV_ACCOUNT, DEV_KEY, SignatureError
from .tenants import Tenant, TenantConfig, TenantDirectory

__all__ = [
    "ServiceCluster",
    "ClusterRunner",
    "HashRing",
    "DEFAULT_VNODES",
    "Membership",
    "FailureDomainConfig",
    "NodeState",
    "ServiceConnection",
    "WireBlobClient",
    "WireQueueClient",
    "WireTableClient",
    "DataNode",
    "DataNodeClient",
    "ServiceNode",
    "SERVICES",
    "Tenant",
    "TenantConfig",
    "TenantDirectory",
    "DEV_ACCOUNT",
    "DEV_KEY",
    "SignatureError",
]
