"""Synchronous wire clients: the registry surface over real HTTP.

:class:`ServiceConnection` is a minimal 2012-era SDK: one keep-alive
``http.client`` connection per service, SharedKey signing on every
request, and error bodies decoded back into the same
:mod:`repro.storage.errors` hierarchy the in-process backends raise — so
retry loops and fault-handling benchmark bodies run unchanged.

The ``Wire*Client`` classes are derived from the operation registry like
every other backend's clients: each method encodes its call through
:mod:`repro.service.wire`, sends it, and parses the reply.  They are
generator *shims* (never-yielding, like the emulator's), so sim-style
bodies (``yield from client.op(...)``) drive a live cluster unchanged.

A connection is **not** thread-safe; give each worker thread its own
(the ``ServiceBackend`` does).
"""

from __future__ import annotations

import http.client
import time
from typing import Any, Dict, Mapping, Tuple
from urllib.parse import quote

from ..pipeline import OpSpec, derive_client_class
from ..storage.errors import StorageError
from . import sharedkey
from .wire import ENCODERS, WIRE_VERSION, WireCall, _http_date, \
    response_to_error

__all__ = [
    "ServiceConnection",
    "WireBlobClient",
    "WireQueueClient",
    "WireTableClient",
]


class ServiceConnection:
    """Signed keep-alive HTTP connections to one service node."""

    def __init__(self, endpoints: Mapping[str, Tuple[str, int]],
                 account: str = sharedkey.DEV_ACCOUNT,
                 key: str = sharedkey.DEV_KEY, *,
                 timeout: float = 30.0, busy_retries: int = 0,
                 max_retry_after: float = 5.0) -> None:
        self.endpoints = dict(endpoints)
        self.account = account
        self.key = key
        self.timeout = timeout
        #: 503 ServerBusy replies are retried up to this many times,
        #: honoring the server's ``Retry-After`` hint (capped at
        #: ``max_retry_after`` wall seconds).  Default 0: callers that
        #: assert on 503s (tenant-isolation tests, throttling figures)
        #: see every rejection.
        self.busy_retries = busy_retries
        self.max_retry_after = max_retry_after
        self._conns: Dict[str, http.client.HTTPConnection] = {}

    def close(self) -> None:
        for conn in self._conns.values():
            conn.close()
        self._conns.clear()

    def _connection(self, service: str) -> http.client.HTTPConnection:
        conn = self._conns.get(service)
        if conn is None:
            host, port = self.endpoints[service]
            conn = http.client.HTTPConnection(host, port,
                                              timeout=self.timeout)
            self._conns[service] = conn
        return conn

    def exchange(self, call: WireCall) -> Any:
        """Send one encoded call; return its parsed result or raise.

        503 ServerBusy replies are retried ``busy_retries`` times after
        sleeping the server's ``Retry-After`` hint — the 2012 SDK habit
        the scalability-target docs prescribe.  Each attempt is re-dated
        and re-signed (a slept request must not go out stale).
        """
        for attempt in range(self.busy_retries + 1):
            try:
                return self._exchange_once(call)
            except StorageError as exc:
                if (getattr(exc, "status_code", None) != 503
                        or attempt >= self.busy_retries):
                    raise
                hint = getattr(exc, "retry_after", None)
                if hint is None:
                    hint = 1.0
                time.sleep(min(max(0.0, hint), self.max_retry_after))
        raise RuntimeError("unreachable")  # pragma: no cover

    def _exchange_once(self, call: WireCall) -> Any:
        path = f"/{self.account}{call.path}"
        query = {k: str(v) for k, v in call.query.items()}
        headers = dict(call.headers)
        headers["x-ms-date"] = _http_date(time.time())
        headers["x-ms-version"] = WIRE_VERSION
        signable = dict(headers)
        signable["Content-Length"] = str(len(call.body))
        headers["Authorization"] = sharedkey.sign_request(
            self.account, self.key, call.method, path, query,
            signable, table_flavor=(call.service == "table"))
        target = path
        if query:
            target += "?" + "&".join(
                f"{quote(k, safe='')}={quote(v, safe='')}"
                for k, v in query.items())
        status, resp_headers, body = self._send(
            call.service, call.method, target, headers, call.body)
        if status >= 400:
            raise response_to_error(status, resp_headers, body,
                                    table=(call.service == "table"))
        return call.parse(status, resp_headers, body)

    def _send(self, service: str, method: str, target: str,
              headers: Mapping[str, str], body: bytes):
        for attempt in (0, 1):
            conn = self._connection(service)
            try:
                conn.request(method, target, body=body or None,
                             headers=dict(headers))
                resp = conn.getresponse()
                payload = resp.read()
            except (ConnectionError, http.client.BadStatusLine,
                    http.client.CannotSendRequest, BrokenPipeError):
                # A stale keep-alive socket; rebuild it once.
                conn.close()
                del self._conns[service]
                if attempt:
                    raise
                continue
            lower = {k.lower(): v for k, v in resp.getheaders()}
            return resp.status, lower, payload
        raise RuntimeError("unreachable")  # pragma: no cover


def _wire_shim_method(spec: OpSpec):
    """Never-yielding generator sending ``spec`` over the wire."""
    name = spec.name

    def method(self, *args, **kwargs):
        return self._invoke(name, args, kwargs)
        yield  # pragma: no cover -- marks this as a generator function

    method.__name__ = name
    method.__doc__ = spec.body.__doc__
    return method


def _wire_local_method(spec: OpSpec):
    """Registry-local reads still cross the wire here (the state is
    remote), but stay plain calls like on every other backend."""
    name = spec.name

    def method(self, *args, **kwargs):
        return self._invoke(name, args, kwargs)

    method.__name__ = name
    method.__doc__ = spec.body.__doc__
    return method


class _WireClientBase:
    """Plumbing every derived wire client shares."""

    kind = ""

    def __init__(self, connection: ServiceConnection) -> None:
        self.connection = connection
        self.env = None  # the backend sets this (QueueBarrier clock source)

    def _invoke(self, op: str, args: tuple, kwargs: dict):
        builder = ENCODERS.get((self.kind, op))
        if builder is None:
            raise NotImplementedError(
                f"{self.kind}.{op} has no wire encoding; run this "
                f"workload on the sim or emulator backend")
        return self.connection.exchange(builder(*args, **kwargs))


_WIRE_DOC = "Registry client over the service tier's HTTP wire."

WireBlobClient = derive_client_class(
    "WireBlobClient", "blob", _WireClientBase,
    method_factory=_wire_shim_method, local_factory=_wire_local_method,
    doc=_WIRE_DOC)
WireBlobClient.kind = "blob"

WireQueueClient = derive_client_class(
    "WireQueueClient", "queue", _WireClientBase,
    method_factory=_wire_shim_method, local_factory=_wire_local_method,
    doc=_WIRE_DOC)
WireQueueClient.kind = "queue"

WireTableClient = derive_client_class(
    "WireTableClient", "table", _WireClientBase,
    method_factory=_wire_shim_method, local_factory=_wire_local_method,
    doc=_WIRE_DOC)
WireTableClient.kind = "table"
