"""Cluster assembly: N service nodes over M data-node shards, one loop.

:class:`ServiceCluster` wires the tiers together inside a single asyncio
event loop (each node is I/O-bound; the shared loop is the in-process
analogue of a rack).  :class:`ClusterRunner` hosts that loop on a daemon
thread so synchronous callers — the CLI's ``repro serve``, the
``ServiceBackend``'s worker threads, the test suite's ``http.client``
round trips — can stand a cluster up, talk to it over real sockets, and
tear it down.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional, Tuple

from ..storage.clock import WallClock
from .datanode import DataNode, DataNodeClient
from .membership import FailureDomainConfig, Membership
from .servicenode import ServiceNode
from .tenants import TenantDirectory

__all__ = ["ServiceCluster", "ClusterRunner"]


class ServiceCluster:
    """One SN/DN deployment; create, ``await start()``, use, ``stop()``."""

    def __init__(self, *, nodes: int = 1, dn: int = 2,
                 tenants: Optional[TenantDirectory] = None,
                 host: str = "127.0.0.1",
                 ports: Optional[Dict[str, int]] = None,
                 fifo_jitter_seed: Optional[int] = None,
                 failure_domain: Optional[FailureDomainConfig] = None,
                 access_log_path: Optional[str] = None) -> None:
        if nodes < 1 or dn < 1:
            raise ValueError("a cluster needs >= 1 service and data node")
        self.tenants = tenants if tenants is not None else TenantDirectory()
        self.host = host
        #: Fixed ports apply to service node 0 only; the rest go ephemeral.
        self.ports = dict(ports or {})
        self.fifo_jitter_seed = fifo_jitter_seed
        self.access_log_path = access_log_path
        #: Default = the null failure domain: R=1, no health checks —
        #: exactly the old static single-owner cluster.
        self.failure_domain = (failure_domain if failure_domain is not None
                               else FailureDomainConfig())
        if self.failure_domain.replicas > dn:
            raise ValueError(
                f"replicas={self.failure_domain.replicas} needs at least "
                f"that many data nodes (have {dn})")
        shard_limits = {t.account: t.limits for t in self.tenants}
        self.data_nodes: List[DataNode] = [
            DataNode(i, shard_limits, fifo_jitter_seed=fifo_jitter_seed)
            for i in range(dn)
        ]
        self.service_nodes: List[ServiceNode] = []
        self.membership: Optional[Membership] = None
        self._n_service_nodes = nodes
        self._dn_clients: List[DataNodeClient] = []
        self._started = False

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        for dn in self.data_nodes:
            dn_host, dn_port = await dn.start(self.host)
            self._dn_clients.append(DataNodeClient(dn_host, dn_port))
        # One membership (liveness + ring) shared by every SN, so the
        # whole cluster agrees on placement and on who is dead.
        self.membership = Membership(
            self.failure_domain, self._dn_clients,
            list(self.tenants.accounts()))
        self.membership.start()
        # One clock for every SN: the tenants' sliding throttle windows
        # are charged with SN clock readings, so the origins must agree.
        clock = WallClock()
        for i in range(self._n_service_nodes):
            sn = ServiceNode(i, self.tenants, self._dn_clients,
                             membership=self.membership, clock=clock,
                             access_log_path=self.access_log_path)
            await sn.start(self.host, self.ports if i == 0 else None)
            self.service_nodes.append(sn)
        self._started = True

    async def stop(self) -> None:
        # Graceful order: stop accepting + drain in-flight requests,
        # stop the health checker, then tear the DN links and DNs down.
        for sn in self.service_nodes:
            await sn.stop()
        if self.membership is not None:
            await self.membership.stop()
        for client in self._dn_clients:
            await client.close()
        for dn in self.data_nodes:
            await dn.stop()
        self.service_nodes.clear()
        self._dn_clients.clear()
        self.membership = None
        self._started = False

    # -- failure-domain controls --------------------------------------------
    def crash_data_node(self, index: int) -> None:
        """Kill DN ``index`` the hard way (the DN_CRASH chaos fault).

        The process "dies" (listener closed, connections aborted) and the
        membership learns of it the honest way: missed heartbeats.
        """
        self.data_nodes[index].crash()

    async def drain_data_node(self, index: int) -> None:
        """Gracefully retire DN ``index``: migrate first, then remove."""
        if self.membership is None:
            raise RuntimeError("cluster is not started")
        await self.membership.drain(index)
        self.data_nodes[index].crash()

    # -- conveniences -------------------------------------------------------
    def endpoints(self, node: int = 0) -> Dict[str, Tuple[str, int]]:
        """``service -> (host, port)`` for one service node."""
        return dict(self.service_nodes[node].endpoints)

    def set_fault_plan(self, account: str, plan) -> None:
        """Install a fault plan on every shard of ``account``."""
        for dn in self.data_nodes:
            dn.set_fault_plan(account, plan)

    def describe(self) -> str:
        lines = [f"{len(self.service_nodes)} service node(s), "
                 f"{len(self.data_nodes)} data node(s), "
                 f"accounts: {', '.join(self.tenants.accounts())}"]
        for sn in self.service_nodes:
            eps = ", ".join(f"{svc} http://{h}:{p}/"
                            for svc, (h, p) in sorted(sn.endpoints.items()))
            lines.append(f"  sn{sn.index}: {eps}")
        return "\n".join(lines)


class ClusterRunner:
    """Host a :class:`ServiceCluster` on a daemon-thread event loop."""

    def __init__(self, cluster: ServiceCluster) -> None:
        self.cluster = cluster
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> None:
        self._thread = threading.Thread(
            target=self._run, name="service-cluster", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service cluster failed to start in time")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.cluster.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_forever()
        # stop() scheduled the shutdown before halting the loop; drain it,
        # then cancel connection tasks still parked on idle keep-alives.
        self._loop.run_until_complete(self.cluster.stop())
        pending = [t for t in asyncio.all_tasks(self._loop) if not t.done()]
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop = None
        self._thread = None

    # -- failure-domain controls (thread-safe) -------------------------------
    def kill_data_node(self, index: int) -> None:
        """Crash one DN from any thread (the load/chaos kill switch)."""
        if self._loop is None:
            raise RuntimeError("cluster is not running")
        self._loop.call_soon_threadsafe(
            self.cluster.crash_data_node, index)

    def set_data_node_slow(self, index: int, delay: float) -> None:
        """Make DN ``index`` stall every request by ``delay`` seconds
        (the DN_SLOW chaos fault); ``0.0`` heals it."""
        if self._loop is None:
            raise RuntimeError("cluster is not running")
        self._loop.call_soon_threadsafe(
            setattr, self.cluster.data_nodes[index], "slow_delay", delay)

    def drain_data_node(self, index: int, timeout: float = 30.0) -> None:
        """Gracefully retire one DN; blocks until migration completes."""
        if self._loop is None:
            raise RuntimeError("cluster is not running")
        asyncio.run_coroutine_threadsafe(
            self.cluster.drain_data_node(index), self._loop
        ).result(timeout)

    def wait_settled(self, timeout: float = 30.0) -> bool:
        """Block until death detection + rebalancing has quiesced."""
        if self._loop is None:
            raise RuntimeError("cluster is not running")
        membership = self.cluster.membership
        if membership is None:
            return True
        return asyncio.run_coroutine_threadsafe(
            membership.wait_settled(timeout), self._loop
        ).result(timeout + 5.0)

    def wait_deaths_detected(self, count: int = 1,
                             timeout: float = 30.0) -> bool:
        """Block until the heartbeats have declared ``count`` DNs dead."""
        import time as _time
        membership = self.cluster.membership
        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            if (membership is not None
                    and membership.counters["deaths"] >= count):
                return True
            _time.sleep(0.02)
        return False

    def __enter__(self) -> "ClusterRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
