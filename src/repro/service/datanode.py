"""Data nodes: the shards that own partitions and execute operations.

A data node is one asyncio TCP server holding the *storage state
machines* for every account, sharded by partition key: the service
nodes route each operation to the DN that owns its partition (or
broadcast namespace operations to all DNs).  Operations execute through
the registry pipeline via :class:`~repro.pipeline.executors.AsyncExecutor`
— the same ``prepare -> interceptors -> apply`` drive the emulator's
threads use, so the two tiers cannot diverge semantically.

The internal SN->DN protocol is deliberately dumb: length-prefixed
pickle frames carrying ``(account, client, op, args, kwargs)`` one way
and ``("ok", result)`` / ``("storage-err", payload)`` the other.  It is
a trusted, same-deployment link (like HSDS's internal DN traffic), so
fidelity lives at the *wire* tier, not here.

The same link carries the *fabric* traffic of the failure domain:
``_ping`` heartbeats, ``_manifest`` (what data does this node hold),
and ``_export_* / _import_*`` shard streams the rebalancer uses to
restore replication after a node dies (see
:mod:`repro.service.membership`).  Migration moves state machines
directly — replica copies are fabric-internal, not client requests, so
they bypass the op pipeline (no throttling, no fault injection) the
way a real fabric's inter-node replication bypasses the front door.

``crash()`` kills a node the hard way — listener closed, every open
connection aborted mid-frame — which is what the DN_CRASH chaos fault
and the failover tests use to model a crash-stop process death.
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple, Union

from ..pipeline import (
    AsyncExecutor,
    FaultInterceptor,
    OPERATIONS,
    OpCall,
    Pipeline,
)
from ..storage import StorageAccountState, WallClock
from ..storage.blob.state import BlockBlobState, PageBlobState
from ..storage.errors import StorageError
from ..storage.cache import CacheServiceState
from ..storage.limits import LIMITS_2012
from ..storage.table.entity import Entity
from .wire import error_to_payload, payload_to_error

__all__ = ["DataNode", "DataNodeClient"]

_LEN_BYTES = 4
_MAX_FRAME = 64 * 1024 * 1024


async def _read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    try:
        header = await reader.readexactly(_LEN_BYTES)
    except asyncio.IncompleteReadError:
        return None
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise ConnectionError(f"frame of {length} B exceeds {_MAX_FRAME} B")
    return await reader.readexactly(length)


def _write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(len(payload).to_bytes(_LEN_BYTES, "big") + payload)


class _Shard:
    """One account's slice of state on one data node."""

    def __init__(self, account: str, *, limits=LIMITS_2012, clock=None,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        clock = clock if clock is not None else WallClock()
        self.state = StorageAccountState(
            account, clock, limits, fifo_jitter_seed=fifo_jitter_seed)
        self.cache_state = CacheServiceState(clock)
        self.fault_plan = None
        self.pipeline = Pipeline([
            FaultInterceptor(lambda: self.fault_plan, cluster=None),
        ])
        self.executor = AsyncExecutor(self.state, self.pipeline)
        self.op_call = OpCall(
            self.state, self.cache_state,
            now_fn=clock.now, plan_fn=lambda: self.fault_plan)


class DataNode:
    """One shard server: per-account state + async registry executor."""

    def __init__(self, index: int,
                 accounts: Union[Mapping[str, object], Iterable[str]], *,
                 limits=LIMITS_2012, clock=None,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        self.index = index
        if isinstance(accounts, Mapping):
            items = list(accounts.items())   # account -> its own limits
        else:
            items = [(account, limits) for account in accounts]
        self._shards: Dict[str, _Shard] = {
            account: _Shard(account, limits=acct_limits, clock=clock,
                            fifo_jitter_seed=fifo_jitter_seed)
            for account, acct_limits in items
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self.requests_served = 0
        self.crashed = False
        #: Injected per-request service delay in seconds (DN_SLOW fault).
        self.slow_delay = 0.0

    # -- lifecycle ----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0
                    ) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve_connection, host, port)
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def crash(self) -> None:
        """Crash-stop this node: stop listening, abort every connection.

        In-flight requests die with a transport error on the SN side,
        exactly like a process kill — no goodbye frames, no flushing.
        """
        self.crashed = True
        if self._server is not None:
            self._server.close()
            self._server = None
        for writer in list(self._writers):
            try:
                writer.transport.abort()
            except Exception:  # pragma: no cover - already torn down
                pass

    # -- faults / introspection --------------------------------------------
    def shard(self, account: str) -> _Shard:
        return self._shards[account]

    def set_fault_plan(self, account: str, plan) -> None:
        self._shards[account].fault_plan = plan

    # -- the request loop ---------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                frame = await _read_frame(reader)
                if frame is None or self.crashed:
                    break
                account, client, op, args, kwargs = pickle.loads(frame)
                reply = await self._dispatch(account, client, op,
                                             args, kwargs)
                try:
                    payload = pickle.dumps(reply)
                except Exception as exc:  # unpicklable result: report it
                    payload = pickle.dumps(
                        ("err", f"unpicklable result for {op}: {exc}"))
                _write_frame(writer, payload)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # loop teardown: finish cleanly, not "cancelled"
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):  # pragma: no cover
                pass

    async def _dispatch(self, account: str, client: str, op: str,
                        args: tuple, kwargs: dict) -> tuple:
        self.requests_served += 1
        if op == "_ping":
            # Heartbeat: account-agnostic, answered before shard lookup.
            return ("ok", {"node": self.index,
                           "served": self.requests_served})
        if self.slow_delay > 0:
            # DN_SLOW fault: a sick-but-alive node (GC stall, bad disk).
            await asyncio.sleep(self.slow_delay)
        shard = self._shards.get(account)
        if shard is None:
            return ("err", f"data node {self.index} holds no shard for "
                           f"account {account!r}")
        try:
            if op.startswith("_manifest") or op.startswith("_export_") \
                    or op.startswith("_import_"):
                result = _FABRIC_OPS[op](shard, *args)
            else:
                result = await self._execute(shard, client, op,
                                             args, kwargs)
        except StorageError as exc:
            return ("storage-err", error_to_payload(exc))
        except Exception as exc:
            return ("err", f"{type(exc).__name__}: {exc}")
        if op.startswith("create_"):
            # create_* ops return live state objects (they carry
            # back-references and locks); the wire result is just "ok".
            result = None
        return ("ok", result)

    async def _execute(self, shard: _Shard, client: str, op: str,
                       args: tuple, kwargs: dict):
        if op == "_download":
            # The SN cannot know the blob's flavor; resolve it here where
            # the state lives and download whichever blob this is.
            container, blob = args
            target = shard.state.blobs.get_container(container).get_blob(blob)
            op = ("download_page_blob" if isinstance(target, PageBlobState)
                  else "download_block_blob")
        elif op == "_get_page":
            # Range reads answer with ``Content-Range: bytes a-b/total``;
            # only this side knows the blob's total size, so pair it with
            # the slice.
            content = await shard.executor.run(
                OPERATIONS[client]["get_page"], shard.op_call, args, kwargs,
                worker=f"dn{self.index}")
            container, blob = args[0], args[1]
            target = shard.state.blobs.get_container(container).get_blob(blob)
            return (content, target.max_size)
        spec = OPERATIONS[client].get(op)
        if spec is None:
            raise StorageError(f"unknown operation {client}.{op}")
        if spec.local:
            # Bookkeeping reads run inline: the event loop serializes.
            return spec.body(shard.op_call, *args, **kwargs)
        return await shard.executor.run(
            spec, shard.op_call, args, kwargs, worker=f"dn{self.index}")


# -- fabric (rebalancer) pseudo-ops -----------------------------------------
#
# These run inline on the event loop against the shard's state machines,
# bypassing the op pipeline: replica migration is fabric-internal traffic,
# not client traffic, so it must neither be throttled nor fault-injected.
# Payloads travel as pickled state fragments (Content objects are pure
# data), and imports are idempotent overwrites so a retried migration —
# or two rebalancers racing — converges instead of corrupting.


def _fabric_manifest(shard: _Shard) -> Dict[str, list]:
    """What partition labels this shard holds *data* for.

    Namespace objects (containers/queues/tables) are broadcast-created on
    every DN, so only data-holding labels need migration: each key below
    is exactly a routing ``route_key``, which is what lets the rebalancer
    compute desired owners with the same labels the SNs route by.
    """
    state = shard.state
    blobs = sorted((c.name, b) for c in state.blobs.containers.values()
                   for b in c.blobs)
    queues = sorted(name for name, q in state.queues.queues.items()
                    if q._messages)
    partitions = sorted({pk for t in state.tables.tables.values()
                         for pk, rows in t._partitions.items() if rows})
    return {"blobs": blobs, "queues": queues, "partitions": partitions}


def _fabric_export_blob(shard: _Shard, route_key: str) -> tuple:
    container, _, blob = route_key.partition("/")
    target = shard.state.blobs.get_container(container).get_blob(blob)
    common = (dict(target.metadata), dict(target.snapshots))
    if isinstance(target, PageBlobState):
        return ("page", target.max_size, list(target._ranges),
                target._written_bytes) + common
    return ("block", list(target._committed), dict(target._uncommitted),
            target._size) + common


def _fabric_import_blob(shard: _Shard, route_key: str,
                        payload: tuple) -> None:
    container_name, _, blob_name = route_key.partition("/")
    service = shard.state.blobs
    container = service.create_container(container_name)
    if payload[0] == "page":
        _, max_size, ranges, written, metadata, snapshots = payload
        blob = container.create_page_blob(blob_name, max_size)
        blob._ranges = ranges
        blob._written_bytes = written
        service._account_delta(written)
    else:
        _, committed, uncommitted, size, metadata, snapshots = payload
        blob = container.create_block_blob(blob_name)
        blob._committed = committed
        blob._uncommitted = uncommitted
        blob._size = size
        service._account_delta(size)
    blob.metadata = metadata
    blob.snapshots = snapshots


def _fabric_export_queue(shard: _Shard, route_key: str) -> list:
    queue = shard.state.queues.get_queue(route_key)
    now = queue._now()
    return [m.content for m in queue._messages if not m.expired(now)]


def _fabric_import_queue(shard: _Shard, route_key: str,
                         contents: list) -> None:
    # Re-put the payloads instead of splicing QueueMessage records: ids,
    # receipts, and visibility restart on the new replica.  A migrated
    # in-flight message may be delivered again — at-least-once, which is
    # the queue contract the chaos ledger checks — but none is lost.
    queue = shard.state.queues.create_queue(route_key)
    for content in contents:
        queue.put_message(content)


def _fabric_export_table(shard: _Shard, route_key: str) -> Dict[str, list]:
    out: Dict[str, list] = {}
    for name, table in shard.state.tables.tables.items():
        rows = table._partitions.get(route_key)
        if rows:
            out[name] = [(e.row_key, dict(e._properties), e.etag,
                          e.timestamp) for e in rows.values()]
    return out


def _fabric_import_table(shard: _Shard, route_key: str,
                         exported: Dict[str, list]) -> None:
    for name, rows in exported.items():
        table = shard.state.tables.create_table(name)
        for row_key, properties, etag, timestamp in rows:
            table._store(Entity(route_key, row_key, properties,
                                etag=etag, timestamp=timestamp))


_FABRIC_OPS = {
    "_manifest": _fabric_manifest,
    "_export_blob": _fabric_export_blob,
    "_import_blob": _fabric_import_blob,
    "_export_queue": _fabric_export_queue,
    "_import_queue": _fabric_import_queue,
    "_export_table": _fabric_export_table,
    "_import_table": _fabric_import_table,
}


class DataNodeClient:
    """The service node's async handle to one data node.

    One pooled connection per (SN, DN) pair; an ``asyncio.Lock``
    serializes frames on it (requests are short, and each SN talks to
    every DN concurrently, so per-link pipelining is not the
    bottleneck).  Reconnects lazily after a drop.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    def _abort(self) -> None:
        """Drop the pooled connection without awaiting the close."""
        if self._writer is not None:
            try:
                self._writer.transport.abort()
            except Exception:  # pragma: no cover - already torn down
                pass
            self._reader = self._writer = None

    async def call(self, account: str, client: str, op: str,
                   args: tuple, kwargs: dict):
        request = pickle.dumps((account, client, op, args, kwargs))
        async with self._lock:
            try:
                await self._ensure_connected()
                _write_frame(self._writer, request)
                await self._writer.drain()
                frame = await _read_frame(self._reader)
            except BaseException:
                # A failed or *cancelled* exchange (the SN's per-DN
                # timeout cancels us mid-frame) leaves an un-consumed
                # reply on the link; drop the connection so the next
                # caller starts clean instead of reading a stale frame.
                self._abort()
                raise
        if frame is None:
            raise ConnectionError(
                f"data node {self.host}:{self.port} closed mid-call")
        tag, payload = pickle.loads(frame)
        if tag == "ok":
            return payload
        if tag == "storage-err":
            raise payload_to_error(payload)
        raise RuntimeError(f"data node error: {payload}")
