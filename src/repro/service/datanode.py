"""Data nodes: the shards that own partitions and execute operations.

A data node is one asyncio TCP server holding the *storage state
machines* for every account, sharded by partition key: the service
nodes route each operation to the DN that owns its partition (or
broadcast namespace operations to all DNs).  Operations execute through
the registry pipeline via :class:`~repro.pipeline.executors.AsyncExecutor`
— the same ``prepare -> interceptors -> apply`` drive the emulator's
threads use, so the two tiers cannot diverge semantically.

The internal SN->DN protocol is deliberately dumb: length-prefixed
pickle frames carrying ``(account, client, op, args, kwargs)`` one way
and ``("ok", result)`` / ``("storage-err", payload)`` the other.  It is
a trusted, same-deployment link (like HSDS's internal DN traffic), so
fidelity lives at the *wire* tier, not here.
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from ..pipeline import (
    AsyncExecutor,
    FaultInterceptor,
    OPERATIONS,
    OpCall,
    Pipeline,
)
from ..storage import StorageAccountState, WallClock
from ..storage.blob.state import PageBlobState
from ..storage.cache import CacheServiceState
from ..storage.errors import StorageError
from ..storage.limits import LIMITS_2012
from .wire import error_to_payload, payload_to_error

__all__ = ["DataNode", "DataNodeClient"]

_LEN_BYTES = 4
_MAX_FRAME = 64 * 1024 * 1024


async def _read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    try:
        header = await reader.readexactly(_LEN_BYTES)
    except asyncio.IncompleteReadError:
        return None
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise ConnectionError(f"frame of {length} B exceeds {_MAX_FRAME} B")
    return await reader.readexactly(length)


def _write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(len(payload).to_bytes(_LEN_BYTES, "big") + payload)


class _Shard:
    """One account's slice of state on one data node."""

    def __init__(self, account: str, *, limits=LIMITS_2012, clock=None,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        clock = clock if clock is not None else WallClock()
        self.state = StorageAccountState(
            account, clock, limits, fifo_jitter_seed=fifo_jitter_seed)
        self.cache_state = CacheServiceState(clock)
        self.fault_plan = None
        self.pipeline = Pipeline([
            FaultInterceptor(lambda: self.fault_plan, cluster=None),
        ])
        self.executor = AsyncExecutor(self.state, self.pipeline)
        self.op_call = OpCall(
            self.state, self.cache_state,
            now_fn=clock.now, plan_fn=lambda: self.fault_plan)


class DataNode:
    """One shard server: per-account state + async registry executor."""

    def __init__(self, index: int,
                 accounts: Union[Mapping[str, object], Iterable[str]], *,
                 limits=LIMITS_2012, clock=None,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        self.index = index
        if isinstance(accounts, Mapping):
            items = list(accounts.items())   # account -> its own limits
        else:
            items = [(account, limits) for account in accounts]
        self._shards: Dict[str, _Shard] = {
            account: _Shard(account, limits=acct_limits, clock=clock,
                            fifo_jitter_seed=fifo_jitter_seed)
            for account, acct_limits in items
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0
                    ) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve_connection, host, port)
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- faults / introspection --------------------------------------------
    def shard(self, account: str) -> _Shard:
        return self._shards[account]

    def set_fault_plan(self, account: str, plan) -> None:
        self._shards[account].fault_plan = plan

    # -- the request loop ---------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                frame = await _read_frame(reader)
                if frame is None:
                    break
                account, client, op, args, kwargs = pickle.loads(frame)
                reply = await self._dispatch(account, client, op,
                                             args, kwargs)
                try:
                    payload = pickle.dumps(reply)
                except Exception as exc:  # unpicklable result: report it
                    payload = pickle.dumps(
                        ("err", f"unpicklable result for {op}: {exc}"))
                _write_frame(writer, payload)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # loop teardown: finish cleanly, not "cancelled"
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):  # pragma: no cover
                pass

    async def _dispatch(self, account: str, client: str, op: str,
                        args: tuple, kwargs: dict) -> tuple:
        self.requests_served += 1
        shard = self._shards.get(account)
        if shard is None:
            return ("err", f"data node {self.index} holds no shard for "
                           f"account {account!r}")
        try:
            result = await self._execute(shard, client, op, args, kwargs)
        except StorageError as exc:
            return ("storage-err", error_to_payload(exc))
        except Exception as exc:
            return ("err", f"{type(exc).__name__}: {exc}")
        if op.startswith("create_"):
            # create_* ops return live state objects (they carry
            # back-references and locks); the wire result is just "ok".
            result = None
        return ("ok", result)

    async def _execute(self, shard: _Shard, client: str, op: str,
                       args: tuple, kwargs: dict):
        if op == "_download":
            # The SN cannot know the blob's flavor; resolve it here where
            # the state lives and download whichever blob this is.
            container, blob = args
            target = shard.state.blobs.get_container(container).get_blob(blob)
            op = ("download_page_blob" if isinstance(target, PageBlobState)
                  else "download_block_blob")
        elif op == "_get_page":
            # Range reads answer with ``Content-Range: bytes a-b/total``;
            # only this side knows the blob's total size, so pair it with
            # the slice.
            content = await shard.executor.run(
                OPERATIONS[client]["get_page"], shard.op_call, args, kwargs,
                worker=f"dn{self.index}")
            container, blob = args[0], args[1]
            target = shard.state.blobs.get_container(container).get_blob(blob)
            return (content, target.max_size)
        spec = OPERATIONS[client].get(op)
        if spec is None:
            raise StorageError(f"unknown operation {client}.{op}")
        if spec.local:
            # Bookkeeping reads run inline: the event loop serializes.
            return spec.body(shard.op_call, *args, **kwargs)
        return await shard.executor.run(
            spec, shard.op_call, args, kwargs, worker=f"dn{self.index}")


class DataNodeClient:
    """The service node's async handle to one data node.

    One pooled connection per (SN, DN) pair; an ``asyncio.Lock``
    serializes frames on it (requests are short, and each SN talks to
    every DN concurrently, so per-link pipelining is not the
    bottleneck).  Reconnects lazily after a drop.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def _ensure_connected(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    async def call(self, account: str, client: str, op: str,
                   args: tuple, kwargs: dict):
        request = pickle.dumps((account, client, op, args, kwargs))
        async with self._lock:
            await self._ensure_connected()
            _write_frame(self._writer, request)
            await self._writer.drain()
            frame = await _read_frame(self._reader)
        if frame is None:
            raise ConnectionError(
                f"data node {self.host}:{self.port} closed mid-call")
        tag, payload = pickle.loads(frame)
        if tag == "ok":
            return payload
        if tag == "storage-err":
            raise payload_to_error(payload)
        raise RuntimeError(f"data node error: {payload}")
