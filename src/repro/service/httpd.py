"""A dependency-free asyncio HTTP/1.1 substrate for the service tier.

The container image carries no aiohttp, so the service nodes speak
HTTP/1.1 over plain ``asyncio`` streams: a small, strict parser
(request line, headers, ``Content-Length`` bodies, keep-alive) that is
enough for the Azurite wire subset and for real SDK clients, which all
send well-formed ``Content-Length`` requests.

* :class:`HttpRequest` / :class:`HttpResponse` — the parsed exchange.
* :func:`serve` — bind a handler coroutine to a listening socket.
* :func:`read_request` / :func:`write_response` — the framing.

The SN->DN hop does not go through this module: the internal protocol is
length-prefixed pickle frames (see :mod:`repro.service.datanode`).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import unquote

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "write_response",
    "serve",
]

#: Largest accepted request body: one 4 MB block plus generous headroom.
MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024


class HttpError(Exception):
    """Malformed request framing (maps to a 400 close)."""


def parse_qs_flat(raw: str) -> Dict[str, str]:
    """Query string -> flat dict (the wire subset never repeats keys)."""
    out: Dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        out[unquote(key)] = unquote(value)
    return out


@dataclass
class HttpRequest:
    """One parsed request; header names are lower-cased on ingest."""

    method: str
    target: str                      # the raw request-target
    path: str                        # decoded path, no query string
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    peer: str = ""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


@dataclass
class HttpResponse:
    """One response; ``Content-Length`` is always set by the writer."""

    status: int
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: bytes = b""

    reason: str = ""

    _REASONS = {
        200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
        206: "Partial Content", 304: "Not Modified", 400: "Bad Request",
        403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
        409: "Conflict", 412: "Precondition Failed",
        413: "Request Entity Too Large", 416: "Requested Range Not Satisfiable",
        500: "Internal Server Error", 501: "Not Implemented",
        503: "Service Unavailable",
    }

    def reason_phrase(self) -> str:
        return self.reason or self._REASONS.get(self.status, "Unknown")


async def read_request(reader: asyncio.StreamReader,
                       peer: str = "") -> Optional[HttpRequest]:
    """Read one request off the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed between requests
        raise HttpError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError("request head exceeds limit") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(f"bad request line {lines[0]!r}") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(f"bad header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise HttpError("chunked transfer encoding not supported")
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HttpError(f"body of {length} B exceeds {MAX_BODY_BYTES} B")
    body = await reader.readexactly(length) if length else b""
    path, _, raw_query = target.partition("?")
    return HttpRequest(
        method=method.upper(), target=target, path=unquote(path),
        query=parse_qs_flat(raw_query), headers=headers, body=body,
        peer=peer,
    )


async def write_response(writer: asyncio.StreamWriter,
                         response: HttpResponse, *,
                         keep_alive: bool = True) -> None:
    head = [f"HTTP/1.1 {response.status} {response.reason_phrase()}"]
    names = {name.lower() for name, _ in response.headers}
    head.extend(f"{name}: {value}" for name, value in response.headers)
    if "content-length" not in names:
        head.append(f"Content-Length: {len(response.body)}")
    if "connection" not in names:
        head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    if response.body:
        writer.write(response.body)
    await writer.drain()


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]
ErrorResponder = Callable[[HttpError], HttpResponse]


async def _connection(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter,
                      handler: Handler,
                      error_responder: Optional[ErrorResponder] = None
                      ) -> None:
    peername = writer.get_extra_info("peername")
    peer = f"{peername[0]}:{peername[1]}" if peername else "?"
    try:
        while True:
            try:
                request = await read_request(reader, peer)
            except HttpError as exc:
                # Let the application shape the error body (the storage
                # tier answers with its XML <Error> document); fall back
                # to a bare 400 close.
                response = (error_responder(exc) if error_responder
                            else HttpResponse(400))
                await write_response(writer, response, keep_alive=False)
                break
            if request is None:
                break
            response = await handler(request)
            close = (request.header("connection").lower() == "close")
            await write_response(writer, response, keep_alive=not close)
            if close:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # peer went away mid-exchange; nothing to salvage
    except asyncio.CancelledError:
        pass  # loop teardown: finish cleanly, not "cancelled"
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError,
                asyncio.CancelledError):  # pragma: no cover - teardown race
            pass


async def serve(handler: Handler, host: str = "127.0.0.1",
                port: int = 0, *,
                error_responder: Optional[ErrorResponder] = None
                ) -> asyncio.AbstractServer:
    """Start an HTTP server; the bound port is on ``server.sockets``."""
    server = await asyncio.start_server(
        lambda r, w: _connection(r, w, handler, error_responder),
        host, port, limit=MAX_HEADER_BYTES,
    )
    return server


def bound_port(server: asyncio.AbstractServer) -> int:
    return server.sockets[0].getsockname()[1]
