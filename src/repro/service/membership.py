"""Health-checked DN membership, ring healing, and shard rebalancing.

This is the failure-domain control plane of the service tier:

* **Health checks** — every data node is heartbeated (``_ping`` over the
  internal frame protocol) on a seeded-jittered interval.  Missed beats
  move a node ``UP -> SUSPECT -> DEAD`` (crash-stop: a DEAD node never
  returns; a replacement would join as a fresh index).  Timers draw from
  ``Random(f"{seed}:hb:{node}")`` so schedules are reproducible.
* **Ring healing** — a DEAD node is removed from the
  :class:`~repro.service.ring.HashRing`; its arcs fall to the ring
  successors immediately, so routing never again selects it.
* **Rebalancing** — after a heal, surviving holders stream the
  under-replicated shards (``_export_* -> _import_*`` pseudo-ops on the
  DN protocol) to the new owners until every partition label is back to
  R replicas.  ``drain`` is the planned-removal variant: copy first,
  then retire the node, so replication never dips below R.
* **Request-path state** — per-DN circuit breakers
  (:class:`repro.resilience.CircuitBreaker`) and the hedge retry budget
  (:class:`repro.resilience.RetryBudget`) that the service nodes consult
  on every routed call.

Defaults are the null failure domain: ``replicas=1`` and
``health_checks=False`` reduce the tier to the old static single-owner
behavior (no heartbeats, no hedging, breakers never trip a healthy DN),
which is what keeps the sim-path figures bit-identical.

Migration streams are snapshot copies racing any concurrent writers, the
same weak guarantee real rebalancers give; the chaos campaign's ledger
check (zero acked-write loss, at-least-once queues) is the contract.
"""

from __future__ import annotations

import asyncio
import enum
import time
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from ..resilience import CircuitBreaker, RetryBudget
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["NodeState", "FailureDomainConfig", "Membership"]


class NodeState(enum.Enum):
    UP = "up"
    SUSPECT = "suspect"
    DRAINING = "draining"
    DEAD = "dead"


@dataclass(frozen=True)
class FailureDomainConfig:
    """Knobs of the DN failure domain (defaults = failure domain off)."""

    #: Copies of every partition label (R).  1 = the old single-owner map.
    replicas: int = 1
    vnodes: int = DEFAULT_VNODES
    #: Heartbeat + death detection + rebalance on/off.
    health_checks: bool = False
    #: Wall seconds between heartbeats to one DN (jittered ±20%).
    heartbeat_interval: float = 0.2
    #: Missed beats before a node is SUSPECT / DEAD.
    suspect_after: int = 1
    dead_after: int = 3
    #: Per-heartbeat reply deadline.
    heartbeat_timeout: float = 1.0
    #: Per-DN deadline for a routed data call.
    dn_timeout: float = 10.0
    #: Reads: seconds before a hedged second request to another replica.
    hedge_delay: float = 0.05
    #: Token bucket bounding cluster-wide hedge amplification.
    hedge_budget: float = 64.0
    hedge_refill: float = 16.0
    #: Per-DN circuit breaker (consecutive transport failures).
    breaker_failures: int = 3
    breaker_reset: float = 0.5
    #: Retry-After surfaced with 503 while a shard has no live owner.
    retry_after: float = 0.5
    #: Migrate under-replicated shards after a heal.
    rebalance: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.replicas < 1 or self.vnodes < 1:
            raise ValueError("replicas and vnodes must be >= 1")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be > 0")
        if not 1 <= self.suspect_after <= self.dead_after:
            raise ValueError("need 1 <= suspect_after <= dead_after")
        if self.dn_timeout <= 0 or self.hedge_delay < 0:
            raise ValueError("dn_timeout must be > 0, hedge_delay >= 0")
        if self.breaker_failures < 1 or self.breaker_reset <= 0:
            raise ValueError("breaker_failures >= 1, breaker_reset > 0")
        if self.retry_after <= 0:
            raise ValueError("retry_after must be > 0")


#: Transport-level failures a replica call can die of (vs. a StorageError,
#: which is a *successful* round trip reporting a storage-level outcome).
TRANSPORT_ERRORS = (ConnectionError, OSError, asyncio.TimeoutError,
                    EOFError, asyncio.IncompleteReadError)


@dataclass
class _NodeHealth:
    state: NodeState = NodeState.UP
    misses: int = 0
    breaker: Optional[CircuitBreaker] = None
    died_at: Optional[float] = None  # monotonic


class Membership:
    """Shared DN liveness + placement view for every SN of one cluster."""

    def __init__(self, config: FailureDomainConfig,
                 clients: Sequence, accounts: Sequence[str]) -> None:
        self.config = config
        self.clients = list(clients)
        self.accounts = list(accounts)
        self.ring = HashRing(range(len(self.clients)),
                             vnodes=config.vnodes,
                             replicas=config.replicas)
        self._health: Dict[int, _NodeHealth] = {
            i: _NodeHealth(breaker=CircuitBreaker(
                failure_threshold=config.breaker_failures,
                reset_timeout=config.breaker_reset))
            for i in range(len(self.clients))
        }
        self.hedge_budget = RetryBudget(
            capacity=config.hedge_budget, refill_rate=config.hedge_refill)
        #: Observable accounting (tests, campaign reports).
        self.counters: Dict[str, int] = {
            "heartbeats": 0, "suspects": 0, "deaths": 0, "rebalances": 0,
            "shards_migrated": 0, "replica_errors": 0, "hedges": 0,
            "no_owner_503s": 0,
        }
        self._tasks: List[asyncio.Task] = []
        # Created lazily on the cluster's event loop (py3.9 binds asyncio
        # primitives to the loop current at construction time).
        self._rebalance_lock: Optional[asyncio.Lock] = None
        self._settled: Optional[asyncio.Event] = None
        #: Monotonic instants of the last death and the heal completing.
        self.last_death_at: Optional[float] = None
        self.last_heal_at: Optional[float] = None

    # -- views ---------------------------------------------------------------
    def state(self, node: int) -> NodeState:
        return self._health[node].state

    def states(self) -> Dict[int, NodeState]:
        return {i: h.state for i, h in self._health.items()}

    def routable(self, node: int) -> bool:
        return self._health[node].state is not NodeState.DEAD

    def live_indices(self) -> List[int]:
        """Broadcast/fan-out target set: every non-dead node."""
        return [i for i in sorted(self._health) if self.routable(i)]

    def owners(self, label: str) -> Tuple[int, ...]:
        """Routable replica set of ``label``, primary first."""
        return tuple(i for i in self.ring.owners(label)
                     if self.routable(i))

    def breaker(self, node: int) -> CircuitBreaker:
        return self._health[node].breaker

    def note_replica_error(self) -> None:
        self.counters["replica_errors"] += 1

    def allow_hedge(self, now: float) -> bool:
        """Spend one hedge token; False when the budget is exhausted."""
        if self.hedge_budget.backoff(1, None, now=now) is None:
            return False
        self.counters["hedges"] += 1
        return True

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Start the heartbeat loops on the current event loop."""
        if not self.config.health_checks or self._tasks:
            return
        for i in range(len(self.clients)):
            self._tasks.append(asyncio.ensure_future(self._heartbeat(i)))

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    def _settled_event(self) -> asyncio.Event:
        if self._settled is None:
            self._settled = asyncio.Event()
            self._settled.set()
        return self._settled

    async def wait_settled(self, timeout: float = 30.0) -> bool:
        """Block until no rebalance is in flight (True) or timeout."""
        try:
            await asyncio.wait_for(self._settled_event().wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # -- health checking -----------------------------------------------------
    async def _heartbeat(self, node: int) -> None:
        cfg = self.config
        rng = Random(f"{cfg.seed}:hb:{node}")
        while True:
            # Seeded jitter de-synchronizes the per-node probes while
            # keeping the schedule reproducible under the seed.
            await asyncio.sleep(cfg.heartbeat_interval
                                * (0.8 + 0.4 * rng.random()))
            health = self._health[node]
            if health.state is NodeState.DEAD:
                return
            self.counters["heartbeats"] += 1
            try:
                await asyncio.wait_for(
                    self.clients[node].call("", "", "_ping", (), {}),
                    cfg.heartbeat_timeout)
            except TRANSPORT_ERRORS + (RuntimeError,):
                health.misses += 1
                if health.misses >= cfg.dead_after:
                    self.mark_dead(node)
                    return
                if (health.misses >= cfg.suspect_after
                        and health.state is NodeState.UP):
                    health.state = NodeState.SUSPECT
                    self.counters["suspects"] += 1
            else:
                health.misses = 0
                if health.state is NodeState.SUSPECT:
                    health.state = NodeState.UP

    def mark_dead(self, node: int) -> None:
        """Crash-stop ``node``: heal the ring, schedule the rebalance."""
        health = self._health[node]
        if health.state is NodeState.DEAD:
            return
        health.state = NodeState.DEAD
        health.died_at = time.monotonic()
        self.last_death_at = health.died_at
        self.ring.remove(node)
        if self.config.rebalance and len(self.ring) >= 1:
            self._settled_event().clear()
            task = asyncio.ensure_future(self._rebalance_after_death())
            self._tasks.append(task)
        # Counter last: cross-thread pollers key off it, and once they
        # see the death the settled event must already be cleared.
        self.counters["deaths"] += 1

    async def _rebalance_after_death(self) -> None:
        try:
            await self.rebalance(self.ring)
        finally:
            self.last_heal_at = time.monotonic()
            self._settled_event().set()

    # -- planned removal -----------------------------------------------------
    async def drain(self, node: int) -> None:
        """Gracefully retire ``node``: copy first, then leave the ring.

        Unlike a crash, replication never dips below R: the node keeps
        serving (DRAINING) while its shards stream to the owners of the
        post-removal ring; only then does it stop being routable.
        """
        health = self._health[node]
        if health.state is NodeState.DEAD:
            return
        health.state = NodeState.DRAINING
        target = HashRing((i for i in self.ring.nodes if i != node),
                          vnodes=self.config.vnodes,
                          replicas=self.config.replicas)
        await self.rebalance(target)
        self.ring = target
        health.state = NodeState.DEAD
        health.died_at = time.monotonic()

    # -- rebalancing ---------------------------------------------------------
    async def rebalance(self, target: HashRing) -> None:
        """Restore R copies of every data-holding label under ``target``.

        Holders are discovered from live manifests; every label whose
        desired owner set (under ``target``) misses a copy gets one
        streamed from its first surviving holder.  Idempotent: imports
        skip nothing destructive, and a second pass finds no gaps.
        """
        if self._rebalance_lock is None:
            self._rebalance_lock = asyncio.Lock()
        async with self._rebalance_lock:
            sources = [i for i in sorted(self._health) if self.routable(i)]
            migrated = 0
            for account in self.accounts:
                manifests: Dict[int, Dict] = {}
                for i in sources:
                    try:
                        manifests[i] = await self.clients[i].call(
                            account, "", "_manifest", (), {})
                    except TRANSPORT_ERRORS + (RuntimeError,):
                        continue  # died under us; heartbeats will notice
                migrated += await self._heal_account(
                    account, target, manifests)
            self.counters["rebalances"] += 1
            self.counters["shards_migrated"] += migrated

    async def _heal_account(self, account: str, target: HashRing,
                            manifests: Dict[int, Dict]) -> int:
        # resource key -> (export op, import op, export args) + holders
        resources: Dict[Tuple, List[int]] = {}
        for node, manifest in manifests.items():
            for container, blob in manifest.get("blobs", ()):
                key = ("blob", f"{container}/{blob}")
                resources.setdefault(key, []).append(node)
            for queue in manifest.get("queues", ()):
                resources.setdefault(("queue", queue), []).append(node)
            for pk in manifest.get("partitions", ()):
                resources.setdefault(("table", pk), []).append(node)
        migrated = 0
        for (client_kind, route_key), holders in sorted(resources.items()):
            label = f"{account}/{client_kind}/{route_key}"
            desired = [i for i in target.owners(label) if self.routable(i)]
            missing = [i for i in desired if i not in holders]
            if not missing:
                continue
            source = next((i for i in desired if i in holders),
                          holders[0])
            for dest in missing:
                try:
                    payload = await self.clients[source].call(
                        account, "", f"_export_{client_kind}",
                        (route_key,), {})
                    await self.clients[dest].call(
                        account, "", f"_import_{client_kind}",
                        (route_key, payload), {})
                    migrated += 1
                except TRANSPORT_ERRORS + (RuntimeError,):
                    self.note_replica_error()
        return migrated

    # -- reporting -----------------------------------------------------------
    def recovery_seconds(self) -> Optional[float]:
        """Wall seconds from the last death to its heal completing."""
        if self.last_death_at is None or self.last_heal_at is None:
            return None
        return max(0.0, self.last_heal_at - self.last_death_at)

    def describe(self) -> Dict[str, object]:
        return {
            "replicas": self.config.replicas,
            "health_checks": self.config.health_checks,
            "states": {i: h.state.value
                       for i, h in sorted(self._health.items())},
            "ring_nodes": list(self.ring.nodes),
            "counters": dict(self.counters),
        }
