"""Consistent-hash ring: replicated shard placement for the DN tier.

The service nodes used to route with a static ``crc32(label) mod M``
map, which has two production-fatal properties: a dead data node takes
1/M of the keyspace hard-down forever, and any change of M remaps
almost every key.  :class:`HashRing` replaces it with the classic
consistent-hashing construction (Karger et al.; the placement scheme
Dynamo-style stores and the real storage fabric's partition map both
descend from):

* each data node projects ``vnodes`` virtual points onto a 64-bit ring
  (BLAKE2b keyed by node id and replica index — stable across
  processes, unlike :func:`hash`);
* a partition label hashes to a point and is owned by the next
  ``replicas`` *distinct* nodes clockwise — the label's replica set;
* adding or removing a node moves only the arc between it and its ring
  predecessors (minimal movement), which is what makes failover and
  rebalancing cheap.

The ring is pure placement arithmetic: no health, no I/O.  Liveness
filtering lives in :class:`repro.service.membership.Membership`.

With one node — or ``replicas=1`` and a full ring — every lookup
returns exactly one owner, and the service tier reduces to the old
single-owner routing (pinned by ``tests/service/test_ring.py``).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual points per node; 64 keeps ownership within a few percent of
#: uniform for single-digit node counts while the ring stays tiny.
DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    """Stable 64-bit ring position (process- and version-independent)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(),
        "big")


class HashRing:
    """Virtual-node consistent-hash ring with R-way replica sets."""

    def __init__(self, nodes: Iterable[int] = (), *,
                 vnodes: int = DEFAULT_VNODES, replicas: int = 1) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.vnodes = vnodes
        self.replicas = replicas
        self._nodes: set = set()
        #: Sorted ring positions and their owning node, kept in lockstep.
        self._points: List[int] = []
        self._owners: List[int] = []
        for node in nodes:
            self.add(node)

    # -- membership of the ring itself --------------------------------------
    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def add(self, node: int) -> None:
        """Project ``node``'s virtual points onto the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            point = _hash64(f"dn{node}:{v}")
            at = bisect.bisect_left(self._points, point)
            # 64-bit collisions across distinct labels are ~impossible;
            # break ties by node id so the ring stays order-independent.
            while (at < len(self._points) and self._points[at] == point
                   and self._owners[at] < node):
                at += 1
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: int) -> None:
        """Take ``node`` off the ring; its arcs fall to the successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- placement -----------------------------------------------------------
    def owners(self, label: str, replicas: int = 0) -> Tuple[int, ...]:
        """The first min(R, N) *distinct* nodes clockwise of ``label``.

        Element 0 is the label's primary; the rest are its backups in
        ring order.  ``replicas`` overrides the ring's R for callers
        that need a wider set (the rebalancer asking "who should hold
        this after the ring healed?").
        """
        if not self._points:
            return ()
        want = min(replicas or self.replicas, len(self._nodes))
        start = bisect.bisect_right(self._points, _hash64(label))
        found: List[int] = []
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in found:
                found.append(owner)
                if len(found) == want:
                    break
        return tuple(found)

    def primary(self, label: str) -> int:
        """The label's first owner (raises on an empty ring)."""
        owners = self.owners(label, replicas=1)
        if not owners:
            raise LookupError("hash ring is empty")
        return owners[0]

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (f"<HashRing nodes={self.nodes} vnodes={self.vnodes} "
                f"replicas={self.replicas}>")
