"""Service nodes: the authenticated HTTP front-ends of the cluster.

Each service node exposes the three Azurite-style listeners (blob,
queue, table) and, per request:

1. resolves the tenant from the ``/{account}/...`` path prefix,
2. decodes the wire request into a registry operation + route,
3. runs the tenant's ``auth -> analytics -> throttles`` pipeline hooks
   around it (one pipeline per tenant, shared by all SNs), and
4. forwards it to the owning data node(s), merging fan-out results.

The SN holds **no storage state** — partition ownership is pure
``crc32(account/service/key) mod M``, so any SN can serve any request
(that is the scale-out argument the SN/DN topology figure makes).
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..pipeline import OpContext
from ..storage.clock import WallClock
from ..storage.errors import StorageError
from . import httpd
from .datanode import DataNodeClient
from .httpd import HttpRequest, HttpResponse
from .tenants import TenantDirectory
from .wire import (
    WIRE_VERSION,
    DecodedOp,
    _http_date,
    decode_request,
    error_to_response,
)

__all__ = ["ServiceNode", "AccessLogEntry"]

SERVICES = ("blob", "queue", "table")


@dataclasses.dataclass
class AccessLogEntry:
    """One served request, for the access-log artifact."""

    time: float
    account: str
    service: str
    method: str
    target: str
    status: int
    nbytes: int

    def format(self) -> str:
        return (f"{self.time:.6f} {self.account} {self.service} "
                f"{self.method} {self.target} {self.status} {self.nbytes}")


class ServiceNode:
    """One front-end: three HTTP listeners over a shared DN client set."""

    def __init__(self, index: int, tenants: TenantDirectory,
                 data_nodes: Sequence[DataNodeClient], *,
                 clock: Optional[WallClock] = None,
                 access_log_path: Optional[str] = None) -> None:
        if not data_nodes:
            raise ValueError("a service node needs at least one data node")
        self.index = index
        self.tenants = tenants
        self.data_nodes = list(data_nodes)
        self.clock = clock if clock is not None else WallClock()
        self.access_log: List[AccessLogEntry] = []
        self.access_log_path = access_log_path
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self.endpoints: Dict[str, Tuple[str, int]] = {}
        self._request_ids = itertools.count(1)

    # -- lifecycle ----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    ports: Optional[Dict[str, int]] = None) -> None:
        """Bind the three listeners (``ports[service]`` or ephemeral)."""
        ports = ports or {}
        for service in SERVICES:
            server = await httpd.serve(
                self._make_handler(service), host, ports.get(service, 0))
            self._servers[service] = server
            self.endpoints[service] = (host, httpd.bound_port(server))

    async def stop(self) -> None:
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self.access_log_path:
            with open(self.access_log_path, "a", encoding="utf-8") as fh:
                for entry in self.access_log:
                    fh.write(entry.format() + "\n")
            self.access_log.clear()

    # -- request handling ---------------------------------------------------
    def _make_handler(self, service: str):
        async def handler(request: HttpRequest) -> HttpResponse:
            return await self.handle(service, request)
        return handler

    async def handle(self, service: str,
                     request: HttpRequest) -> HttpResponse:
        request_id = f"sn{self.index}-{next(self._request_ids):08d}"
        account = request.path.strip("/").split("/", 1)[0]
        table = service == "table"
        try:
            tenant = self.tenants.get(account)
            decoded = decode_request(service, account, request)
        except StorageError as exc:
            response = error_to_response(exc, table=table,
                                         request_id=request_id)
            self._log(account, service, request, response)
            return response
        try:
            if decoded.descriptor is None:
                # Registry-local bookkeeping read: no pipeline admission
                # (matching the emulator), but the signature still gates.
                tenant.authorize_request(service, request)
                result = await self._route(account, decoded)
            else:
                result = await self._admitted(
                    tenant, service, request, account, decoded)
        except StorageError as exc:
            response = error_to_response(exc, table=table,
                                         request_id=request_id)
            self._log(account, service, request, response)
            return response
        response = decoded.encode(result)
        response.headers.extend([
            ("x-ms-request-id", request_id),
            ("x-ms-version", WIRE_VERSION),
            ("Date", _http_date(time.time())),
        ])
        self._log(account, service, request, response)
        return response

    async def _admitted(self, tenant, service: str, request: HttpRequest,
                        account: str, decoded: DecodedOp):
        """Run one data op through the tenant pipeline around the DN hop."""
        ctx = OpContext(op=decoded.descriptor, backend="service",
                        worker=f"sn{self.index}",
                        started_at=self.clock.now())
        ctx.extras["wire"] = (service, request)
        try:
            tenant.pipeline.run_before(ctx)
            result = await self._route(account, decoded)
        except BaseException as exc:
            ctx.finished_at = self.clock.now()
            tenant.pipeline.run_failed(ctx, exc)
            raise
        if decoded.result_nbytes is not None:
            # Reads are admitted before their size is known; patch the
            # descriptor so analytics charge actual egress bytes.
            ctx.op = dataclasses.replace(
                ctx.op, nbytes=decoded.result_nbytes(result))
        ctx.finished_at = self.clock.now()
        tenant.pipeline.run_after(ctx)
        return result

    # -- routing ------------------------------------------------------------
    def owner_index(self, account: str, client: str, key: str) -> int:
        label = f"{account}/{client}/{key}".encode("utf-8")
        return zlib.crc32(label) % len(self.data_nodes)

    async def _route(self, account: str, decoded: DecodedOp):
        if decoded.route == "one":
            dn = self.data_nodes[
                self.owner_index(account, decoded.client, decoded.route_key)]
            return await dn.call(account, decoded.client, decoded.op,
                                 decoded.args, decoded.kwargs)
        # Namespace ops and listings touch every shard.
        results = await asyncio.gather(
            *(dn.call(account, decoded.client, decoded.op,
                      decoded.args, decoded.kwargs)
              for dn in self.data_nodes),
            return_exceptions=True)
        for result in results:
            if isinstance(result, BaseException):
                raise result
        if decoded.route == "broadcast":
            return None
        return decoded.merge(results)

    # -- observability ------------------------------------------------------
    def _log(self, account: str, service: str, request: HttpRequest,
             response: HttpResponse) -> None:
        self.access_log.append(AccessLogEntry(
            time=self.clock.now(), account=account, service=service,
            method=request.method, target=request.target,
            status=response.status,
            nbytes=len(request.body) + len(response.body)))
