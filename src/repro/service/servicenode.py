"""Service nodes: the authenticated HTTP front-ends of the cluster.

Each service node exposes the three Azurite-style listeners (blob,
queue, table) and, per request:

1. resolves the tenant from the ``/{account}/...`` path prefix,
2. decodes the wire request into a registry operation + route,
3. runs the tenant's ``auth -> analytics -> throttles`` pipeline hooks
   around it (one pipeline per tenant, shared by all SNs), and
4. forwards it to the owning data node(s), merging fan-out results.

The SN holds **no storage state** — partition ownership is the shared
consistent-hash ring of the cluster's
:class:`~repro.service.membership.Membership` (virtual nodes, R-way
replica sets), so any SN can serve any request (that is the scale-out
argument the SN/DN topology figure makes).  Per routed request the SN
also carries the failure-domain duty cycle:

* **writes** fan to every routable owner of the partition label; the
  primary's answer is definitive, but if the primary dies mid-request
  any acknowledged backup carries the write (at-least-once);
* **reads** go to the primary under a per-DN timeout, hedge a second
  replica after ``hedge_delay`` (budget-gated), and fail over through
  the replica set on transport errors;
* per-DN **circuit breakers** stop hammering a sick node, and a shard
  with no live owner surfaces ``503 + Retry-After`` instead of hanging.

With ``replicas=1`` and health checks off this all reduces to the old
static single-owner routing (pinned by ``tests/service/test_ring.py``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..pipeline import OpContext
from ..resilience import CircuitOpenError
from ..storage.clock import WallClock
from ..storage.errors import (
    ResourceNotFoundError,
    ServerBusyError,
    StorageError,
)
from . import httpd
from .datanode import DataNodeClient
from .httpd import HttpError, HttpRequest, HttpResponse
from .membership import (
    TRANSPORT_ERRORS,
    FailureDomainConfig,
    Membership,
)
from .tenants import TenantDirectory
from .wire import (
    WIRE_VERSION,
    DecodedOp,
    UnknownResourceError,
    UnsupportedVersionError,
    _http_date,
    decode_request,
    error_to_response,
)

__all__ = ["ServiceNode", "AccessLogEntry"]

#: Queue consume/visibility ops mutate per-replica bookkeeping (receipts,
#: visibility clocks) that is never reconciled across replicas, so they
#: run against the primary only — and are never hedged (a hedged
#: ``get_message`` would check out the message twice).
PRIMARY_ONLY_OPS = frozenset({"get_message", "get_messages",
                              "update_message", "peek_message"})

#: A replica call that died of one of these told us nothing about the
#: data — unlike a StorageError, which is a definitive storage answer.
_REPLICA_FAILURES = TRANSPORT_ERRORS + (RuntimeError, CircuitOpenError)

SERVICES = ("blob", "queue", "table")


@dataclasses.dataclass
class AccessLogEntry:
    """One served request, for the access-log artifact."""

    time: float
    account: str
    service: str
    method: str
    target: str
    status: int
    nbytes: int

    def format(self) -> str:
        return (f"{self.time:.6f} {self.account} {self.service} "
                f"{self.method} {self.target} {self.status} {self.nbytes}")


class ServiceNode:
    """One front-end: three HTTP listeners over a shared DN client set."""

    def __init__(self, index: int, tenants: TenantDirectory,
                 data_nodes: Sequence[DataNodeClient], *,
                 membership: Optional[Membership] = None,
                 clock: Optional[WallClock] = None,
                 access_log_path: Optional[str] = None) -> None:
        if not data_nodes:
            raise ValueError("a service node needs at least one data node")
        self.index = index
        self.tenants = tenants
        self.data_nodes = list(data_nodes)
        # The cluster shares one Membership across its SNs; a standalone
        # SN gets the null failure domain (R=1, no health checks), which
        # is the old static routing.
        self.membership = membership if membership is not None else (
            Membership(FailureDomainConfig(), self.data_nodes, []))
        self.clock = clock if clock is not None else WallClock()
        self.access_log: List[AccessLogEntry] = []
        self.access_log_path = access_log_path
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self.endpoints: Dict[str, Tuple[str, int]] = {}
        self._request_ids = itertools.count(1)
        self.inflight = 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    ports: Optional[Dict[str, int]] = None) -> None:
        """Bind the three listeners (``ports[service]`` or ephemeral)."""
        ports = ports or {}
        for service in SERVICES:
            server = await httpd.serve(
                self._make_handler(service), host, ports.get(service, 0),
                error_responder=self._framing_error)
            self._servers[service] = server
            self.endpoints[service] = (host, httpd.bound_port(server))

    async def stop(self, *, grace_s: float = 5.0) -> None:
        """Stop accepting, then let in-flight requests finish."""
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._servers.clear()
        deadline = time.monotonic() + grace_s
        while self.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self.access_log_path:
            with open(self.access_log_path, "a", encoding="utf-8") as fh:
                for entry in self.access_log:
                    fh.write(entry.format() + "\n")
            self.access_log.clear()

    # -- request handling ---------------------------------------------------
    def _make_handler(self, service: str):
        async def handler(request: HttpRequest) -> HttpResponse:
            self.inflight += 1
            try:
                return await self.handle(service, request)
            finally:
                self.inflight -= 1
        return handler

    def _framing_error(self, exc: HttpError) -> HttpResponse:
        """Even malformed framing answers with a decodable error body."""
        return error_to_response(UnknownResourceError(str(exc)),
                                 request_id=f"sn{self.index}-malformed")

    async def handle(self, service: str,
                     request: HttpRequest) -> HttpResponse:
        request_id = f"sn{self.index}-{next(self._request_ids):08d}"
        account = request.path.strip("/").split("/", 1)[0]
        table = service == "table"
        try:
            version = request.header("x-ms-version")
            if version and version != WIRE_VERSION:
                raise UnsupportedVersionError(
                    f"x-ms-version {version!r} is not supported; this "
                    f"endpoint speaks {WIRE_VERSION}")
            tenant = self.tenants.get(account)
            decoded = decode_request(service, account, request)
        except StorageError as exc:
            response = error_to_response(exc, table=table,
                                         request_id=request_id)
            self._log(account, service, request, response)
            return response
        try:
            if decoded.descriptor is None:
                # Registry-local bookkeeping read: no pipeline admission
                # (matching the emulator), but the signature still gates.
                tenant.authorize_request(service, request)
                result = await self._route(account, decoded)
            else:
                result = await self._admitted(
                    tenant, service, request, account, decoded)
        except StorageError as exc:
            response = error_to_response(exc, table=table,
                                         request_id=request_id)
            self._log(account, service, request, response)
            return response
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # A handler bug must not tear the connection down with a raw
            # traceback: answer 500 InternalError like the real front
            # door (the client's retry policy treats it as transient).
            response = error_to_response(
                StorageError(f"{type(exc).__name__}: {exc}"),
                table=table, request_id=request_id)
            self._log(account, service, request, response)
            return response
        response = decoded.encode(result)
        response.headers.extend([
            ("x-ms-request-id", request_id),
            ("x-ms-version", WIRE_VERSION),
            ("Date", _http_date(time.time())),
        ])
        self._log(account, service, request, response)
        return response

    async def _admitted(self, tenant, service: str, request: HttpRequest,
                        account: str, decoded: DecodedOp):
        """Run one data op through the tenant pipeline around the DN hop."""
        ctx = OpContext(op=decoded.descriptor, backend="service",
                        worker=f"sn{self.index}",
                        started_at=self.clock.now())
        ctx.extras["wire"] = (service, request)
        try:
            tenant.pipeline.run_before(ctx)
            result = await self._route(account, decoded)
        except BaseException as exc:
            ctx.finished_at = self.clock.now()
            tenant.pipeline.run_failed(ctx, exc)
            raise
        if decoded.result_nbytes is not None:
            # Reads are admitted before their size is known; patch the
            # descriptor so analytics charge actual egress bytes.
            ctx.op = dataclasses.replace(
                ctx.op, nbytes=decoded.result_nbytes(result))
        ctx.finished_at = self.clock.now()
        tenant.pipeline.run_after(ctx)
        return result

    # -- routing ------------------------------------------------------------
    def route_label(self, account: str, client: str, key: str) -> str:
        """The partition label placement hashes (== rebalance manifests)."""
        return f"{account}/{client}/{key}"

    def _no_owner(self, what: str) -> ServerBusyError:
        membership = self.membership
        membership.counters["no_owner_503s"] += 1
        return ServerBusyError(
            f"no live data node owns {what}; retry after rebalance",
            retry_after=membership.config.retry_after)

    async def _attempt(self, node: int, account: str, decoded: DecodedOp):
        """One breaker-gated, deadlined call to one replica."""
        membership = self.membership
        breaker = membership.breaker(node)
        breaker.before_attempt(time.monotonic())  # CircuitOpenError if open
        try:
            result = await asyncio.wait_for(
                self.data_nodes[node].call(
                    account, decoded.client, decoded.op,
                    decoded.args, decoded.kwargs),
                membership.config.dn_timeout)
        except StorageError:
            # The link worked; the *storage* answered.  Healthy node.
            breaker.record_success(time.monotonic())
            raise
        except _REPLICA_FAILURES:
            breaker.record_failure(time.monotonic())
            membership.note_replica_error()
            raise
        breaker.record_success(time.monotonic())
        return result

    async def _route(self, account: str, decoded: DecodedOp):
        if decoded.route != "one":
            return await self._scatter(account, decoded)
        label = self.route_label(account, decoded.client, decoded.route_key)
        owners = self.membership.owners(label)
        if not owners:
            raise self._no_owner(f"partition {label!r}")
        if decoded.op in PRIMARY_ONLY_OPS:
            return await self._read(account, decoded, owners, hedge=False)
        if decoded.descriptor is not None and decoded.descriptor.is_write:
            return await self._write(account, decoded, owners)
        return await self._read(account, decoded, owners, hedge=True)

    async def _write(self, account: str, decoded: DecodedOp,
                     owners: Tuple[int, ...]):
        """Fan a mutation to every routable owner of its label.

        The primary's outcome is the client's outcome; backups exist so
        the write survives the primary dying before detection.  If the
        primary fails at the *transport* level, any acknowledged backup
        carries the write and answers for it (at-least-once: the client
        may retry a write a backup already holds, which every op here
        tolerates — uploads overwrite, puts re-deliver, upserts upsert).
        """
        results = await asyncio.gather(
            *(self._attempt(node, account, decoded) for node in owners),
            return_exceptions=True)
        primary = results[0]
        for secondary in results[1:]:
            if isinstance(secondary, StorageError):
                # E.g. a delete_message receipt minted by the primary:
                # the backup cannot match it.  The primary's answer is
                # definitive; record the divergence and move on.
                self.membership.note_replica_error()
        if not isinstance(primary, BaseException):
            return primary
        if isinstance(primary, StorageError):
            raise primary
        for secondary in results[1:]:
            if not isinstance(secondary, BaseException):
                return secondary
        for secondary in results[1:]:
            if isinstance(secondary, StorageError):
                raise secondary
        raise self._no_owner(f"any replica of {decoded.op}")

    async def _read(self, account: str, decoded: DecodedOp,
                    owners: Tuple[int, ...], *, hedge: bool):
        """Serve from any healthy replica: primary first, hedged second.

        The primary gets ``hedge_delay`` to answer before a budget-gated
        second request races it on the next replica; transport failures
        fail over through the replica set immediately.  A NotFound from
        one replica is only provisional — it may still be importing
        after a rebalance — and is surfaced only once every replica
        agrees (or is unreachable).
        """
        membership = self.membership
        remaining = list(owners)
        tasks: Dict[asyncio.Task, int] = {}
        not_found: Optional[ResourceNotFoundError] = None

        def launch() -> bool:
            if not remaining:
                return False
            node = remaining.pop(0)
            task = asyncio.ensure_future(
                self._attempt(node, account, decoded))
            tasks[task] = node
            return True

        launch()
        hedged = not hedge
        try:
            while tasks:
                timeout = (membership.config.hedge_delay
                           if not hedged and remaining else None)
                done, _ = await asyncio.wait(
                    set(tasks), timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED)
                if not done:
                    # Primary is slow: race one backup against it.
                    hedged = True
                    if membership.allow_hedge(time.monotonic()):
                        launch()
                    continue
                for task in done:
                    del tasks[task]
                    exc = task.exception()
                    if exc is None:
                        return task.result()
                    if isinstance(exc, ResourceNotFoundError):
                        not_found = not_found or exc
                        if not tasks:
                            launch()
                    elif isinstance(exc, StorageError):
                        raise exc
                    elif not tasks:
                        launch()  # transport failure: next replica
        finally:
            for task in tasks:
                task.cancel()
                # A loser that already failed must not warn "exception
                # was never retrieved" when collected.
                task.add_done_callback(
                    lambda t: t.cancelled() or t.exception())
        if not_found is not None:
            raise not_found  # every replica agreed
        raise self._no_owner(f"any replica for {decoded.op}")

    async def _scatter(self, account: str, decoded: DecodedOp):
        """Namespace ops and listings touch every live shard."""
        targets = self.membership.live_indices()
        if not targets:
            raise self._no_owner("the namespace (no live data nodes)")
        results = await asyncio.gather(
            *(self._attempt(node, account, decoded) for node in targets),
            return_exceptions=True)
        transport_failure = None
        for result in results:
            if isinstance(result, StorageError):
                raise result
            if isinstance(result, BaseException):
                transport_failure = result
        if transport_failure is not None:
            # A partial namespace op or listing must not pass for a full
            # one; 503 tells the client to retry once the ring settles.
            raise ServerBusyError(
                f"a data node failed during {decoded.op}: "
                f"{transport_failure}",
                retry_after=self.membership.config.retry_after)
        if decoded.route == "broadcast":
            return None
        return decoded.merge(results)

    # -- observability ------------------------------------------------------
    def _log(self, account: str, service: str, request: HttpRequest,
             response: HttpResponse) -> None:
        self.access_log.append(AccessLogEntry(
            time=self.clock.now(), account=account, service=service,
            method=request.method, target=request.target,
            status=response.status,
            nbytes=len(request.body) + len(response.body)))
