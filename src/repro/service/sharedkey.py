"""SharedKey request signing — the Azurite-compatible auth subset.

Implements the 2012-era ``Authorization: SharedKey account:signature``
scheme for all three services.  Blob and queue requests sign the full
canonicalized header/resource form; the table service signs the shorter
``SharedKey`` flavor (VERB, Content-MD5, Content-Type, Date, canonical
resource) that the Table SDKs of the period emit.

Both the service-node verifier and the in-process wire client sign
through the same functions, so a signature that verifies locally also
verifies for a real SDK following the published algorithm.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
from typing import Dict, Mapping, Tuple
from urllib.parse import unquote

__all__ = [
    "DEV_ACCOUNT",
    "DEV_KEY",
    "SignatureError",
    "sign_request",
    "verify_request",
    "parse_authorization",
]

#: Azurite's well-known development account and key.
DEV_ACCOUNT = "devstoreaccount1"
DEV_KEY = ("Eby8vdM02xNOcqFlqUwJPLlmEtlCDXJ1OUzFT50uSRZ6IFsuFq2UVErCz4I6tq"
           "/K1SZFPTOtr/KBHBeksoGMGw==")

#: Standard headers in string-to-sign order for blob/queue requests.
_STANDARD_HEADERS = (
    "content-encoding", "content-language", "content-length", "content-md5",
    "content-type", "date", "if-modified-since", "if-match", "if-none-match",
    "if-unmodified-since", "range",
)


class SignatureError(Exception):
    """The request's Authorization header failed verification."""


def _canonicalized_headers(headers: Mapping[str, str]) -> str:
    lines = []
    for name in sorted(k.lower() for k in headers):
        if name.startswith("x-ms-"):
            value = headers.get(name) or next(
                v for k, v in headers.items() if k.lower() == name)
            lines.append(f"{name}:{value.strip()}")
    return "\n".join(lines)


def _canonicalized_resource(account: str, path: str, query: Mapping[str, str],
                            *, table_flavor: bool) -> str:
    resource = f"/{account}{path}"
    if table_flavor:
        # Table canonical resource appends only the ?comp= parameter.
        comp = query.get("comp")
        return resource + (f"?comp={comp}" if comp else "")
    lowered = {k.lower(): v for k, v in query.items()}
    parts = [resource]
    for name in sorted(lowered):
        parts.append(f"{name}:{unquote(lowered[name])}")
    return "\n".join(parts)


def _lower(headers: Mapping[str, str]) -> Dict[str, str]:
    return {k.lower(): v for k, v in headers.items()}


def string_to_sign(account: str, method: str, path: str,
                   query: Mapping[str, str], headers: Mapping[str, str],
                   *, table_flavor: bool = False) -> str:
    """Build the canonical string-to-sign for one request."""
    h = _lower(headers)
    date = h.get("x-ms-date", "") or h.get("date", "")
    if table_flavor:
        return "\n".join([
            method.upper(),
            h.get("content-md5", ""),
            h.get("content-type", ""),
            date,
            _canonicalized_resource(account, path, query, table_flavor=True),
        ])
    std = []
    for name in _STANDARD_HEADERS:
        value = h.get(name, "")
        if name == "date" and h.get("x-ms-date"):
            value = ""  # x-ms-date supersedes Date in the signature
        if name == "content-length" and value == "0":
            value = ""  # 2015-02-21+ semantics, matched by Azurite
        std.append(value)
    pieces = [method.upper(), *std]
    canon_headers = _canonicalized_headers(h)
    if canon_headers:
        pieces.append(canon_headers)
    pieces.append(
        _canonicalized_resource(account, path, query, table_flavor=False))
    return "\n".join(pieces)


def compute_signature(key: str, to_sign: str) -> str:
    digest = hmac.new(base64.b64decode(key), to_sign.encode("utf-8"),
                      hashlib.sha256).digest()
    return base64.b64encode(digest).decode("ascii")


def sign_request(account: str, key: str, method: str, path: str,
                 query: Mapping[str, str], headers: Mapping[str, str],
                 *, table_flavor: bool = False) -> str:
    """Return the value for the ``Authorization`` header."""
    to_sign = string_to_sign(account, method, path, query, headers,
                             table_flavor=table_flavor)
    return f"SharedKey {account}:{compute_signature(key, to_sign)}"


def parse_authorization(header: str) -> Tuple[str, str]:
    """``SharedKey account:sig`` -> ``(account, sig)``; raises on junk."""
    scheme, _, rest = header.partition(" ")
    if scheme != "SharedKey" or ":" not in rest:
        raise SignatureError(f"malformed Authorization header {header!r}")
    account, _, signature = rest.partition(":")
    return account.strip(), signature.strip()


def verify_request(key: str, method: str, path: str,
                   query: Mapping[str, str], headers: Mapping[str, str],
                   authorization: str, *,
                   table_flavor: bool = False) -> None:
    """Check the Authorization header; raise :class:`SignatureError`."""
    account, presented = parse_authorization(authorization)
    expected = compute_signature(
        key, string_to_sign(account, method, path, query, headers,
                            table_flavor=table_flavor))
    if not hmac.compare_digest(presented, expected):
        raise SignatureError(
            f"signature mismatch for account {account!r}")
