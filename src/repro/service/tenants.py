"""Per-tenant state at the service node: keys, pipelines, analytics.

Multi-tenancy is the point of the SN tier: each storage account gets its
*own* interceptor pipeline — ``auth -> analytics -> throttles`` in the
canonical stack order — so one tenant's throttle storm consumes only its
own sliding windows and its Storage Analytics see only its own traffic.
The data nodes behind the SN stay tenant-agnostic (they shard state by
account but enforce no targets; admission control is a front-door job,
exactly like the real service's front-ends).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..pipeline import (
    AnalyticsInterceptor,
    AuthInterceptor,
    Pipeline,
    ThrottleInterceptor,
)
from ..storage.analytics import MetricsAggregator, RequestLog
from ..storage.errors import AuthenticationFailedError
from ..storage.limits import LIMITS_2012, ServiceLimits
from . import sharedkey
from .httpd import HttpRequest
from .sharedkey import DEV_ACCOUNT, DEV_KEY, SignatureError

__all__ = ["TenantConfig", "Tenant", "TenantDirectory"]


@dataclass(frozen=True)
class TenantConfig:
    """One account the service tier serves."""

    account: str
    key: str
    limits: ServiceLimits = LIMITS_2012
    #: Enforce the per-account scalability targets at the front door.
    enforce_targets: bool = True

    @staticmethod
    def development(**overrides) -> "TenantConfig":
        """Azurite's well-known ``devstoreaccount1`` account."""
        return TenantConfig(DEV_ACCOUNT, DEV_KEY, **overrides)


class Tenant:
    """One account's front-door state shared by every service node.

    The pipeline (and hence the throttle windows and analytics sinks) is
    deliberately **one per tenant, not one per service node**: the
    published targets are per *account*, so all SNs of a cluster charge
    the same windows, like the real front-ends sharing the partition
    master's rate state.
    """

    def __init__(self, config: TenantConfig) -> None:
        self.account = config.account
        self.key = config.key
        self.limits = config.limits
        self.log = RequestLog()
        self.metrics = MetricsAggregator()
        #: ServerBusy rejections served to this tenant (throttles).
        self.server_busy_count = 0
        stages = [
            AuthInterceptor(self._authorize_ctx),
            AnalyticsInterceptor(self.log, self.metrics),
        ]
        if config.enforce_targets:
            stages.append(
                ThrottleInterceptor(config.limits, on_busy=self._note_busy))
        self.pipeline = Pipeline(stages)

    def _note_busy(self) -> None:
        self.server_busy_count += 1

    # -- authentication -----------------------------------------------------
    def authorize_request(self, service: str, request: HttpRequest) -> None:
        """Verify the request's SharedKey signature; raise 403 on failure."""
        header = request.header("authorization")
        if not header:
            raise AuthenticationFailedError(
                "request carries no Authorization header")
        try:
            account, _sig = sharedkey.parse_authorization(header)
            if account != self.account:
                raise SignatureError(
                    f"signed for account {account!r}, "
                    f"addressed to {self.account!r}")
            sharedkey.verify_request(
                self.key, request.method, request.path, request.query,
                request.headers, header,
                table_flavor=(service == "table"))
        except SignatureError as exc:
            raise AuthenticationFailedError(str(exc)) from None

    def _authorize_ctx(self, ctx) -> None:
        """AuthInterceptor hook: the raw request rides on ``ctx.extras``."""
        wire = ctx.extras.get("wire")
        if wire is None:
            return  # not a wire-borne op (tests driving the pipeline bare)
        service, request = wire
        self.authorize_request(service, request)


class TenantDirectory:
    """Account name -> :class:`Tenant`, shared by all service nodes."""

    def __init__(self, configs: Optional[Iterable[TenantConfig]] = None
                 ) -> None:
        self._tenants: Dict[str, Tenant] = {}
        for config in (configs if configs is not None
                       else [TenantConfig.development()]):
            self.add(config)

    def add(self, config: TenantConfig) -> Tenant:
        if config.account in self._tenants:
            raise ValueError(f"tenant {config.account!r} already registered")
        tenant = Tenant(config)
        self._tenants[config.account] = tenant
        return tenant

    def get(self, account: str) -> Tenant:
        tenant = self._tenants.get(account)
        if tenant is None:
            # The real service does not reveal which accounts exist: an
            # unknown account fails authentication, not lookup.
            raise AuthenticationFailedError(
                f"unknown storage account {account!r}")
        return tenant

    def accounts(self) -> list:
        return sorted(self._tenants)

    def __iter__(self):
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)
