"""DES model of the SN/DN topology: the scaling figure's substrate.

The live service tier (``repro serve``) runs on wall-clock threads, so
it cannot answer "how does the front door scale?" reproducibly.  This
module models the same request path on the discrete-event fabric:

    client --(TCP)--> service node --(TCP)--> owning data node(s)
           <--(TCP)--          <--(TCP)--

Every hop crosses the :class:`~repro.compute.endpoints.EndpointRegistry`
intra-DC network model (per-message latency + per-byte bandwidth, seeded
jitter, per-channel FIFO), service nodes charge an authentication/
routing CPU cost, and data nodes charge the storage-op service time.  A
configurable fraction of requests fan out to *every* shard (listings and
namespace ops), which is what eventually caps data-node scaling.

``repro sndn`` sweeps service- and data-node counts over this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..compute.endpoints import EndpointRegistry
from ..simkit import Environment, Resource

__all__ = ["TopologyParams", "TopologyResult", "simulate_topology",
           "sweep_topology"]


@dataclass(frozen=True)
class TopologyParams:
    """One SN/DN deployment under closed-loop client load."""

    service_nodes: int = 1
    data_nodes: int = 2
    clients: int = 16
    duration_s: float = 60.0
    #: Request/response sizes on the wire (headers + small payload).
    request_bytes: int = 2048
    reply_bytes: int = 1024
    #: SN CPU per request: SharedKey HMAC check + decode + routing.
    sn_service_s: float = 0.0004
    #: DN service time per request: the storage op against the shard.
    dn_service_s: float = 0.002
    #: Fraction of requests that touch every shard (listings, namespace).
    fanout_fraction: float = 0.05
    seed: int = 0
    #: Shard replication factor: with R > 1 a request that lands on a
    #: crashed, not-yet-detected node is hedged onto a surviving replica
    #: (after ``hedge_delay_s``) instead of failing.
    replication: int = 1
    #: Data node that crash-stops mid-run (-1: no crash).
    crash_node: int = -1
    crash_at_s: float = 10.0
    #: Seconds until membership detects the death and heals the ring.
    detect_s: float = 1.0
    #: SN-side hedge delay charged when a replica absorbs a dead primary.
    hedge_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.service_nodes < 1 or self.data_nodes < 1:
            raise ValueError("need >= 1 service and data node")
        if self.clients < 1:
            raise ValueError("need >= 1 client")
        if not 0.0 <= self.fanout_fraction <= 1.0:
            raise ValueError("fanout_fraction must be in [0, 1]")
        if not 1 <= self.replication <= self.data_nodes:
            raise ValueError(
                f"replication must be in [1, data_nodes="
                f"{self.data_nodes}], got {self.replication}")
        if self.crash_node >= self.data_nodes:
            raise ValueError("crash_node must name an existing data node")
        if self.crash_at_s < 0 or self.detect_s <= 0:
            raise ValueError("crash_at_s must be >= 0, detect_s > 0")
        if self.hedge_delay_s < 0:
            raise ValueError("hedge_delay_s must be >= 0")


@dataclass
class TopologyResult:
    """What one simulated deployment sustained."""

    params: TopologyParams
    completed: int
    duration_s: float
    latencies: List[float] = field(repr=False, default_factory=list)
    #: Requests that failed because their shard was dead and undetected
    #: with no surviving replica to absorb them.
    failed: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def availability(self) -> float:
        total = self.completed + self.failed
        return self.completed / total if total else 1.0

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def p95_latency_s(self) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, 95))


def simulate_topology(params: TopologyParams) -> TopologyResult:
    """Run one deployment to its horizon; deterministic under the seed."""
    env = Environment()
    registry = EndpointRegistry(env, seed=params.seed)
    rng = np.random.default_rng(params.seed + 1)

    sn_cpus = [Resource(env, capacity=1)
               for _ in range(params.service_nodes)]
    dn_cpus = [Resource(env, capacity=1) for _ in range(params.data_nodes)]
    sn_inboxes = [registry.register(f"sn-{j}")
                  for j in range(params.service_nodes)]
    dn_inboxes = [registry.register(f"dn-{k}")
                  for k in range(params.data_nodes)]

    result = TopologyResult(params, completed=0,
                            duration_s=params.duration_s)
    request_seq = iter(range(1 << 60))

    # DN failure domain: ``dead`` is the crashed node, ``detected`` flips
    # once membership heals the ring (ranges reassigned to the survivor).
    crash = {"dead": None, "detected": False}

    def crasher():
        yield env.timeout(params.crash_at_s)
        crash["dead"] = params.crash_node
        yield env.timeout(params.detect_s)
        crash["detected"] = True

    if params.crash_node >= 0:
        env.process(crasher(), name="dn-crasher")

    def occupy(cpu: Resource, seconds: float):
        req = cpu.request()
        yield req
        try:
            yield env.timeout(seconds)
        finally:
            cpu.release(req)

    # -- data node: execute the shard op, reply to the per-request box --
    def dn_worker(index: int) -> None:
        inbox = dn_inboxes[index]

        def handle(msg):
            yield from occupy(dn_cpus[index], params.dn_service_s)
            reply_to = msg.payload.rstrip(b"\0").decode("ascii")
            yield from registry.send(f"dn-{index}", reply_to,
                                     b"\0" * params.reply_bytes)

        def loop():
            while True:
                msg = yield from inbox.recv()
                env.process(handle(msg))

        env.process(loop())

    # -- service node: auth+route CPU, fan out, merge, answer the client --
    def sn_worker(index: int) -> None:
        inbox = sn_inboxes[index]

        def handle(msg):
            yield from occupy(sn_cpus[index], params.sn_service_s)
            if rng.random() < params.fanout_fraction:
                targets = list(range(params.data_nodes))
            else:
                targets = [int(rng.integers(params.data_nodes))]
            # Failure-domain remap (inert while nothing is dead, so the
            # default path — and its RNG draw sequence — is unchanged).
            dead = crash["dead"]
            penalty = 0.0
            ok = True
            if dead is not None and dead in targets:
                alive = [k for k in targets if k != dead]
                if crash["detected"] or params.replication > 1:
                    # Healed ring, or a surviving replica absorbs the
                    # request (undetected: after the SN hedge delay).
                    if not crash["detected"]:
                        penalty = params.hedge_delay_s
                    if not alive:
                        successor = (dead + 1) % params.data_nodes
                        alive = [successor] if successor != dead else []
                    ok = bool(alive)
                else:
                    ok = False
                targets = alive
            if penalty:
                yield env.timeout(penalty)
            rid = f"rq-{next(request_seq)}"
            reply_box = registry.register(rid)
            payload = rid.encode("ascii").ljust(params.request_bytes, b"\0")
            for k in targets:
                yield from registry.send(f"sn-{index}", f"dn-{k}", payload)
            for _ in targets:
                yield from reply_box.recv()
            reply_box.close()
            marker = b"\0" if ok else b"\1"
            yield from registry.send(
                f"sn-{index}", msg.source,
                marker + b"\0" * (params.reply_bytes - 1))

        def loop():
            while True:
                msg = yield from inbox.recv()
                env.process(handle(msg))

        env.process(loop())

    # -- closed-loop clients, round-robin over the service nodes --------
    def client(index: int) -> None:
        name = f"client-{index}"
        inbox = registry.register(name)
        sn = index % params.service_nodes

        def loop():
            payload = b"\0" * params.request_bytes
            while True:
                started = env.now
                yield from registry.send(name, f"sn-{sn}", payload)
                reply = yield from inbox.recv()
                if reply.payload[:1] == b"\1":
                    result.failed += 1
                else:
                    result.latencies.append(env.now - started)
                    result.completed += 1

        env.process(loop())

    for k in range(params.data_nodes):
        dn_worker(k)
    for j in range(params.service_nodes):
        sn_worker(j)
    for i in range(params.clients):
        client(i)

    env.run(until=params.duration_s)
    return result


def sweep_topology(sn_counts, dn_counts, *, clients: int = 16,
                   duration_s: float = 60.0, seed: int = 0,
                   **overrides) -> Dict[tuple, TopologyResult]:
    """Simulate every (service_nodes, data_nodes) combination."""
    results: Dict[tuple, TopologyResult] = {}
    for sn in sn_counts:
        for dn in dn_counts:
            params = TopologyParams(
                service_nodes=sn, data_nodes=dn, clients=clients,
                duration_s=duration_s, seed=seed, **overrides)
            results[(sn, dn)] = simulate_topology(params)
    return results
