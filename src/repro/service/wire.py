"""The Azurite-compatible wire subset: request/response codecs.

One module owns both directions of the wire so they cannot drift:

* **server side** — :func:`decode_request` turns a parsed
  :class:`~repro.service.httpd.HttpRequest` into a :class:`DecodedOp`:
  the registry operation to run, its routing (single shard, broadcast,
  or fan-out+merge), the admission-time
  :class:`~repro.cluster.ops.OpDescriptor` the service node's tenant
  pipeline charges, and the closure that encodes the Python result back
  into an HTTP response;
* **client side** — :data:`ENCODERS` maps each ``(client, op)`` of the
  registry surface to a builder producing the HTTP exchange for that
  call, plus the parser that reconstructs the op's normal Python return
  value from the response.  :class:`repro.backend.ServiceBackend`
  derives its client classes from these encoders.

The subset follows the 2012-era REST API as Azurite models it (XML
error and message bodies, OData-style entity JSON, ``x-ms-*`` headers);
where our state machines carry more precision than the wire (float
timestamps, virtual content), extension elements/headers prefixed
``x-ms-repro-`` carry the extra bits without disturbing real SDKs.
Entity-group batches use a JSON extension body instead of MIME
multipart, the one deliberate departure.
"""

from __future__ import annotations

import base64
import email.utils
import json
import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..cluster.ops import OpDescriptor, OpKind, Service
from ..storage import errors as storage_errors
from ..storage.content import BytesContent, Content, as_content
from ..storage.errors import (
    BatchError,
    InvalidOperationError,
    ResourceNotFoundError,
    StorageError,
)
from ..storage.queue.state import QueueMessage
from ..storage.table.entity import Entity
from ..storage.table.state import BatchOperation, QueryResult
from .httpd import HttpRequest, HttpResponse

__all__ = [
    "WIRE_VERSION",
    "DecodedOp",
    "WireCall",
    "ENCODERS",
    "UnsupportedVersionError",
    "UnknownResourceError",
    "decode_request",
    "error_to_response",
    "response_to_error",
    "error_to_payload",
    "payload_to_error",
]

#: The x-ms-version this tier speaks (the paper's era).
WIRE_VERSION = "2012-02-12"

_EXT = "x-ms-repro-"  # prefix for precision-extension headers/elements


class UnsupportedVersionError(StorageError):
    """The request's ``x-ms-version`` names an API we do not speak.

    The real service answers with 400 ``InvalidHeaderValue`` and a
    proper XML error body; so do we (a bare 400 breaks SDK error
    decoding, which looks for ``x-ms-error-code``).
    """

    status_code = 400
    error_code = "InvalidHeaderValue"


class UnknownResourceError(StorageError):
    """The request URI does not name a resource of this wire subset.

    ``InvalidUri`` rather than ``InvalidInput``: the latter is claimed
    by :class:`~repro.storage.errors.BatchError` in the decode map, so a
    client would rebuild the wrong exception type.
    """

    status_code = 400
    error_code = "InvalidUri"


# ---------------------------------------------------------------------------
# Error codec
# ---------------------------------------------------------------------------

def _build_error_map() -> Dict[str, type]:
    mapping: Dict[str, type] = {}
    for name in storage_errors.__all__:
        obj = getattr(storage_errors, name)
        if isinstance(obj, type) and issubclass(obj, StorageError):
            mapping.setdefault(obj.error_code, obj)
    # The base class claims "InternalError" first, but over the wire a 500
    # InternalError is the fault engine's retryable transient — decode to
    # the class the SDK retry policies recognise.
    mapping["InternalError"] = storage_errors.TransientServerError
    return mapping


_CODE_TO_ERROR = _build_error_map()


def error_to_response(exc: StorageError, *, table: bool = False,
                      request_id: str = "") -> HttpResponse:
    """Encode a storage error the way the 2012 service (and Azurite) did."""
    message = str(exc)
    headers: List[Tuple[str, str]] = [
        ("x-ms-error-code", exc.error_code),
        ("x-ms-request-id", request_id),
        ("x-ms-version", WIRE_VERSION),
    ]
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        headers.append(("Retry-After", f"{retry_after:g}"))
    if isinstance(exc, BatchError):
        headers.append((f"{_EXT}batch-index", str(exc.index)))
        headers.append((f"{_EXT}batch-cause", exc.cause.error_code))
    if table:
        body = json.dumps({
            "odata.error": {
                "code": exc.error_code,
                "message": {"lang": "en-US", "value": message},
            }
        }).encode("utf-8")
        headers.append(
            ("Content-Type", "application/json;odata=minimalmetadata"))
    else:
        root = ET.Element("Error")
        ET.SubElement(root, "Code").text = exc.error_code
        ET.SubElement(root, "Message").text = message
        body = ('<?xml version="1.0" encoding="utf-8"?>'
                + ET.tostring(root, encoding="unicode")).encode("utf-8")
        headers.append(("Content-Type", "application/xml"))
    return HttpResponse(exc.status_code, headers, body)


def _instantiate_error(code: str, message: str, *, status: int = 500,
                       retry_after: Optional[float] = None,
                       batch_index: Optional[int] = None,
                       batch_cause: Optional[str] = None) -> StorageError:
    """Rebuild the concrete StorageError a peer encoded."""
    cls = _CODE_TO_ERROR.get(code)
    if cls is None:
        exc = StorageError(message or f"HTTP {status}")
        exc.status_code = status  # instance-level override of the class attr
        exc.error_code = code or "InternalError"
        return exc
    if batch_index is not None and cls is not BatchError:
        cls = BatchError
    if cls is BatchError:
        cause_cls = _CODE_TO_ERROR.get(batch_cause or "", StorageError)
        return BatchError(message, index=batch_index if batch_index
                          is not None else -1, cause=cause_cls(message))
    if issubclass(cls, storage_errors.RETRYABLE_ERRORS):
        return cls(message, retry_after=(
            retry_after if retry_after is not None else 1.0))
    return cls(message)


def error_to_payload(exc: StorageError) -> Dict[str, Any]:
    """Structured form of a StorageError for the internal SN<->DN frames."""
    doc: Dict[str, Any] = {
        "code": exc.error_code, "status": exc.status_code,
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        doc["retry_after"] = retry_after
    if isinstance(exc, BatchError):
        doc["batch_index"] = exc.index
        doc["batch_cause"] = exc.cause.error_code
    return doc


def payload_to_error(doc: Mapping[str, Any]) -> StorageError:
    return _instantiate_error(
        doc.get("code", ""), doc.get("message", ""),
        status=int(doc.get("status", 500)),
        retry_after=doc.get("retry_after"),
        batch_index=doc.get("batch_index"),
        batch_cause=doc.get("batch_cause"))


def response_to_error(status: int, headers: Mapping[str, str],
                      body: bytes, *, table: bool = False) -> StorageError:
    """Reconstruct the StorageError a >=400 response encodes."""
    code = headers.get("x-ms-error-code", "")
    message = ""
    try:
        if table:
            doc = json.loads(body.decode("utf-8"))["odata.error"]
            code = code or doc.get("code", "")
            message = doc.get("message", {}).get("value", "")
        elif body:
            root = ET.fromstring(body.decode("utf-8"))
            code = code or (root.findtext("Code") or "")
            message = root.findtext("Message") or ""
    except (ValueError, KeyError, ET.ParseError):
        pass
    batch_index = None
    if f"{_EXT}batch-index" in headers:
        batch_index = int(headers[f"{_EXT}batch-index"])
    retry_after = None
    if "Retry-After" in headers or "retry-after" in headers:
        retry_after = float(
            headers.get("Retry-After", headers.get("retry-after", "1")))
    return _instantiate_error(
        code, message, status=status, retry_after=retry_after,
        batch_index=batch_index,
        batch_cause=headers.get(f"{_EXT}batch-cause"))


# ---------------------------------------------------------------------------
# Small shared helpers
# ---------------------------------------------------------------------------

def _http_date(epoch: float) -> str:
    return email.utils.formatdate(epoch, usegmt=True)


def _xml_body(root: ET.Element) -> bytes:
    return ('<?xml version="1.0" encoding="utf-8"?>'
            + ET.tostring(root, encoding="unicode")).encode("utf-8")


def _content_bytes(data: Any) -> bytes:
    return as_content(data).to_bytes()


def _parse_range(req: HttpRequest) -> Optional[Tuple[int, int]]:
    """``bytes=a-b`` (inclusive) -> ``(offset, length)``."""
    raw = req.header("x-ms-range") or req.header("range")
    if not raw:
        return None
    match = re.fullmatch(r"bytes=(\d+)-(\d+)", raw.strip())
    if not match:
        raise InvalidOperationError(f"unsupported Range {raw!r}")
    start, end = int(match.group(1)), int(match.group(2))
    if end < start:
        raise InvalidOperationError(f"inverted Range {raw!r}")
    return start, end - start + 1


def _names_xml(kind: str, names: List[str]) -> bytes:
    """``<EnumerationResults><Blobs><Blob><Name>..`` style listings."""
    root = ET.Element("EnumerationResults")
    box = ET.SubElement(root, kind + "s")
    for name in names:
        ET.SubElement(ET.SubElement(box, kind), "Name").text = name
    return _xml_body(root)


def _parse_names_xml(kind: str, body: bytes) -> List[str]:
    root = ET.fromstring(body.decode("utf-8"))
    return [el.findtext("Name") or ""
            for el in root.iter(kind)]


# ---------------------------------------------------------------------------
# Queue message codec
# ---------------------------------------------------------------------------

def _message_element(msg: QueueMessage, *, peeked: bool = False) -> ET.Element:
    el = ET.Element("QueueMessage")
    ET.SubElement(el, "MessageId").text = msg.message_id
    ET.SubElement(el, "InsertionTime").text = _http_date(msg.insertion_time)
    ET.SubElement(el, "ExpirationTime").text = _http_date(msg.expiration_time)
    ET.SubElement(el, "DequeueCount").text = str(msg.dequeue_count)
    if not peeked:
        if msg.pop_receipt is not None:
            ET.SubElement(el, "PopReceipt").text = msg.pop_receipt
        ET.SubElement(el, "TimeNextVisible").text = \
            _http_date(msg.next_visible_time)
    ET.SubElement(el, "MessageText").text = \
        base64.b64encode(msg.content.to_bytes()).decode("ascii")
    # Float-precision epochs the RFC-1123 dates above cannot carry.
    ET.SubElement(el, "InsertionTimeEpoch").text = repr(msg.insertion_time)
    ET.SubElement(el, "ExpirationTimeEpoch").text = repr(msg.expiration_time)
    ET.SubElement(el, "TimeNextVisibleEpoch").text = \
        repr(msg.next_visible_time)
    return el


def _messages_xml(messages: List[QueueMessage], *,
                  peeked: bool = False) -> bytes:
    root = ET.Element("QueueMessagesList")
    for msg in messages:
        root.append(_message_element(msg, peeked=peeked))
    return _xml_body(root)


def _epoch_from(el: ET.Element, ext: str, rfc: str) -> float:
    raw = el.findtext(ext)
    if raw is not None:
        return float(raw)
    date = el.findtext(rfc)
    if not date:
        return 0.0
    return email.utils.parsedate_to_datetime(date).timestamp()


def _parse_messages_xml(body: bytes) -> List[QueueMessage]:
    root = ET.fromstring(body.decode("utf-8"))
    out: List[QueueMessage] = []
    for el in root.iter("QueueMessage"):
        text = el.findtext("MessageText") or ""
        out.append(QueueMessage(
            message_id=el.findtext("MessageId") or "",
            content=BytesContent(base64.b64decode(text)),
            insertion_time=_epoch_from(
                el, "InsertionTimeEpoch", "InsertionTime"),
            expiration_time=_epoch_from(
                el, "ExpirationTimeEpoch", "ExpirationTime"),
            next_visible_time=_epoch_from(
                el, "TimeNextVisibleEpoch", "TimeNextVisible"),
            dequeue_count=int(el.findtext("DequeueCount") or "0"),
            pop_receipt=el.findtext("PopReceipt"),
        ))
    return out


# ---------------------------------------------------------------------------
# Entity JSON codec (OData minimal-metadata style)
# ---------------------------------------------------------------------------

_SYSTEM_KEYS = {"PartitionKey", "RowKey", "Timestamp", "odata.etag"}


def encode_properties(properties: Mapping[str, Any]) -> Dict[str, Any]:
    doc: Dict[str, Any] = {}
    for name, value in properties.items():
        if isinstance(value, (bytes, Content)):
            raw = value if isinstance(value, bytes) else value.to_bytes()
            doc[name] = base64.b64encode(raw).decode("ascii")
            doc[f"{name}@odata.type"] = "Edm.Binary"
        else:
            doc[name] = value
    return doc


def decode_properties(doc: Mapping[str, Any]) -> Dict[str, Any]:
    props: Dict[str, Any] = {}
    for name, value in doc.items():
        if name in _SYSTEM_KEYS or "@odata.type" in name:
            continue
        kind = doc.get(f"{name}@odata.type")
        if kind == "Edm.Binary":
            value = base64.b64decode(value)
        elif kind == "Edm.Int64":
            value = int(value)
        elif kind == "Edm.Double":
            value = float(value)
        props[name] = value
    return props


def encode_entity(entity: Entity) -> Dict[str, Any]:
    doc = {
        "odata.etag": entity.etag,
        "PartitionKey": entity.partition_key,
        "RowKey": entity.row_key,
        "Timestamp": entity.timestamp,
    }
    doc.update(encode_properties(entity.properties()))
    return doc


def decode_entity(doc: Mapping[str, Any]) -> Entity:
    return Entity(
        doc["PartitionKey"], doc["RowKey"], decode_properties(doc),
        etag=doc.get("odata.etag", ""),
        timestamp=float(doc.get("Timestamp", 0.0)),
    )


def _json_response(status: int, payload: Any,
                   headers: Optional[List[Tuple[str, str]]] = None
                   ) -> HttpResponse:
    hdrs = list(headers or [])
    hdrs.append(("Content-Type", "application/json;odata=minimalmetadata"))
    return HttpResponse(status, hdrs,
                        json.dumps(payload).encode("utf-8"))


def _odata_quote(value: str) -> str:
    return value.replace("'", "''")


def _odata_unquote(value: str) -> str:
    return value.replace("''", "'")


#: ``/table(PartitionKey='pk',RowKey='rk')`` — quotes may contain ``''``.
_ENTITY_PATH = re.compile(
    r"^([^(]+)\(PartitionKey='((?:[^']|'')*)',RowKey='((?:[^']|'')*)'\)$")

#: ``PartitionKey eq 'pk'`` optionally ``and (<inner filter>)``.
_PARTITION_FILTER = re.compile(
    r"^PartitionKey eq '((?:[^']|'')*)'(?: and \((.*)\))?$")


# ---------------------------------------------------------------------------
# The decoded server-side operation
# ---------------------------------------------------------------------------

@dataclass
class DecodedOp:
    """One wire request resolved to a registry operation + routing."""

    client: str                      # registry client kind
    op: str                          # method name ("_download" = by-type)
    args: tuple
    kwargs: Dict[str, Any]
    #: Admission-time descriptor the tenant pipeline charges; None for
    #: registry-``local`` bookkeeping reads (which skip the pipeline on
    #: the emulator too, but still require a valid signature).
    descriptor: Optional[OpDescriptor]
    #: "one" (single owning shard), "broadcast" (namespace ops, all
    #: shards), or "fanout" (all shards, results merged at the SN).
    route: str
    route_key: Optional[str]
    encode: Callable[[Any], HttpResponse]
    #: Fan-out only: merge per-shard results into the op's Python result.
    merge: Optional[Callable[[List[Any]], Any]] = None
    #: Actual egress bytes once the result is known (analytics patch).
    result_nbytes: Optional[Callable[[Any], int]] = None


def _desc(service: Service, kind: OpKind, partition: str, *,
          nbytes: int = 0, units: int = 1,
          block_count: int = 0) -> OpDescriptor:
    return OpDescriptor(service, kind, partition, nbytes=nbytes,
                        units=units, block_count=block_count)


def _status(code: int, headers: Optional[List[Tuple[str, str]]] = None
            ) -> Callable[[Any], HttpResponse]:
    def encode(_result: Any) -> HttpResponse:
        return HttpResponse(code, list(headers or []))
    return encode


def _content_size(result: Any) -> int:
    return result.size if result is not None else 0


# -- blob service -----------------------------------------------------------

def _decode_blob(account: str, req: HttpRequest) -> DecodedOp:
    parts = req.path.strip("/").split("/", 2)
    if not parts or parts[0] != account:
        raise ResourceNotFoundError(f"unknown account path {req.path!r}")
    if len(parts) < 2 or not parts[1]:
        raise InvalidOperationError("blob requests address a container")
    container = parts[1]
    blob = parts[2] if len(parts) > 2 else None
    comp = req.query.get("comp")
    restype = req.query.get("restype")
    key = f"{container}/{blob}" if blob else container

    if blob is None:
        if restype != "container":
            raise InvalidOperationError(
                "container operations need restype=container")
        if req.method == "PUT":
            return DecodedOp(
                "blob", "create_container", (container,), {},
                _desc(Service.BLOB, OpKind.CREATE_CONTAINER, container),
                "broadcast", None, _status(201))
        if req.method == "DELETE":
            return DecodedOp(
                "blob", "delete_container", (container,), {},
                _desc(Service.BLOB, OpKind.DELETE_CONTAINER, container),
                "broadcast", None, _status(202))
        if req.method == "GET" and comp == "list":
            prefix = req.query.get("prefix", "")
            return DecodedOp(
                "blob", "list_blobs", (container, prefix), {}, None,
                "fanout", None,
                lambda names: HttpResponse(
                    200, [("Content-Type", "application/xml")],
                    _names_xml("Blob", names)),
                merge=lambda results: sorted(
                    {n for names in results for n in names}))
        raise InvalidOperationError(
            f"unsupported container request {req.method} {req.target}")

    if req.method == "PUT":
        if comp == "block":
            block_id = req.query.get("blockid", "")
            if not block_id:
                raise InvalidOperationError("comp=block needs a blockid")
            content = BytesContent(req.body)
            return DecodedOp(
                "blob", "put_block",
                (container, blob, block_id, content), {},
                _desc(Service.BLOB, OpKind.PUT_BLOCK, key,
                      nbytes=content.size),
                "one", key, _status(201))
        if comp == "blocklist":
            root = ET.fromstring(req.body.decode("utf-8"))
            ids = [el.text or "" for el in root
                   if el.tag in ("Latest", "Committed", "Uncommitted")]
            merge_commit = (
                req.header(f"{_EXT}merge-commit").lower() == "true")
            return DecodedOp(
                "blob", "put_block_list",
                (container, blob, ids), {"merge": merge_commit},
                _desc(Service.BLOB, OpKind.PUT_BLOCK_LIST, key,
                      block_count=len(ids)),
                "one", key, _status(201))
        if comp == "page":
            rng = _parse_range(req)
            if rng is None:
                raise InvalidOperationError("comp=page needs a Range")
            content = BytesContent(req.body)
            return DecodedOp(
                "blob", "put_page", (container, blob, rng[0], content), {},
                _desc(Service.BLOB, OpKind.PUT_PAGE, key,
                      nbytes=content.size),
                "one", key, _status(201))
        blob_type = req.header("x-ms-blob-type", "BlockBlob")
        if blob_type == "PageBlob":
            max_size = int(req.header("x-ms-blob-content-length", "0"))
            return DecodedOp(
                "blob", "create_page_blob", (container, blob, max_size), {},
                _desc(Service.BLOB, OpKind.CREATE_CONTAINER, key),
                "one", key, _status(201))
        content = BytesContent(req.body)
        return DecodedOp(
            "blob", "upload_blob", (container, blob, content), {},
            _desc(Service.BLOB, OpKind.UPLOAD_BLOB, key,
                  nbytes=content.size),
            "one", key, _status(201))

    if req.method == "GET":
        if comp == "blocklist":
            return DecodedOp(
                "blob", "block_count", (container, blob), {}, None,
                "one", key,
                lambda count: HttpResponse(
                    200,
                    [("x-ms-block-count", str(count)),
                     ("Content-Type", "application/xml")],
                    _xml_body(ET.Element("BlockList"))))
        if comp == "block":
            index = int(req.query.get("blockindex", "0"))
            return DecodedOp(
                "blob", "get_block", (container, blob, index), {},
                _desc(Service.BLOB, OpKind.GET_BLOCK, key),
                "one", key,
                lambda content: HttpResponse(
                    200, [], content.to_bytes()),
                result_nbytes=_content_size)
        rng = _parse_range(req)
        if rng is not None:
            offset, length = rng
            # ``_get_page`` resolves at the data node, which pairs the
            # slice with the blob's total size for the Content-Range.
            return DecodedOp(
                "blob", "_get_page", (container, blob, offset, length), {},
                _desc(Service.BLOB, OpKind.GET_PAGE, key, nbytes=length),
                "one", key,
                lambda pair: HttpResponse(
                    206,
                    [("Content-Range",
                      f"bytes {offset}-{offset + length - 1}/{pair[1]}")],
                    pair[0].to_bytes()),
                result_nbytes=lambda pair: _content_size(pair[0]))
        return DecodedOp(
            "blob", "_download", (container, blob), {},
            _desc(Service.BLOB, OpKind.DOWNLOAD_BLOB, key),
            "one", key,
            lambda content: HttpResponse(200, [], content.to_bytes()),
            result_nbytes=_content_size)

    if req.method == "DELETE":
        return DecodedOp(
            "blob", "delete_blob", (container, blob), {},
            _desc(Service.BLOB, OpKind.DELETE_BLOB, key),
            "one", key, _status(202))

    raise InvalidOperationError(
        f"unsupported blob request {req.method} {req.target}")


# -- queue service ----------------------------------------------------------

def _queue_text(body: bytes) -> Content:
    root = ET.fromstring(body.decode("utf-8"))
    return BytesContent(base64.b64decode(root.findtext("MessageText") or ""))


def _decode_queue(account: str, req: HttpRequest) -> DecodedOp:
    parts = req.path.strip("/").split("/")
    if not parts or parts[0] != account:
        raise ResourceNotFoundError(f"unknown account path {req.path!r}")
    rest = [p for p in parts[1:] if p]
    comp = req.query.get("comp")

    if not rest:
        if req.method == "GET" and comp == "list":
            prefix = req.query.get("prefix", "")
            return DecodedOp(
                "queue", "list_queues", (prefix,), {}, None,
                "fanout", None,
                lambda names: HttpResponse(
                    200, [("Content-Type", "application/xml")],
                    _names_xml("Queue", names)),
                merge=lambda results: sorted(
                    {n for names in results for n in names}))
        raise InvalidOperationError(
            f"unsupported account request {req.method} {req.target}")

    queue = rest[0]
    if len(rest) == 1:
        if req.method == "PUT":
            return DecodedOp(
                "queue", "create_queue", (queue,), {},
                _desc(Service.QUEUE, OpKind.CREATE_QUEUE, queue),
                "broadcast", None, _status(201))
        if req.method == "DELETE":
            return DecodedOp(
                "queue", "delete_queue", (queue,), {},
                _desc(Service.QUEUE, OpKind.DELETE_QUEUE, queue),
                "broadcast", None, _status(204))
        if req.method == "GET" and comp == "metadata":
            return DecodedOp(
                "queue", "get_message_count", (queue,), {},
                _desc(Service.QUEUE, OpKind.GET_MESSAGE_COUNT, queue),
                "one", queue,
                lambda count: HttpResponse(
                    200, [("x-ms-approximate-messages-count", str(count))]))
        raise InvalidOperationError(
            f"unsupported queue request {req.method} {req.target}")

    if rest[1] != "messages":
        raise ResourceNotFoundError(f"unknown queue path {req.path!r}")

    if len(rest) == 2:
        if req.method == "POST":
            content = _queue_text(req.body)
            kwargs: Dict[str, Any] = {}
            if "messagettl" in req.query:
                kwargs["ttl"] = float(req.query["messagettl"])
            if "visibilitytimeout" in req.query:
                kwargs["visibility_delay"] = float(
                    req.query["visibilitytimeout"])
            return DecodedOp(
                "queue", "put_message", (queue, content), kwargs,
                _desc(Service.QUEUE, OpKind.PUT_MESSAGE, queue,
                      nbytes=content.size),
                "one", queue,
                lambda msg: HttpResponse(
                    201, [("Content-Type", "application/xml")],
                    _messages_xml([msg] if msg is not None else [])))
        if req.method == "GET":
            if req.query.get("peekonly", "").lower() == "true":
                return DecodedOp(
                    "queue", "peek_message", (queue,), {},
                    _desc(Service.QUEUE, OpKind.PEEK_MESSAGE, queue),
                    "one", queue,
                    lambda msg: HttpResponse(
                        200, [("Content-Type", "application/xml")],
                        _messages_xml([msg] if msg else [], peeked=True)),
                    result_nbytes=_content_size)
            visibility = None
            if "visibilitytimeout" in req.query:
                visibility = float(req.query["visibilitytimeout"])
            if "numofmessages" in req.query:
                n = int(req.query["numofmessages"])
                return DecodedOp(
                    "queue", "get_messages", (queue, n),
                    {"visibility_timeout": visibility},
                    _desc(Service.QUEUE, OpKind.GET_MESSAGE, queue,
                          units=max(1, n)),
                    "one", queue,
                    lambda msgs: HttpResponse(
                        200, [("Content-Type", "application/xml")],
                        _messages_xml(msgs)),
                    result_nbytes=lambda msgs: sum(m.size for m in msgs))
            return DecodedOp(
                "queue", "get_message", (queue,),
                {"visibility_timeout": visibility},
                _desc(Service.QUEUE, OpKind.GET_MESSAGE, queue),
                "one", queue,
                lambda msg: HttpResponse(
                    200, [("Content-Type", "application/xml")],
                    _messages_xml([msg] if msg else [])),
                result_nbytes=_content_size)
        raise InvalidOperationError(
            f"unsupported messages request {req.method} {req.target}")

    message_id = rest[2]
    pop_receipt = req.query.get("popreceipt", "")
    if req.method == "DELETE":
        return DecodedOp(
            "queue", "delete_message", (queue, message_id, pop_receipt), {},
            _desc(Service.QUEUE, OpKind.DELETE_MESSAGE, queue),
            "one", queue, _status(204))
    if req.method == "PUT":
        data = _queue_text(req.body) if req.body else None
        visibility = float(req.query.get("visibilitytimeout", "0"))
        return DecodedOp(
            "queue", "update_message",
            (queue, message_id, pop_receipt, data),
            {"visibility_timeout": visibility},
            _desc(Service.QUEUE, OpKind.UPDATE_MESSAGE, queue,
                  nbytes=data.size if data is not None else 0),
            "one", queue,
            lambda msg: HttpResponse(204, [
                ("x-ms-popreceipt", msg.pop_receipt or ""),
                ("x-ms-time-next-visible", _http_date(msg.next_visible_time)),
                (f"{_EXT}time-next-visible-epoch",
                 repr(msg.next_visible_time)),
                (f"{_EXT}insertion-time-epoch", repr(msg.insertion_time)),
                (f"{_EXT}expiration-time-epoch", repr(msg.expiration_time)),
                (f"{_EXT}dequeue-count", str(msg.dequeue_count)),
            ]))
    raise InvalidOperationError(
        f"unsupported message request {req.method} {req.target}")


# -- table service ----------------------------------------------------------

def _merge_query(results: List[QueryResult], *, top: Optional[int],
                 continuation: Optional[Tuple[str, str]]) -> QueryResult:
    """Re-page the shards' unpaged scans exactly like one table would."""
    entities = sorted(
        (e for r in results for e in r.entities), key=lambda e: e.key)
    if continuation is not None:
        continuation = tuple(continuation)  # type: ignore[assignment]
        entities = [e for e in entities if e.key > continuation]
    if top is not None and len(entities) > top:
        return QueryResult(entities[:top],
                           continuation=entities[top - 1].key)
    return QueryResult(entities, continuation=None)


def _entities_response(entities: List[Entity]) -> HttpResponse:
    return _json_response(
        200, {"value": [encode_entity(e) for e in entities]})


def _query_response(result: QueryResult) -> HttpResponse:
    headers: List[Tuple[str, str]] = []
    if result.continuation is not None:
        headers.append(
            ("x-ms-continuation-NextPartitionKey", result.continuation[0]))
        headers.append(
            ("x-ms-continuation-NextRowKey", result.continuation[1]))
    return _json_response(
        200, {"value": [encode_entity(e) for e in result.entities]},
        headers)


def _entity_write_response(status: int) -> Callable[[Any], HttpResponse]:
    def encode(entity: Entity) -> HttpResponse:
        headers = [("ETag", entity.etag),
                   (f"{_EXT}timestamp-epoch", repr(entity.timestamp))]
        if status == 201:
            return _json_response(201, encode_entity(entity), headers)
        return HttpResponse(status, headers)
    return encode


def _decode_table(account: str, req: HttpRequest) -> DecodedOp:
    parts = req.path.strip("/").split("/", 2)
    if not parts or parts[0] != account:
        raise ResourceNotFoundError(f"unknown account path {req.path!r}")
    rest = parts[1] if len(parts) > 1 else ""
    if len(parts) > 2:
        rest = f"{parts[1]}/{parts[2]}"

    if rest == "Tables":
        if req.method != "POST":
            raise InvalidOperationError("POST creates tables")
        name = json.loads(req.body.decode("utf-8"))["TableName"]
        return DecodedOp(
            "table", "create_table", (name,), {},
            _desc(Service.TABLE, OpKind.CREATE_TABLE, name),
            "broadcast", None,
            lambda _r: _json_response(201, {"TableName": name}))
    table_ref = re.fullmatch(r"Tables\('((?:[^']|'')*)'\)", rest)
    if table_ref:
        if req.method != "DELETE":
            raise InvalidOperationError("only DELETE addresses Tables('..')")
        name = _odata_unquote(table_ref.group(1))
        return DecodedOp(
            "table", "delete_table", (name,), {},
            _desc(Service.TABLE, OpKind.DELETE_TABLE, name),
            "broadcast", None, _status(204))

    if rest == "$batch":
        if req.method != "POST":
            raise InvalidOperationError("POST executes batches")
        doc = json.loads(req.body.decode("utf-8"))
        table = doc["table"]
        ops = [BatchOperation(
            kind=o["kind"], partition_key=o["partitionKey"],
            row_key=o["rowKey"],
            properties=(decode_properties(o["properties"])
                        if o.get("properties") is not None else None),
            etag=o.get("etag"),
        ) for o in doc["operations"]]
        nbytes = sum(
            e.size for e in (
                Entity(o.partition_key, o.row_key, o.properties or {})
                for o in ops))
        partition = ops[0].partition_key if ops else table
        return DecodedOp(
            "table", "execute_batch", (table, ops), {},
            _desc(Service.TABLE, OpKind.BATCH, partition,
                  nbytes=nbytes, units=max(1, len(ops))),
            "one", partition,
            lambda results: _json_response(202, {"results": [
                encode_entity(e) if e is not None else None
                for e in results]}))

    entity_ref = _ENTITY_PATH.fullmatch(rest)
    if entity_ref:
        table = entity_ref.group(1)
        pk = _odata_unquote(entity_ref.group(2))
        rk = _odata_unquote(entity_ref.group(3))
        etag = req.header("if-match") or None
        if req.method == "GET":
            return DecodedOp(
                "table", "get", (table, pk, rk), {},
                _desc(Service.TABLE, OpKind.QUERY_ENTITY, pk),
                "one", pk,
                lambda e: _json_response(200, encode_entity(e)),
                result_nbytes=lambda e: e.size)
        if req.method == "DELETE":
            if etag is None:
                raise InvalidOperationError("DELETE entity needs If-Match")
            return DecodedOp(
                "table", "delete", (table, pk, rk), {"etag": etag},
                _desc(Service.TABLE, OpKind.DELETE_ENTITY, pk),
                "one", pk, _status(204))
        if req.method in ("PUT", "MERGE"):
            props = decode_properties(json.loads(req.body.decode("utf-8")))
            nbytes = Entity(pk, rk, props).size
            if req.method == "PUT":
                op = "update" if etag is not None else "insert_or_replace"
                kind = OpKind.UPDATE_ENTITY
            else:
                op = "merge" if etag is not None else "insert_or_merge"
                kind = OpKind.MERGE_ENTITY
            kwargs = {"etag": etag} if etag is not None else {}
            return DecodedOp(
                "table", op, (table, pk, rk, props), kwargs,
                _desc(Service.TABLE, kind, pk, nbytes=nbytes),
                "one", pk, _entity_write_response(204))
        raise InvalidOperationError(
            f"unsupported entity request {req.method} {req.target}")

    table = rest[:-2] if rest.endswith("()") else rest
    if not table:
        raise ResourceNotFoundError(f"unknown table path {req.path!r}")

    if req.method == "POST":
        doc = json.loads(req.body.decode("utf-8"))
        pk, rk = doc["PartitionKey"], doc["RowKey"]
        props = decode_properties(doc)
        return DecodedOp(
            "table", "insert", (table, pk, rk, props), {},
            _desc(Service.TABLE, OpKind.INSERT_ENTITY, pk,
                  nbytes=Entity(pk, rk, props).size),
            "one", pk, _entity_write_response(201))

    if req.method == "GET":
        filter_str = req.query.get("$filter")
        select = None
        if "$select" in req.query:
            select = [s for s in req.query["$select"].split(",") if s]
        match = _PARTITION_FILTER.fullmatch(filter_str or "")
        if match and "NextPartitionKey" not in req.query:
            pk = _odata_unquote(match.group(1))
            inner = match.group(2)
            return DecodedOp(
                "table", "query_partition", (table, pk, inner),
                {"select": select},
                _desc(Service.TABLE, OpKind.QUERY_ENTITY, pk),
                "one", pk, _entities_response,
                result_nbytes=lambda es: sum(e.size for e in es))
        top = int(req.query["$top"]) if "$top" in req.query else None
        continuation = None
        if "NextPartitionKey" in req.query:
            continuation = (req.query["NextPartitionKey"],
                            req.query.get("NextRowKey", ""))
        return DecodedOp(
            "table", "query", (table,),
            {"filter": filter_str, "select": select},
            _desc(Service.TABLE, OpKind.QUERY_ENTITY, table),
            "fanout", None, _query_response,
            merge=lambda results: _merge_query(
                results, top=top, continuation=continuation),
            result_nbytes=lambda r: sum(e.size for e in r.entities))

    raise InvalidOperationError(
        f"unsupported table request {req.method} {req.target}")


_DECODERS = {
    "blob": _decode_blob,
    "queue": _decode_queue,
    "table": _decode_table,
}


def decode_request(service: str, account: str,
                   req: HttpRequest) -> DecodedOp:
    """Resolve one wire request against the ``service`` listener."""
    try:
        return _DECODERS[service](account, req)
    except StorageError:
        raise
    except Exception as exc:
        # A URI shape the decoder never anticipated must still come back
        # as a decodable storage error, not a bare 400 (or a 500).
        raise UnknownResourceError(
            f"cannot resolve {req.method} {req.target!r} against the "
            f"{service} endpoint") from exc


# ---------------------------------------------------------------------------
# Client-side encoders: (client, op) -> WireCall builder
# ---------------------------------------------------------------------------

@dataclass
class WireCall:
    """One client-side HTTP exchange for a registry operation."""

    service: str
    method: str
    path: str                        # below the /{account} prefix
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    parse: Callable[[int, Mapping[str, str], bytes], Any] = \
        lambda status, headers, body: None


ENCODERS: Dict[Tuple[str, str], Callable[..., WireCall]] = {}


def _encoder(client: str, op: str):
    def register(fn):
        ENCODERS[(client, op)] = fn
        return fn
    return register


def _parse_none(status, headers, body):
    return None


def _parse_content(status, headers, body):
    return BytesContent(body)


# -- blob client ------------------------------------------------------------

@_encoder("blob", "create_container")
def _enc_create_container(name):
    return WireCall("blob", "PUT", f"/{name}",
                    query={"restype": "container"}, parse=_parse_none)


@_encoder("blob", "delete_container")
def _enc_delete_container(name):
    return WireCall("blob", "DELETE", f"/{name}",
                    query={"restype": "container"}, parse=_parse_none)


@_encoder("blob", "list_blobs")
def _enc_list_blobs(container, prefix=""):
    query = {"restype": "container", "comp": "list"}
    if prefix:
        query["prefix"] = prefix
    return WireCall(
        "blob", "GET", f"/{container}", query=query,
        parse=lambda s, h, b: _parse_names_xml("Blob", b))


@_encoder("blob", "put_block")
def _enc_put_block(container, blob, block_id, data):
    return WireCall(
        "blob", "PUT", f"/{container}/{blob}",
        query={"comp": "block", "blockid": block_id},
        body=_content_bytes(data), parse=_parse_none)


@_encoder("blob", "put_block_list")
def _enc_put_block_list(container, blob, block_ids, *, merge=False):
    root = ET.Element("BlockList")
    for block_id in block_ids:
        ET.SubElement(root, "Latest").text = str(block_id)
    headers = {}
    if merge:
        headers[f"{_EXT}merge-commit"] = "true"
    return WireCall(
        "blob", "PUT", f"/{container}/{blob}",
        query={"comp": "blocklist"}, headers=headers,
        body=_xml_body(root), parse=_parse_none)


@_encoder("blob", "upload_blob")
def _enc_upload_blob(container, blob, data):
    return WireCall(
        "blob", "PUT", f"/{container}/{blob}",
        headers={"x-ms-blob-type": "BlockBlob"},
        body=_content_bytes(data), parse=_parse_none)


@_encoder("blob", "create_page_blob")
def _enc_create_page_blob(container, blob, max_size):
    return WireCall(
        "blob", "PUT", f"/{container}/{blob}",
        headers={"x-ms-blob-type": "PageBlob",
                 "x-ms-blob-content-length": str(max_size)},
        parse=_parse_none)


@_encoder("blob", "put_page")
def _enc_put_page(container, blob, offset, data):
    payload = _content_bytes(data)
    return WireCall(
        "blob", "PUT", f"/{container}/{blob}", query={"comp": "page"},
        headers={"x-ms-range":
                 f"bytes={offset}-{offset + len(payload) - 1}",
                 "x-ms-page-write": "update"},
        body=payload, parse=_parse_none)


@_encoder("blob", "get_page")
def _enc_get_page(container, blob, offset, length):
    return WireCall(
        "blob", "GET", f"/{container}/{blob}",
        headers={"x-ms-range": f"bytes={offset}-{offset + length - 1}"},
        parse=_parse_content)


@_encoder("blob", "get_block")
def _enc_get_block(container, blob, index):
    return WireCall(
        "blob", "GET", f"/{container}/{blob}",
        query={"comp": "block", "blockindex": str(index)},
        parse=_parse_content)


@_encoder("blob", "download_block_blob")
def _enc_download_block_blob(container, blob):
    return WireCall("blob", "GET", f"/{container}/{blob}",
                    parse=_parse_content)


@_encoder("blob", "download_page_blob")
def _enc_download_page_blob(container, blob, *, written_only=True):
    # The wire serves the blob's readable image either way; written_only
    # is a cost-model refinement that has no REST analogue.
    return WireCall("blob", "GET", f"/{container}/{blob}",
                    parse=_parse_content)


@_encoder("blob", "block_count")
def _enc_block_count(container, blob):
    return WireCall(
        "blob", "GET", f"/{container}/{blob}", query={"comp": "blocklist"},
        parse=lambda s, h, b: int(h.get("x-ms-block-count", "0")))


@_encoder("blob", "delete_blob")
def _enc_delete_blob(container, blob, *, lease_id=None,
                     delete_snapshots=False):
    if lease_id is not None or delete_snapshots:
        raise NotImplementedError(
            "leases/snapshots are not part of the wire subset")
    return WireCall("blob", "DELETE", f"/{container}/{blob}",
                    parse=_parse_none)


# -- queue client -----------------------------------------------------------

def _parse_one_message(status, headers, body):
    messages = _parse_messages_xml(body)
    return messages[0] if messages else None


@_encoder("queue", "create_queue")
def _enc_create_queue(name):
    return WireCall("queue", "PUT", f"/{name}", parse=_parse_none)


@_encoder("queue", "delete_queue")
def _enc_delete_queue(name):
    return WireCall("queue", "DELETE", f"/{name}", parse=_parse_none)


@_encoder("queue", "list_queues")
def _enc_list_queues(prefix=""):
    query = {"comp": "list"}
    if prefix:
        query["prefix"] = prefix
    return WireCall(
        "queue", "GET", "/", query=query,
        parse=lambda s, h, b: _parse_names_xml("Queue", b))


def _message_body(data) -> bytes:
    root = ET.Element("QueueMessage")
    ET.SubElement(root, "MessageText").text = \
        base64.b64encode(_content_bytes(data)).decode("ascii")
    return _xml_body(root)


@_encoder("queue", "put_message")
def _enc_put_message(queue, data, *, ttl=None, visibility_delay=0.0):
    query = {}
    if ttl is not None:
        query["messagettl"] = f"{ttl:g}"
    if visibility_delay:
        query["visibilitytimeout"] = f"{visibility_delay:g}"
    return WireCall(
        "queue", "POST", f"/{queue}/messages", query=query,
        body=_message_body(data), parse=_parse_one_message)


@_encoder("queue", "get_message")
def _enc_get_message(queue, *, visibility_timeout=None):
    query = {}
    if visibility_timeout is not None:
        query["visibilitytimeout"] = f"{visibility_timeout:g}"
    return WireCall("queue", "GET", f"/{queue}/messages", query=query,
                    parse=_parse_one_message)


@_encoder("queue", "get_messages")
def _enc_get_messages(queue, n=1, *, visibility_timeout=None):
    query = {"numofmessages": str(n)}
    if visibility_timeout is not None:
        query["visibilitytimeout"] = f"{visibility_timeout:g}"
    return WireCall(
        "queue", "GET", f"/{queue}/messages", query=query,
        parse=lambda s, h, b: _parse_messages_xml(b))


@_encoder("queue", "peek_message")
def _enc_peek_message(queue):
    return WireCall(
        "queue", "GET", f"/{queue}/messages",
        query={"peekonly": "true"}, parse=_parse_one_message)


@_encoder("queue", "delete_message")
def _enc_delete_message(queue, message_id, pop_receipt):
    return WireCall(
        "queue", "DELETE", f"/{queue}/messages/{message_id}",
        query={"popreceipt": pop_receipt or ""}, parse=_parse_none)


@_encoder("queue", "update_message")
def _enc_update_message(queue, message_id, pop_receipt, data=None, *,
                        visibility_timeout=0.0):
    def parse(status, headers, body):
        content = (BytesContent(_content_bytes(data))
                   if data is not None else BytesContent(b""))
        return QueueMessage(
            message_id=message_id,
            content=content,
            insertion_time=float(
                headers.get(f"{_EXT}insertion-time-epoch", "0")),
            expiration_time=float(
                headers.get(f"{_EXT}expiration-time-epoch", "0")),
            next_visible_time=float(
                headers.get(f"{_EXT}time-next-visible-epoch", "0")),
            dequeue_count=int(headers.get(f"{_EXT}dequeue-count", "0")),
            pop_receipt=headers.get("x-ms-popreceipt") or None,
        )
    return WireCall(
        "queue", "PUT", f"/{queue}/messages/{message_id}",
        query={"popreceipt": pop_receipt or "",
               "visibilitytimeout": f"{visibility_timeout:g}"},
        body=_message_body(data) if data is not None else b"",
        parse=parse)


@_encoder("queue", "get_message_count")
def _enc_get_message_count(queue):
    return WireCall(
        "queue", "GET", f"/{queue}", query={"comp": "metadata"},
        parse=lambda s, h, b: int(
            h.get("x-ms-approximate-messages-count", "0")))


# -- table client -----------------------------------------------------------

_TABLE_JSON = {"Content-Type": "application/json",
               "Accept": "application/json;odata=minimalmetadata"}


def _parse_written_entity(pk, rk, props):
    def parse(status, headers, body):
        if body:
            return decode_entity(json.loads(body.decode("utf-8")))
        return Entity(pk, rk, props,
                      etag=headers.get("etag", ""),
                      timestamp=float(
                          headers.get(f"{_EXT}timestamp-epoch", "0")))
    return parse


@_encoder("table", "create_table")
def _enc_create_table(name):
    return WireCall(
        "table", "POST", "/Tables", headers=dict(_TABLE_JSON),
        body=json.dumps({"TableName": name}).encode("utf-8"),
        parse=_parse_none)


@_encoder("table", "delete_table")
def _enc_delete_table(name):
    return WireCall(
        "table", "DELETE", f"/Tables('{_odata_quote(name)}')",
        headers=dict(_TABLE_JSON), parse=_parse_none)


@_encoder("table", "insert")
def _enc_insert(table, partition_key, row_key, properties):
    doc = {"PartitionKey": partition_key, "RowKey": row_key}
    doc.update(encode_properties(properties))
    return WireCall(
        "table", "POST", f"/{table}", headers=dict(_TABLE_JSON),
        body=json.dumps(doc).encode("utf-8"),
        parse=_parse_written_entity(partition_key, row_key,
                                    dict(properties)))


def _entity_path(table, pk, rk) -> str:
    return (f"/{table}(PartitionKey='{_odata_quote(pk)}',"
            f"RowKey='{_odata_quote(rk)}')")


@_encoder("table", "get")
def _enc_get(table, partition_key, row_key):
    return WireCall(
        "table", "GET", _entity_path(table, partition_key, row_key),
        headers=dict(_TABLE_JSON),
        parse=lambda s, h, b: decode_entity(json.loads(b.decode("utf-8"))))


def _entity_write(method, table, pk, rk, properties, etag):
    headers = dict(_TABLE_JSON)
    if etag is not None:
        headers["If-Match"] = etag
    return WireCall(
        "table", method, _entity_path(table, pk, rk), headers=headers,
        body=json.dumps(encode_properties(properties)).encode("utf-8"),
        parse=_parse_written_entity(pk, rk, dict(properties)))


@_encoder("table", "update")
def _enc_update(table, partition_key, row_key, properties, *, etag="*"):
    return _entity_write("PUT", table, partition_key, row_key,
                         properties, etag if etag is not None else "*")


@_encoder("table", "merge")
def _enc_merge(table, partition_key, row_key, properties, *, etag="*"):
    return _entity_write("MERGE", table, partition_key, row_key,
                         properties, etag if etag is not None else "*")


@_encoder("table", "insert_or_replace")
def _enc_insert_or_replace(table, partition_key, row_key, properties):
    return _entity_write("PUT", table, partition_key, row_key,
                         properties, None)


@_encoder("table", "insert_or_merge")
def _enc_insert_or_merge(table, partition_key, row_key, properties):
    return _entity_write("MERGE", table, partition_key, row_key,
                         properties, None)


@_encoder("table", "delete")
def _enc_delete(table, partition_key, row_key, *, etag="*"):
    return WireCall(
        "table", "DELETE", _entity_path(table, partition_key, row_key),
        headers={**_TABLE_JSON,
                 "If-Match": etag if etag is not None else "*"},
        parse=_parse_none)


def _require_string_filter(filter):
    if filter is not None and not isinstance(filter, str):
        raise NotImplementedError(
            "the service backend sends filters over the wire: pass an "
            "OData filter string, not a Python callable")
    return filter


@_encoder("table", "query_partition")
def _enc_query_partition(table, partition_key, filter=None, *, select=None):
    _require_string_filter(filter)
    filter_str = f"PartitionKey eq '{_odata_quote(partition_key)}'"
    if filter:
        filter_str += f" and ({filter})"
    query = {"$filter": filter_str}
    if select is not None:
        query["$select"] = ",".join(select)
    return WireCall(
        "table", "GET", f"/{table}()", query=query,
        headers=dict(_TABLE_JSON),
        parse=lambda s, h, b: [
            decode_entity(doc)
            for doc in json.loads(b.decode("utf-8"))["value"]])


@_encoder("table", "query")
def _enc_query(table, filter=None, *, top=None, continuation=None,
               select=None):
    _require_string_filter(filter)
    query = {}
    if filter:
        query["$filter"] = filter
    if top is not None:
        query["$top"] = str(top)
    if select is not None:
        query["$select"] = ",".join(select)
    if continuation is not None:
        query["NextPartitionKey"] = continuation[0]
        query["NextRowKey"] = continuation[1]

    def parse(status, headers, body):
        entities = [decode_entity(doc)
                    for doc in json.loads(body.decode("utf-8"))["value"]]
        cont = None
        if "x-ms-continuation-nextpartitionkey" in headers:
            cont = (headers["x-ms-continuation-nextpartitionkey"],
                    headers.get("x-ms-continuation-nextrowkey", ""))
        return QueryResult(entities, continuation=cont)

    return WireCall("table", "GET", f"/{table}()", query=query,
                    headers=dict(_TABLE_JSON), parse=parse)


@_encoder("table", "execute_batch")
def _enc_execute_batch(table, operations):
    doc = {"table": table, "operations": [{
        "kind": op.kind,
        "partitionKey": op.partition_key,
        "rowKey": op.row_key,
        "properties": (encode_properties(op.properties)
                       if op.properties is not None else None),
        "etag": op.etag,
    } for op in operations]}

    def parse(status, headers, body):
        results = json.loads(body.decode("utf-8"))["results"]
        return [decode_entity(r) if r is not None else None
                for r in results]

    return WireCall(
        "table", "POST", "/$batch", headers=dict(_TABLE_JSON),
        body=json.dumps(doc).encode("utf-8"), parse=parse)
