"""Simulated storage clients running on the DES fabric model."""

from .clients import (
    SimBlobClient,
    SimCacheClient,
    SimQueueClient,
    SimStorageAccount,
    SimTableClient,
)
from .retry import retrying

__all__ = [
    "SimStorageAccount",
    "SimBlobClient",
    "SimQueueClient",
    "SimTableClient",
    "SimCacheClient",
    "retrying",
]
