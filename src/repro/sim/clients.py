"""Simulated storage clients: data-plane semantics + fabric timing.

These clients expose the same operations the 2012 Azure SDK offered (the
bold API names in the paper's Algorithms 1-5), implemented as **simkit
process generators**: call them with ``yield from`` inside a process. ::

    def worker(env, account):
        queue = account.queue_client()
        yield from queue.create_queue("tasks")
        yield from queue.put_message("tasks", b"hello")
        msg = yield from queue.get_message("tasks")
        yield from queue.delete_message("tasks", msg.message_id, msg.pop_receipt)

Each call charges the cluster's cost model (latency, server contention,
throttling) and applies the state change when the simulated round trip
completes.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Tuple

from ..cluster import OpDescriptor, OpKind, Service, StorageCluster
from ..cluster.calibration import DEFAULT_CALIBRATION, FabricCalibration
from ..simkit import Environment
from ..storage import (
    Content,
    LIMITS_2012,
    ServiceLimits,
    SimClock,
    StorageAccountState,
    as_content,
)
from ..storage.cache import CacheServiceState
from ..storage.queue import QueueMessage
from ..storage.table import BatchOperation, Entity

__all__ = [
    "SimStorageAccount",
    "SimBlobClient",
    "SimQueueClient",
    "SimTableClient",
    "SimCacheClient",
]


class SimStorageAccount:
    """A storage account bound to a simulated fabric.

    Owns the backend-agnostic :class:`StorageAccountState` (driven by the
    simulation clock) and the :class:`StorageCluster` performance model.
    """

    def __init__(self, env: Environment, name: str = "azurebench", *,
                 limits: ServiceLimits = LIMITS_2012,
                 calibration: FabricCalibration = DEFAULT_CALIBRATION,
                 seed: int = 0,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        self.env = env
        self.state = StorageAccountState(
            name, SimClock(env), limits, fifo_jitter_seed=fifo_jitter_seed
        )
        self.cluster = StorageCluster(
            env, limits=limits, calibration=calibration, seed=seed
        )
        #: The co-located caching service (paper II.B; separate billing, so
        #: it lives beside — not inside — the storage account state).
        self.cache_state = CacheServiceState(self.state.clock)

    def blob_client(self) -> "SimBlobClient":
        return SimBlobClient(self)

    def queue_client(self) -> "SimQueueClient":
        return SimQueueClient(self)

    def table_client(self) -> "SimTableClient":
        return SimTableClient(self)

    def cache_client(self) -> "SimCacheClient":
        return SimCacheClient(self)


class _SimClientBase:
    def __init__(self, account: SimStorageAccount) -> None:
        self.account = account
        self.env = account.env
        self.cluster = account.cluster
        self.state = account.state

    def _charge(self, op: OpDescriptor):
        yield from self.cluster.execute(op)


class SimBlobClient(_SimClientBase):
    """Blob service client (paper Algorithm 1 API surface)."""

    def _blob_partition(self, container: str, blob: str) -> str:
        # "Blobs are partitioned based on container name + blob name."
        return f"{container}/{blob}"

    # -- containers ---------------------------------------------------------
    def create_container(self, name: str):
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.CREATE_CONTAINER, partition=name))
        return self.state.blobs.create_container(name)

    def delete_container(self, name: str):
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.DELETE_CONTAINER, partition=name))
        self.state.blobs.delete_container(name)

    # -- block blobs ---------------------------------------------------------
    def put_block(self, container: str, blob: str, block_id: str, data):
        """``PutBlock``: stage one block (creates the blob if needed)."""
        content = as_content(data)
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.PUT_BLOCK,
            partition=self._blob_partition(container, blob),
            nbytes=content.size))
        c = self.state.blobs.get_container(container)
        if blob not in c:
            c.create_block_blob(blob)
        c.get_block_blob(blob).put_block(block_id, content)

    def put_block_list(self, container: str, blob: str,
                       block_ids: Sequence[str], *, merge: bool = False):
        """``PutBlockList``: commit the staged blocks in order.

        ``merge=True`` commits on top of the current committed list (the
        multi-writer discipline Algorithm 1 relies on, applied atomically at
        the simulated completion instant).
        """
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.PUT_BLOCK_LIST,
            partition=self._blob_partition(container, blob),
            block_count=len(block_ids)))
        c = self.state.blobs.get_container(container)
        c.get_block_blob(blob).put_block_list(block_ids, merge=merge)

    def upload_blob(self, container: str, blob: str, data):
        """Single-shot block blob upload (< 64 MB)."""
        content = as_content(data)
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.UPLOAD_BLOB,
            partition=self._blob_partition(container, blob),
            nbytes=content.size))
        c = self.state.blobs.get_container(container)
        if blob not in c:
            c.create_block_blob(blob)
        c.get_block_blob(blob).upload(content)

    def get_block(self, container: str, blob: str, index: int):
        """``GetBlock``: read one committed block sequentially."""
        blob_state = self.state.blobs.get_container(container).get_block_blob(blob)
        content = blob_state.get_block(index)
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.GET_BLOCK,
            partition=self._blob_partition(container, blob),
            nbytes=content.size))
        return content

    def download_block_blob(self, container: str, blob: str):
        """``DownloadText``: stream the whole committed blob."""
        blob_state = self.state.blobs.get_container(container).get_block_blob(blob)
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.DOWNLOAD_BLOB,
            partition=self._blob_partition(container, blob),
            nbytes=blob_state.size))
        return blob_state.download()

    def block_count(self, container: str, blob: str) -> int:
        """Committed block count (no round trip: local bookkeeping)."""
        return self.state.blobs.get_container(container).get_block_blob(blob).block_count

    # -- page blobs ---------------------------------------------------------
    def create_page_blob(self, container: str, blob: str, max_size: int):
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.CREATE_CONTAINER,  # metadata-cost op
            partition=self._blob_partition(container, blob)))
        c = self.state.blobs.get_container(container)
        return c.create_page_blob(blob, max_size)

    def put_page(self, container: str, blob: str, offset: int, data):
        """``PutPage``: random write at a 512-aligned offset."""
        content = as_content(data)
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.PUT_PAGE,
            partition=self._blob_partition(container, blob),
            nbytes=content.size))
        c = self.state.blobs.get_container(container)
        c.get_page_blob(blob).put_pages(offset, content)

    def get_page(self, container: str, blob: str, offset: int, length: int):
        """``GetPage``: random read of an aligned range (pays seek cost)."""
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.GET_PAGE,
            partition=self._blob_partition(container, blob),
            nbytes=length))
        blob_state = self.state.blobs.get_container(container).get_page_blob(blob)
        return blob_state.read(offset, length)

    def download_page_blob(self, container: str, blob: str, *,
                           written_only: bool = True):
        """``openRead()``-style streaming download of a page blob.

        ``written_only`` charges only written ranges (the service does not
        ship unwritten zero pages over the wire).
        """
        blob_state = self.state.blobs.get_container(container).get_page_blob(blob)
        nbytes = blob_state.written_bytes if written_only else blob_state.size
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.DOWNLOAD_BLOB,
            partition=self._blob_partition(container, blob),
            nbytes=nbytes))
        return blob_state.read_all()

    # -- shared -----------------------------------------------------------
    def delete_blob(self, container: str, blob: str, *,
                    lease_id=None, delete_snapshots: bool = False):
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.DELETE_BLOB,
            partition=self._blob_partition(container, blob)))
        self.state.blobs.get_container(container).delete_blob(
            blob, lease_id=lease_id, delete_snapshots=delete_snapshots)

    # -- leases (metadata-cost round trips) --------------------------------
    def acquire_lease(self, container: str, blob: str):
        """Take the blob's one-minute exclusive write lease."""
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.CREATE_CONTAINER,
            partition=self._blob_partition(container, blob)))
        return self.state.blobs.get_container(container) \
            .get_blob(blob).acquire_lease()

    def renew_lease(self, container: str, blob: str, lease_id: str):
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.CREATE_CONTAINER,
            partition=self._blob_partition(container, blob)))
        self.state.blobs.get_container(container) \
            .get_blob(blob).renew_lease(lease_id)

    def release_lease(self, container: str, blob: str, lease_id: str):
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.CREATE_CONTAINER,
            partition=self._blob_partition(container, blob)))
        self.state.blobs.get_container(container) \
            .get_blob(blob).release_lease(lease_id)

    # -- snapshots ---------------------------------------------------------
    def snapshot_blob(self, container: str, blob: str):
        """Take an immutable point-in-time snapshot."""
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.CREATE_CONTAINER,
            partition=self._blob_partition(container, blob)))
        return self.state.blobs.get_container(container) \
            .get_blob(blob).snapshot()

    def download_snapshot(self, container: str, blob: str, snapshot_id: str):
        blob_state = self.state.blobs.get_container(container).get_blob(blob)
        snap = blob_state.get_snapshot(snapshot_id)
        yield from self._charge(OpDescriptor(
            Service.BLOB, OpKind.DOWNLOAD_BLOB,
            partition=self._blob_partition(container, blob),
            nbytes=snap.size))
        return snap.download()


class SimQueueClient(_SimClientBase):
    """Queue service client (paper Algorithms 2-4 API surface)."""

    def _fault_plan(self):
        """The cluster's fault schedule (queue data-plane faults)."""
        return self.cluster.fault_plan

    def create_queue(self, name: str):
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.CREATE_QUEUE, partition=name))
        return self.state.queues.create_queue(name)

    def delete_queue(self, name: str):
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.DELETE_QUEUE, partition=name))
        self.state.queues.delete_queue(name)

    def put_message(self, queue: str, data, *, ttl: Optional[float] = None,
                    visibility_delay: float = 0.0):
        """``PutMessage``."""
        content = as_content(data)
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.PUT_MESSAGE, partition=queue,
            nbytes=content.size))
        plan = self._fault_plan()
        if plan is not None and plan.drop_message(queue, self.env.now):
            # Injected message loss: the service acked the put but the
            # payload never landed (lost replica write).
            self.state.queues.get_queue(queue)  # still 404s if missing
            return None
        return self.state.queues.get_queue(queue).put_message(
            content, ttl=ttl, visibility_delay=visibility_delay)

    def _next_visible_size(self, queue: str) -> int:
        q = self.state.queues.get_queue(queue)
        peeked = q.peek_messages(1)
        return peeked[0].size if peeked else 0

    def get_message(self, queue: str, *,
                    visibility_timeout: Optional[float] = None):
        """``GetMessage``: returns a message or ``None``."""
        nbytes = self._next_visible_size(queue)
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.GET_MESSAGE, partition=queue, nbytes=nbytes))
        msg = self.state.queues.get_queue(queue).get_message(
            visibility_timeout=visibility_timeout)
        plan = self._fault_plan()
        if (msg is not None and plan is not None
                and plan.duplicate_delivery(queue, self.env.now)):
            # Injected duplicate delivery: the message stays visible, so
            # another consumer receives it too (at-least-once anomaly).
            self.state.queues.get_queue(queue).make_visible(msg.message_id)
        return msg

    def get_messages(self, queue: str, n: int = 1, *,
                     visibility_timeout: Optional[float] = None):
        """Batch ``GetMessages``: up to 32 messages in one round trip."""
        if not 1 <= n <= 32:
            raise ValueError("n must be in 1..32 (2012 API limit)")
        q = self.state.queues.get_queue(queue)
        visible = q.peek_messages(n)
        nbytes = sum(m.size for m in visible)
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.GET_MESSAGE, partition=queue,
            nbytes=nbytes, units=max(1, len(visible))))
        got = q.get_messages(n, visibility_timeout=visibility_timeout)
        plan = self._fault_plan()
        if plan is not None:
            for m in got:
                if plan.duplicate_delivery(queue, self.env.now):
                    q.make_visible(m.message_id)
        return got

    def peek_message(self, queue: str):
        """``PeekMessage``: non-destructive read, or ``None``."""
        nbytes = self._next_visible_size(queue)
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.PEEK_MESSAGE, partition=queue, nbytes=nbytes))
        return self.state.queues.get_queue(queue).peek_message()

    def delete_message(self, queue: str, message_id: str, pop_receipt: str):
        """``DeleteMessage``."""
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.DELETE_MESSAGE, partition=queue))
        self.state.queues.get_queue(queue).delete_message(message_id, pop_receipt)

    def update_message(self, queue: str, message_id: str, pop_receipt: str,
                       data=None, *, visibility_timeout: float = 0.0):
        content = as_content(data) if data is not None else None
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.UPDATE_MESSAGE, partition=queue,
            nbytes=content.size if content is not None else 0))
        return self.state.queues.get_queue(queue).update_message(
            message_id, pop_receipt, content,
            visibility_timeout=visibility_timeout)

    def get_message_count(self, queue: str):
        """``GetMsgCount``: the approximate count Algorithm 2 polls."""
        yield from self._charge(OpDescriptor(
            Service.QUEUE, OpKind.GET_MESSAGE_COUNT, partition=queue))
        return self.state.queues.get_queue(queue).approximate_message_count()


class SimTableClient(_SimClientBase):
    """Table service client (paper Algorithm 5 API surface)."""

    @staticmethod
    def _props_bytes(properties: Mapping[str, Any]) -> int:
        total = 0
        for value in properties.values():
            if isinstance(value, Content):
                total += value.size
            elif isinstance(value, bytes):
                total += len(value)
            elif isinstance(value, str):
                total += 2 * len(value)
            else:
                total += 8
        return total

    def create_table(self, name: str):
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.CREATE_TABLE, partition=name))
        return self.state.tables.create_table(name)

    def delete_table(self, name: str):
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.DELETE_TABLE, partition=name))
        self.state.tables.delete_table(name)

    def insert(self, table: str, partition_key: str, row_key: str,
               properties: Mapping[str, Any]):
        """``AddRow``: insert a new entity."""
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.INSERT_ENTITY, partition=partition_key,
            nbytes=self._props_bytes(properties)))
        return self.state.tables.get_table(table).insert(
            partition_key, row_key, properties)

    def get(self, table: str, partition_key: str, row_key: str):
        """``Query`` (point lookup by full key)."""
        t = self.state.tables.get_table(table)
        existing = t.try_get(partition_key, row_key)
        nbytes = existing.size if existing is not None else 0
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.QUERY_ENTITY, partition=partition_key,
            nbytes=nbytes))
        return t.get(partition_key, row_key)

    def query_partition(self, table: str, partition_key: str,
                        filter=None, *, select=None):
        """Range query over one partition (optionally ``$select``-ed)."""
        t = self.state.tables.get_table(table)
        entities = t.query_partition(partition_key, filter, select=select)
        nbytes = sum(e.size for e in entities)
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.QUERY_ENTITY, partition=partition_key,
            nbytes=nbytes, units=max(1, len(entities))))
        return entities

    def update(self, table: str, partition_key: str, row_key: str,
               properties: Mapping[str, Any], *, etag: Optional[str] = "*"):
        """``Update``: replace the property bag (wildcard ETag by default)."""
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.UPDATE_ENTITY, partition=partition_key,
            nbytes=self._props_bytes(properties)))
        return self.state.tables.get_table(table).update(
            partition_key, row_key, properties, etag=etag)

    def merge(self, table: str, partition_key: str, row_key: str,
              properties: Mapping[str, Any], *, etag: Optional[str] = "*"):
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.MERGE_ENTITY, partition=partition_key,
            nbytes=self._props_bytes(properties)))
        return self.state.tables.get_table(table).merge(
            partition_key, row_key, properties, etag=etag)

    def insert_or_replace(self, table: str, partition_key: str, row_key: str,
                          properties: Mapping[str, Any]):
        """Upsert, replacing the property bag if the entity exists."""
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.UPDATE_ENTITY, partition=partition_key,
            nbytes=self._props_bytes(properties)))
        return self.state.tables.get_table(table).insert_or_replace(
            partition_key, row_key, properties)

    def insert_or_merge(self, table: str, partition_key: str, row_key: str,
                        properties: Mapping[str, Any]):
        """Upsert, merging into the property bag if the entity exists."""
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.MERGE_ENTITY, partition=partition_key,
            nbytes=self._props_bytes(properties)))
        return self.state.tables.get_table(table).insert_or_merge(
            partition_key, row_key, properties)

    def delete(self, table: str, partition_key: str, row_key: str, *,
               etag: Optional[str] = "*"):
        """``Delete``."""
        t = self.state.tables.get_table(table)
        existing = t.try_get(partition_key, row_key)
        nbytes = existing.size if existing is not None else 0
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.DELETE_ENTITY, partition=partition_key,
            nbytes=nbytes))
        t.delete(partition_key, row_key, etag=etag)

    def execute_batch(self, table: str, operations: Sequence[BatchOperation]):
        """Entity-group transaction: one round trip, atomic."""
        ops = list(operations)
        nbytes = sum(self._props_bytes(op.properties or {}) for op in ops)
        partition = ops[0].partition_key if ops else table
        yield from self._charge(OpDescriptor(
            Service.TABLE, OpKind.BATCH, partition=partition,
            nbytes=nbytes, units=max(1, len(ops))))
        return self.state.tables.get_table(table).execute_batch(ops)


class SimCacheClient(_SimClientBase):
    """Caching-service client (paper II.B; the paper's future-work item)."""

    def create_cache(self, name: str, *, capacity_bytes: int = None,
                     default_ttl: float = None):
        yield from self._charge(OpDescriptor(
            Service.CACHE, OpKind.CREATE_CACHE, partition=name))
        kwargs = {}
        if capacity_bytes is not None:
            kwargs["capacity_bytes"] = capacity_bytes
        if default_ttl is not None:
            kwargs["default_ttl"] = default_ttl
        return self.account.cache_state.create_cache(name, **kwargs)

    def put(self, cache: str, key: str, value, *, ttl: float = None,
            sliding: bool = False):
        content = as_content(value)
        yield from self._charge(OpDescriptor(
            Service.CACHE, OpKind.CACHE_PUT, partition=cache,
            nbytes=content.size))
        return self.account.cache_state.get_cache(cache).put(
            key, content, ttl=ttl, sliding=sliding)

    def get(self, cache: str, key: str):
        """Returns the cached Content or None on miss."""
        c = self.account.cache_state.get_cache(cache)
        # The transfer size of a hit is known server-side; peek it for the
        # cost model without disturbing LRU order or statistics.
        nbytes = 0
        if c.contains(key):
            nbytes = c._items[key].size
        yield from self._charge(OpDescriptor(
            Service.CACHE, OpKind.CACHE_GET, partition=cache, nbytes=nbytes))
        item = c.get(key)
        return item.value if item is not None else None

    def remove(self, cache: str, key: str):
        yield from self._charge(OpDescriptor(
            Service.CACHE, OpKind.CACHE_REMOVE, partition=cache))
        return self.account.cache_state.get_cache(cache).remove(key)
