"""Simulated storage clients: data-plane semantics + fabric timing.

These clients expose the same operations the 2012 Azure SDK offered (the
bold API names in the paper's Algorithms 1-5), implemented as **simkit
process generators**: call them with ``yield from`` inside a process. ::

    def worker(env, account):
        queue = account.queue_client()
        yield from queue.create_queue("tasks")
        yield from queue.put_message("tasks", b"hello")
        msg = yield from queue.get_message("tasks")
        yield from queue.delete_message("tasks", msg.message_id, msg.pop_receipt)

Each call charges the cluster's cost model (latency, server contention,
throttling) and applies the state change when the simulated round trip
completes.

The per-operation method bodies are *not* written here: every class below
is derived from the shared operation registry
(:mod:`repro.pipeline.registry`) via
:func:`repro.pipeline.clients.derive_client_class`, bound to the DES
executor.  The emulator derives its clients from the same table, which is
what keeps the two backends semantically identical.
"""

from __future__ import annotations

from typing import Optional

from ..cluster import OpDescriptor, StorageCluster
from ..cluster.calibration import DEFAULT_CALIBRATION, FabricCalibration
from ..pipeline import OpCall, SimExecutor, derive_client_class, sim_method
from ..simkit import Environment
from ..storage import (
    LIMITS_2012,
    ServiceLimits,
    SimClock,
    StorageAccountState,
)
from ..storage.cache import CacheServiceState

__all__ = [
    "SimStorageAccount",
    "SimBlobClient",
    "SimQueueClient",
    "SimTableClient",
    "SimCacheClient",
]


class SimStorageAccount:
    """A storage account bound to a simulated fabric.

    Owns the backend-agnostic :class:`StorageAccountState` (driven by the
    simulation clock), the :class:`StorageCluster` performance model, and
    the :class:`~repro.pipeline.executors.SimExecutor` that charges every
    operation through the cluster's interceptor pipeline.
    """

    def __init__(self, env: Environment, name: str = "azurebench", *,
                 limits: ServiceLimits = LIMITS_2012,
                 calibration: FabricCalibration = DEFAULT_CALIBRATION,
                 seed: int = 0,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        self.env = env
        self.state = StorageAccountState(
            name, SimClock(env), limits, fifo_jitter_seed=fifo_jitter_seed
        )
        self.cluster = StorageCluster(
            env, limits=limits, calibration=calibration, seed=seed
        )
        #: The co-located caching service (paper II.B; separate billing, so
        #: it lives beside — not inside — the storage account state).
        self.cache_state = CacheServiceState(self.state.clock)
        self.executor = SimExecutor(self.cluster)
        self._op_call = OpCall(
            self.state, self.cache_state,
            now_fn=lambda: env.now,
            plan_fn=lambda: self.cluster.fault_plan,
        )

    @property
    def pipeline(self):
        """The cluster's interceptor stack (see :mod:`repro.pipeline`)."""
        return self.cluster.pipeline

    def blob_client(self) -> "SimBlobClient":
        return SimBlobClient(self)

    def queue_client(self) -> "SimQueueClient":
        return SimQueueClient(self)

    def table_client(self) -> "SimTableClient":
        return SimTableClient(self)

    def cache_client(self) -> "SimCacheClient":
        return SimCacheClient(self)


class _SimClientBase:
    """Plumbing every derived sim client shares."""

    def __init__(self, account: SimStorageAccount) -> None:
        self.account = account
        self.env = account.env
        self.cluster = account.cluster
        self.state = account.state
        self._executor = account.executor
        self._call = account._op_call

    def _charge(self, op: OpDescriptor):
        """Charge one descriptor on the fabric (back-compat helper)."""
        yield from self._executor.charge(op)


SimBlobClient = derive_client_class(
    "SimBlobClient", "blob", _SimClientBase, method_factory=sim_method,
    doc="""Blob service client (paper Algorithm 1/5 API surface).

    Derived from the operation registry; every method is a simkit
    generator — call with ``yield from``.
    """,
)

SimQueueClient = derive_client_class(
    "SimQueueClient", "queue", _SimClientBase, method_factory=sim_method,
    doc="""Queue service client (paper Algorithms 2-4 API surface).

    Derived from the operation registry; every method is a simkit
    generator — call with ``yield from``.
    """,
)

SimTableClient = derive_client_class(
    "SimTableClient", "table", _SimClientBase, method_factory=sim_method,
    doc="""Table service client (paper section IV.C API surface).

    Derived from the operation registry; every method is a simkit
    generator — call with ``yield from``.
    """,
)

SimCacheClient = derive_client_class(
    "SimCacheClient", "cache", _SimClientBase, method_factory=sim_method,
    doc="""Caching service client (paper II.B; billed separately).

    Derived from the operation registry; every method is a simkit
    generator — call with ``yield from``.
    """,
)
