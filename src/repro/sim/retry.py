"""Back-off-and-retry helper for throttled operations.

The paper (IV.C): "when we run into such exceptions, the worker sleeps for
a second before retrying the same operation."
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..simkit import Environment
from ..storage.errors import ServerBusyError

__all__ = ["retrying"]


def retrying(env: Environment, op_factory: Callable[[], Iterator], *,
             max_retries: Optional[int] = None,
             on_retry: Optional[Callable[[int, ServerBusyError], None]] = None):
    """Run a client-op generator, sleeping and retrying on ServerBusy.

    ``op_factory`` must build a *fresh* generator per attempt (generators are
    single-use).  Usage::

        result = yield from retrying(env, lambda: table.insert(...))

    ``max_retries=None`` retries forever (the paper's behaviour);
    ``on_retry(attempt, exc)`` is invoked before each back-off sleep.
    """
    attempt = 0
    while True:
        try:
            result = yield from op_factory()
            return result
        except ServerBusyError as exc:
            attempt += 1
            if max_retries is not None and attempt > max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            yield env.timeout(exc.retry_after)
