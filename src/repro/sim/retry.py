"""Back-off-and-retry helper for throttled operations.

The paper (IV.C): "when we run into such exceptions, the worker sleeps for
a second before retrying the same operation."  That remains the default:
with no arguments beyond the op, :func:`retrying` sleeps each error's
``retry_after`` hint (1 s) and retries forever.

The policy layer (:mod:`repro.resilience`) generalizes it: pass a
``policy`` to change the back-off schedule (exponential jitter, retry
budgets), a ``deadline`` so a permanent outage cannot spin forever, and a
``breaker`` to fail fast while a dependency is down.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Union

from ..resilience import CircuitBreaker, Deadline, FixedBackoff, RetryPolicy
from ..simkit import Environment
from ..storage.errors import RETRYABLE_ERRORS

__all__ = ["retrying"]


def retrying(env: Environment, op_factory: Callable[[], Iterator], *,
             max_retries: Optional[int] = None,
             on_retry: Optional[Callable[[int, Exception], None]] = None,
             policy: Optional[RetryPolicy] = None,
             deadline: Optional[Union[float, Deadline]] = None,
             breaker: Optional[CircuitBreaker] = None):
    """Run a client-op generator, backing off and retrying on failure.

    ``op_factory`` must build a *fresh* generator per attempt (generators
    are single-use).  Usage::

        result = yield from retrying(env, lambda: table.insert(...))

    Retryable errors are :data:`repro.storage.errors.RETRYABLE_ERRORS`
    (ServerBusy 503s plus the transient 500s the fault engine injects).

    * ``max_retries=None`` retries forever (the paper's behaviour).
    * ``on_retry(attempt, exc)`` is invoked before each back-off sleep;
      ``attempt`` counts retryable failures so far, starting at 1.
    * ``policy`` supplies the back-off delay (default: the paper-faithful
      :class:`~repro.resilience.FixedBackoff`, honouring each error's
      ``retry_after`` hint).  A policy may give up (e.g. an exhausted
      :class:`~repro.resilience.RetryBudget`), re-raising the error.
    * ``deadline`` bounds cumulative time: a float is a budget in
      simulated seconds from the first attempt; a
      :class:`~repro.resilience.Deadline` is an absolute give-up time
      (pass the same object through nested calls to propagate it).  Once
      expired — or if the next sleep would outlive it — the error is
      re-raised instead of retried.
    * ``breaker`` short-circuits attempts while its circuit is open
      (raises :class:`~repro.resilience.CircuitOpenError`).
    """
    if policy is None:
        policy = FixedBackoff()
    stats = policy.stats
    start = env.now
    if isinstance(deadline, (int, float)):
        deadline = Deadline(start + float(deadline))
    attempt = 0
    while True:
        if breaker is not None:
            breaker.before_attempt(env.now)
        stats.attempts += 1
        try:
            result = yield from op_factory()
        except RETRYABLE_ERRORS as exc:
            if breaker is not None:
                breaker.record_failure(env.now)
            attempt += 1
            if max_retries is not None and attempt > max_retries:
                stats.giveups += 1
                raise
            delay = policy.backoff(attempt, exc, now=env.now)
            if delay is None:  # the policy gave up (e.g. budget exhausted)
                stats.giveups += 1
                raise
            if deadline is not None and not deadline.allows_sleep(env.now, delay):
                stats.giveups += 1
                raise
            stats.retries += 1
            stats.total_backoff += delay
            if on_retry is not None:
                on_retry(attempt, exc)
            yield env.timeout(delay)
        else:
            if breaker is not None:
                breaker.record_success(env.now)
            stats.successes += 1
            return result
