"""A small, deterministic discrete-event simulation kernel.

``repro.simkit`` provides the event loop the AzureBench substrate runs on.
It follows the SimPy programming model (generator-based processes yielding
events) but is implemented from scratch so the reproduction has no
third-party simulation dependency.

Public surface::

    from repro.simkit import Environment, Interrupt, Resource, Store

    env = Environment()

    def client(env, server):
        with server.request() as req:
            yield req
            yield env.timeout(1.0)   # service time

    server = Resource(env, capacity=2)
    for _ in range(10):
        env.process(client(env, server))
    env.run()
"""

from .environment import Environment
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    NORMAL,
    PENDING,
    Timeout,
    URGENT,
)
from .exceptions import EmptySchedule, Interrupt, SimkitError, StopProcess
from .monitor import Tally, TimeSeries, UtilizationMonitor
from .process import Process, ProcessGenerator
from .resources import (
    Container,
    FilterStore,
    Preempted,
    PreemptiveResource,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
)

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "PENDING",
    "URGENT",
    "NORMAL",
    "Process",
    "ProcessGenerator",
    "Interrupt",
    "SimkitError",
    "StopProcess",
    "EmptySchedule",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Preempted",
    "Request",
    "PriorityRequest",
    "Release",
    "Container",
    "Store",
    "FilterStore",
    "Tally",
    "TimeSeries",
    "UtilizationMonitor",
]
