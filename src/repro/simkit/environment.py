"""Simulation environment (event loop and clock) for :mod:`repro.simkit`."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, NORMAL, Timeout
from .exceptions import EmptySchedule
from .process import Process, ProcessGenerator

__all__ = ["Environment"]


class Environment:
    """A discrete-event simulation environment.

    The environment owns the simulation clock (:attr:`now`) and the event
    queue.  Events scheduled at the same time are processed in (priority,
    insertion-order); this makes runs fully deterministic given the same
    sequence of scheduling operations.

    Example::

        env = Environment()

        def worker(env):
            yield env.timeout(3)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 3 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None
        #: Optional hook ``f(time, event)`` invoked as each event is
        #: processed — tracing/debugging only, must not mutate the schedule.
        self.tracer = None
        self.events_processed = 0

    # -- clock & scheduling --------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Queue ``event`` to be processed after ``delay`` time units.

        ``delay`` must not be negative: an event scheduled before ``now``
        would make the clock run backwards for its callbacks.  The check
        matters most after ``run(until=t)`` — the clock is advanced exactly
        to ``t`` on return, so a caller that computed a delay from a stale
        absolute timestamp would otherwise silently corrupt event order.
        """
        if delay < 0:
            raise ValueError(
                f"cannot schedule {event!r} at t={self._now + delay:g}, "
                f"which is {-delay:g} time units before now "
                f"({self._now:g}); events must not be scheduled in the "
                f"past (typical cause: a delay computed from an absolute "
                f"timestamp that went stale when run(until=...) advanced "
                f"the clock)")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events remain.  Re-raises the
        exception of a failed event that nobody defused (i.e. no process or
        condition took delivery of the failure).
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        self.events_processed += 1
        if self.tracer is not None:
            self.tracer(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(exc)  # pragma: no cover - defensive

    @staticmethod
    def _reraise(event: Event) -> None:
        """Surface an undefused failure (cold path of the inlined loops)."""
        exc = event._value
        if isinstance(exc, BaseException):
            raise exc
        raise RuntimeError(exc)  # pragma: no cover - defensive

    def run(self, until: Any = None) -> Any:
        """Run until the queue empties, time ``until`` passes, or an event fires.

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches it (the clock is
          set exactly to ``until`` on return).
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (re-raising its exception on failure).

        The loops below inline :meth:`step` for the no-tracer case: one
        method call, one try/except, and one counter store per event are
        measurable at millions of events per run.  Event semantics are
        identical to calling :meth:`step` in a loop (``tests/simkit`` and
        the pinned golden trace digest hold either way); when a tracer is
        installed the loops delegate to :meth:`step` so the hook sees
        every event.
        """
        queue = self._queue
        pop = heapq.heappop
        processed = 0

        if until is None:
            try:
                while queue:
                    if self.tracer is not None:
                        self.events_processed += processed
                        processed = 0
                        self.step()
                        continue
                    self._now, _, _, event = pop(queue)
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        self._reraise(event)
            finally:
                self.events_processed += processed
            return None

        if isinstance(until, Event):
            if until.callbacks is None:
                # Already processed.
                if until._ok:
                    return until._value
                raise until._value
            stop: List[Event] = []
            until.callbacks.append(stop.append)
            try:
                while not stop:
                    if self.tracer is not None:
                        self.events_processed += processed
                        processed = 0
                        try:
                            self.step()
                        except EmptySchedule:
                            raise RuntimeError(
                                f"no scheduled events left but {until!r} "
                                f"was not triggered") from None
                        continue
                    if not queue:
                        raise RuntimeError(
                            f"no scheduled events left but {until!r} was "
                            f"not triggered")
                    self._now, _, _, event = pop(queue)
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        self._reraise(event)
            finally:
                self.events_processed += processed
            if until._ok:
                return until._value
            # The stop callback took delivery of the failure.
            until._defused = True
            raise until._value

        # Numeric horizon.
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until ({horizon}) must not be before now ({self._now})")
        try:
            while queue and queue[0][0] <= horizon:
                if self.tracer is not None:
                    self.events_processed += processed
                    processed = 0
                    self.step()
                    continue
                self._now, _, _, event = pop(queue)
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    self._reraise(event)
        finally:
            self.events_processed += processed
        self._now = horizon
        return None

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now.

        Fast path for the kernel's dominant allocation: the object is
        built field-by-field and pushed on the heap directly, skipping
        the ``Timeout.__init__`` -> ``Event.__init__`` -> ``schedule``
        call chain (three Python frames per storage round-trip leg).
        Behaviour is identical to ``Timeout(self, delay, value)``.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event._delay = delay
        heapq.heappush(
            self._queue, (self._now + delay, NORMAL, next(self._eid), event)
        )
        return event

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Environment now={self._now} queued={len(self._queue)}>"
