"""Simulation environment (event loop and clock) for :mod:`repro.simkit`."""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, NORMAL, Timeout, URGENT
from .exceptions import EmptySchedule
from .process import Process, ProcessGenerator

__all__ = ["Environment", "SCHEDULERS"]

#: Event-queue implementations ``Environment(scheduler=...)`` accepts.
SCHEDULERS = ("heap", "calendar")


class Environment:
    """A discrete-event simulation environment.

    The environment owns the simulation clock (:attr:`now`) and the event
    queue.  Events scheduled at the same time are processed in (priority,
    insertion-order); this makes runs fully deterministic given the same
    sequence of scheduling operations.

    Two event-queue implementations are available via ``scheduler``:

    * ``"heap"`` (default) — a single binary heap of ``(time, priority,
      seq, event)`` tuples; the reference implementation.
    * ``"calendar"`` — a calendar queue: per-timestamp FIFO buckets
      (one deque per distinct time and priority class) plus a small heap
      of distinct times.  Under the kernel's dominant traffic — many
      events sharing the same instant — enqueue and dequeue are O(1)
      amortized instead of O(log n), roughly doubling events/sec (see
      ``docs/performance.md``).  Event pop order is **identical** to the
      heap: a deque preserves insertion (seq) order and urgent events
      drain before normal events at the same time, which is exactly the
      ``(time, priority, seq)`` ordering.  The only restriction is that
      ``schedule`` accepts the kernel's two priority classes
      (:data:`~repro.simkit.events.URGENT` /
      :data:`~repro.simkit.events.NORMAL`) rather than arbitrary ints.

    Example::

        env = Environment()

        def worker(env):
            yield env.timeout(3)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 3 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0,
                 scheduler: str = "heap") -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose from "
                f"{', '.join(SCHEDULERS)}")
        self._now = float(initial_time)
        self.scheduler = scheduler
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None
        #: Optional hook ``f(time, event)`` invoked as each event is
        #: processed — tracing/debugging only, must not mutate the schedule.
        self.tracer = None
        self.events_processed = 0
        if scheduler == "calendar":
            #: time -> FIFO deque of NORMAL events at that instant.
            self._buckets: Dict[float, Deque[Event]] = {}
            #: time -> FIFO deque of URGENT events at that instant.
            self._urgent: Dict[float, Deque[Event]] = {}
            #: Min-heap of (possibly stale/duplicate) distinct times.
            self._times: List[float] = []
            # Bound-method dispatch: shadowing the class methods on the
            # instance avoids a per-event scheduler branch on the hot
            # paths (the instance dict wins attribute lookup).
            self.schedule = self._cal_schedule
            self.timeout = self._cal_timeout
            self.step = self._cal_step
            self.peek = self._cal_peek
            self.run = self._cal_run

    # -- clock & scheduling --------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Queue ``event`` to be processed after ``delay`` time units.

        ``delay`` must not be negative: an event scheduled before ``now``
        would make the clock run backwards for its callbacks.  The check
        matters most after ``run(until=t)`` — the clock is advanced exactly
        to ``t`` on return, so a caller that computed a delay from a stale
        absolute timestamp would otherwise silently corrupt event order.
        """
        if delay < 0:
            raise ValueError(
                f"cannot schedule {event!r} at t={self._now + delay:g}, "
                f"which is {-delay:g} time units before now "
                f"({self._now:g}); events must not be scheduled in the "
                f"past (typical cause: a delay computed from an absolute "
                f"timestamp that went stale when run(until=...) advanced "
                f"the clock)")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events remain.  Re-raises the
        exception of a failed event that nobody defused (i.e. no process or
        condition took delivery of the failure).
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        self.events_processed += 1
        if self.tracer is not None:
            self.tracer(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(exc)  # pragma: no cover - defensive

    @staticmethod
    def _reraise(event: Event) -> None:
        """Surface an undefused failure (cold path of the inlined loops)."""
        exc = event._value
        if isinstance(exc, BaseException):
            raise exc
        raise RuntimeError(exc)  # pragma: no cover - defensive

    def run(self, until: Any = None) -> Any:
        """Run until the queue empties, time ``until`` passes, or an event fires.

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches it (the clock is
          set exactly to ``until`` on return).
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (re-raising its exception on failure).

        The loops below inline :meth:`step`: one method call, one
        try/except, and one counter store per event are measurable at
        millions of events per run.  Event semantics are identical to
        calling :meth:`step` in a loop (``tests/simkit`` and the pinned
        golden trace digest hold either way); a tracer, when installed,
        is invoked inline on the same shared loop — traced runs pay one
        extra call per event, never a fallback to per-event ``step``.
        """
        queue = self._queue
        pop = heapq.heappop
        processed = 0

        if until is None:
            try:
                while queue:
                    self._now, _, _, event = pop(queue)
                    processed += 1
                    if self.tracer is not None:
                        self.tracer(self._now, event)
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        self._reraise(event)
            finally:
                self.events_processed += processed
            return None

        if isinstance(until, Event):
            if until.callbacks is None:
                # Already processed.
                if until._ok:
                    return until._value
                raise until._value
            stop: List[Event] = []
            until.callbacks.append(stop.append)
            try:
                while not stop:
                    if not queue:
                        raise RuntimeError(
                            f"no scheduled events left but {until!r} was "
                            f"not triggered")
                    self._now, _, _, event = pop(queue)
                    processed += 1
                    if self.tracer is not None:
                        self.tracer(self._now, event)
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        self._reraise(event)
            finally:
                self.events_processed += processed
            if until._ok:
                return until._value
            # The stop callback took delivery of the failure.
            until._defused = True
            raise until._value

        # Numeric horizon.
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until ({horizon}) must not be before now ({self._now})")
        try:
            while queue and queue[0][0] <= horizon:
                self._now, _, _, event = pop(queue)
                processed += 1
                if self.tracer is not None:
                    self.tracer(self._now, event)
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    self._reraise(event)
        finally:
            self.events_processed += processed
        self._now = horizon
        return None

    # -- calendar-queue scheduler --------------------------------------------
    # Same observable semantics as the heap methods above; structured as
    # per-timestamp FIFO buckets so same-instant traffic never touches the
    # heap.  ``_times`` may hold duplicate/stale entries (cheaper to skip
    # lazily than to keep exact); a time is live while either table still
    # has a deque for it.

    def _cal_schedule(self, event: Event, priority: int = NORMAL,
                      delay: float = 0.0) -> None:
        """Calendar-queue :meth:`schedule` (bound as ``self.schedule``)."""
        if delay < 0:
            raise ValueError(
                f"cannot schedule {event!r} at t={self._now + delay:g}, "
                f"which is {-delay:g} time units before now "
                f"({self._now:g}); events must not be scheduled in the "
                f"past (typical cause: a delay computed from an absolute "
                f"timestamp that went stale when run(until=...) advanced "
                f"the clock)")
        if priority == NORMAL:
            table = self._buckets
        elif priority == URGENT:
            table = self._urgent
        else:
            raise ValueError(
                f"calendar scheduler orders the kernel's two priority "
                f"classes (URGENT={URGENT}, NORMAL={NORMAL}); got "
                f"{priority!r} — use scheduler='heap' for arbitrary "
                f"priorities")
        t = self._now + delay
        try:
            table[t].append(event)
        except KeyError:
            table[t] = deque((event,))
            heapq.heappush(self._times, t)

    def _cal_timeout(self, delay: float, value: Any = None) -> Timeout:
        """Calendar-queue :meth:`timeout` (bound as ``self.timeout``)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event._delay = delay
        t = self._now + delay
        buckets = self._buckets
        try:
            buckets[t].append(event)
        except KeyError:
            buckets[t] = deque((event,))
            heapq.heappush(self._times, t)
        return event

    def _cal_peek(self) -> float:
        """Calendar-queue :meth:`peek` (bound as ``self.peek``).

        Skips (and retires) stale heap entries and empty buckets left by
        an interrupted ``run(until=event)``.
        """
        times = self._times
        buckets = self._buckets
        urgent = self._urgent
        while times:
            t = times[0]
            u = urgent.get(t)
            if u is not None:
                if u:
                    return t
                del urgent[t]
            d = buckets.get(t)
            if d is not None:
                if d:
                    return t
                del buckets[t]
            heapq.heappop(times)
        return float("inf")

    def _cal_step(self) -> None:
        """Calendar-queue :meth:`step` (bound as ``self.step``)."""
        times = self._times
        buckets = self._buckets
        urgent = self._urgent
        while times:
            t = times[0]
            u = urgent.get(t)
            if u is not None:
                if u:
                    event = u.popleft()
                    if not u:
                        del urgent[t]
                    break
                del urgent[t]
            d = buckets.get(t)
            if d is not None:
                if d:
                    event = d.popleft()
                    if not d:
                        del buckets[t]
                    break
                del buckets[t]
            heapq.heappop(times)
        else:
            raise EmptySchedule()

        self._now = t
        self.events_processed += 1
        if self.tracer is not None:
            self.tracer(t, event)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(exc)  # pragma: no cover - defensive

    def _cal_run(self, until: Any = None) -> Any:
        """Calendar-queue :meth:`run` (bound as ``self.run``).

        Each distinct time is drained as one bucket: the clock store and
        the tracer load are hoisted out of the per-event loop (a tracer
        installed *mid-bucket* by a callback therefore first sees the
        next bucket).  Urgent events are re-checked between normal
        events, so an urgent event scheduled at ``now`` by a callback
        still jumps ahead of the remaining normal events at that instant
        — the heap's ``(time, priority, seq)`` order exactly.
        """
        buckets = self._buckets
        urgent = self._urgent
        times = self._times
        pop_time = heapq.heappop
        processed = 0

        if until is None:
            try:
                while times:
                    t = times[0]
                    d = buckets.get(t)
                    if d is None and not (urgent and t in urgent):
                        pop_time(times)  # stale or duplicate entry
                        continue
                    self._now = t
                    tracer = self.tracer
                    while True:
                        if urgent:
                            u = urgent.get(t)
                            if u is not None:
                                while u:
                                    event = u.popleft()
                                    processed += 1
                                    if tracer is not None:
                                        tracer(t, event)
                                    callbacks, event.callbacks = \
                                        event.callbacks, None
                                    for callback in callbacks:
                                        callback(event)
                                    if not event._ok and not event._defused:
                                        self._reraise(event)
                                del urgent[t]
                        if not d:
                            if urgent and t in urgent:
                                continue
                            break
                        event = d.popleft()
                        processed += 1
                        if tracer is not None:
                            tracer(t, event)
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            self._reraise(event)
                    if d is not None:
                        del buckets[t]
                    pop_time(times)
            finally:
                self.events_processed += processed
            return None

        if isinstance(until, Event):
            if until.callbacks is None:
                # Already processed.
                if until._ok:
                    return until._value
                raise until._value
            stop: List[Event] = []
            until.callbacks.append(stop.append)
            try:
                while not stop:
                    if not times:
                        raise RuntimeError(
                            f"no scheduled events left but {until!r} was "
                            f"not triggered")
                    t = times[0]
                    d = buckets.get(t)
                    if d is None and not (urgent and t in urgent):
                        pop_time(times)
                        continue
                    self._now = t
                    tracer = self.tracer
                    while True:
                        if urgent:
                            u = urgent.get(t)
                            if u is not None:
                                while u:
                                    event = u.popleft()
                                    processed += 1
                                    if tracer is not None:
                                        tracer(t, event)
                                    callbacks, event.callbacks = \
                                        event.callbacks, None
                                    for callback in callbacks:
                                        callback(event)
                                    if not event._ok and not event._defused:
                                        self._reraise(event)
                                    if stop:
                                        break
                                if not u:
                                    del urgent[t]
                        if stop:
                            break
                        if not d:
                            if urgent and t in urgent:
                                continue
                            break
                        event = d.popleft()
                        processed += 1
                        if tracer is not None:
                            tracer(t, event)
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            self._reraise(event)
                        if stop:
                            break
                    if stop:
                        # Mid-bucket exit: remaining events stay queued
                        # (possibly as an empty deque — peek/step/run all
                        # retire those lazily).
                        break
                    if d is not None:
                        del buckets[t]
                    pop_time(times)
            finally:
                self.events_processed += processed
            if until._ok:
                return until._value
            # The stop callback took delivery of the failure.
            until._defused = True
            raise until._value

        # Numeric horizon.
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until ({horizon}) must not be before now ({self._now})")
        try:
            while times:
                t = times[0]
                if t > horizon:
                    break
                d = buckets.get(t)
                if d is None and not (urgent and t in urgent):
                    pop_time(times)
                    continue
                self._now = t
                tracer = self.tracer
                while True:
                    if urgent:
                        u = urgent.get(t)
                        if u is not None:
                            while u:
                                event = u.popleft()
                                processed += 1
                                if tracer is not None:
                                    tracer(t, event)
                                callbacks, event.callbacks = \
                                    event.callbacks, None
                                for callback in callbacks:
                                    callback(event)
                                if not event._ok and not event._defused:
                                    self._reraise(event)
                            del urgent[t]
                    if not d:
                        if urgent and t in urgent:
                            continue
                        break
                    event = d.popleft()
                    processed += 1
                    if tracer is not None:
                        tracer(t, event)
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        self._reraise(event)
                if d is not None:
                    del buckets[t]
                pop_time(times)
        finally:
            self.events_processed += processed
        self._now = horizon
        return None

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now.

        Fast path for the kernel's dominant allocation: the object is
        built field-by-field and pushed on the heap directly, skipping
        the ``Timeout.__init__`` -> ``Event.__init__`` -> ``schedule``
        call chain (three Python frames per storage round-trip leg).
        Behaviour is identical to ``Timeout(self, delay, value)``.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event._delay = delay
        heapq.heappush(
            self._queue, (self._now + delay, NORMAL, next(self._eid), event)
        )
        return event

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.scheduler == "calendar":
            queued = (sum(map(len, self._buckets.values()))
                      + sum(map(len, self._urgent.values())))
        else:
            queued = len(self._queue)
        return f"<Environment now={self._now} queued={queued}>"
