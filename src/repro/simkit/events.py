"""Event types for the :mod:`repro.simkit` discrete-event kernel.

The kernel follows the classic SimPy event model: an :class:`Event` is a
one-shot future scheduled on an :class:`~repro.simkit.environment.Environment`.
Processes (generators) yield events to suspend until the event fires.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from .exceptions import SimkitError

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
]


class _Pending:
    """Sentinel marking an event whose value has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Sentinel value of untriggered events.
PENDING = _Pending()

#: Scheduling priority for events that must run before ordinary events at the
#: same simulation time (e.g. process resumption after an interrupt).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it, scheduling its callbacks to run at the current simulation
    time.  Once the callbacks have run the event is *processed*.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env) -> None:
        self.env = env
        #: Callbacks ``f(event)`` invoked when the event is processed.  Set to
        #: ``None`` once processed; appending afterwards is an error.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state -------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or will be) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception instance if it failed)."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure has been handled by some waiter."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering --------------------------------------------------------
    def trigger(self, event: "Event") -> None:
        """Trigger with the state (ok/value) of another event.

        Used as a callback to chain events together.
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception is re-raised in every process waiting on the event; if
        nobody waits (and nobody defuses it) the environment re-raises it out
        of :meth:`Environment.step` to avoid silently swallowed errors.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} object at {id(self):#x} [{state}]>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("_delay",)

    def __init__(self, env, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeout({self._delay}) object at {id(self):#x}>"


class ConditionValue:
    """Result of a :class:`Condition` — an ordered event → value mapping.

    Only contains events that actually triggered.  Behaves like a read-only
    dict keyed by the original event objects; :meth:`todict` produces a plain
    dictionary.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (e._value for e in self.events)

    def items(self):
        return ((e, e._value) for e in self.events)

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """An event that triggers when ``evaluate(events, n_done)`` is true.

    Fails as soon as any constituent event fails.  Nested conditions are
    flattened into the :class:`ConditionValue`.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate: Callable[[List[Event], int], bool],
                 events: Iterable[Event]) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        if not self._events:
            # Trivially met (AllOf([]) succeeds, AnyOf([]) succeeds too by
            # the any_events predicate below).
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments cannot be mixed")

        # _build_value must run before any waiter's callback, so register it
        # first: it swaps the placeholder value for the populated
        # ConditionValue once the condition fires.
        self.callbacks.append(self._build_value)

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _build_value(self, event: Event) -> None:
        """Populate the condition value once all interesting events fired."""
        self._remove_check_callbacks()
        if event._ok:
            cond_value = ConditionValue()
            self._populate_value(cond_value)
            self._value = cond_value

    def _remove_check_callbacks(self) -> None:
        for event in self._events:
            if event.callbacks is not None and self._check in event.callbacks:
                event.callbacks.remove(self._check)
            if isinstance(event, Condition):
                event._remove_check_callbacks()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Propagate failure; mark the constituent as defused because this
            # condition takes responsibility for the exception.
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(None)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that fires once *all* of ``events`` have fired."""

    def __init__(self, env, events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once *any* of ``events`` has fired."""

    def __init__(self, env, events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
