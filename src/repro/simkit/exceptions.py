"""Exceptions used by the :mod:`repro.simkit` discrete-event kernel."""

from __future__ import annotations


class SimkitError(Exception):
    """Base class for all simkit errors."""


class EmptySchedule(SimkitError):
    """Raised by :meth:`Environment.step` when no more events are queued."""


class StopProcess(SimkitError):
    """Raised internally to terminate a process early with a return value."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(SimkitError):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the process was interrupted (e.g. a preempting request, a simulated
    machine failure).
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The cause passed to :meth:`Process.interrupt`, or ``None``."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
