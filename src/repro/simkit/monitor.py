"""Lightweight measurement helpers for simulations.

These utilities collect time-stamped samples inside a simulation run and
aggregate them into the statistics the benchmark harness reports.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["TimeSeries", "Tally", "UtilizationMonitor"]


class TimeSeries:
    """An append-only series of ``(time, value)`` samples.

    A plain ``__slots__`` class (not a dataclass): sweeps allocate one
    per measured signal and samples arrive on the hot path.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "",
                 times: Optional[List[float]] = None,
                 values: Optional[List[float]] = None) -> None:
        self.name = name
        self.times: List[float] = [] if times is None else times
        self.values: List[float] = [] if values is None else values

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeSeries(name={self.name!r}, n={len(self.times)})"

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Tuple[float, float]:
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        return self.times[-1], self.values[-1]

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean of the piecewise-constant signal defined by the samples."""
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        end = self.times[-1] if until is None else until
        total = 0.0
        span = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else end
            dt = max(0.0, t_next - t)
            total += v * dt
            span += dt
        if span == 0.0:
            return self.values[-1]
        return total / span


class Tally:
    """Streaming summary statistics (count/mean/variance/min/max).

    Uses Welford's online algorithm, so it is stable for long runs.
    """

    __slots__ = ("name", "_n", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def record(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError(f"tally {self.name!r} is empty")
        return self._mean

    @property
    def variance(self) -> float:
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self._n == 0:
            raise ValueError(f"tally {self.name!r} is empty")
        return self._min

    @property
    def max(self) -> float:
        if self._n == 0:
            raise ValueError(f"tally {self.name!r} is empty")
        return self._max

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._n == 0:
            return f"<Tally {self.name!r} empty>"
        return f"<Tally {self.name!r} n={self._n} mean={self._mean:.6g}>"


class UtilizationMonitor:
    """Tracks busy time of a server-like entity between mark calls."""

    __slots__ = ("env", "_busy_since", "_busy_total", "_created")

    def __init__(self, env) -> None:
        self.env = env
        self._busy_since: Optional[float] = None
        self._busy_total = 0.0
        self._created = env.now

    def mark_busy(self) -> None:
        if self._busy_since is None:
            self._busy_since = self.env.now

    def mark_idle(self) -> None:
        if self._busy_since is not None:
            self._busy_total += self.env.now - self._busy_since
            self._busy_since = None

    @property
    def busy_time(self) -> float:
        extra = 0.0
        if self._busy_since is not None:
            extra = self.env.now - self._busy_since
        return self._busy_total + extra

    @property
    def utilization(self) -> float:
        elapsed = self.env.now - self._created
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed
