"""Process abstraction for the :mod:`repro.simkit` kernel.

A *process* wraps a Python generator.  The generator yields events; the
process suspends until the yielded event fires and is resumed with the
event's value (or the event's exception thrown into it).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .events import Event, PENDING, URGENT
from .exceptions import Interrupt, StopProcess

__all__ = ["Process", "ProcessGenerator"]

ProcessGenerator = Generator[Event, Any, Any]


class _Initialize(Event):
    """Immediate event that starts the execution of a process.

    Built field-by-field by :class:`Process` (the kernel's per-process
    fast path, mirroring ``Environment.timeout``), so it defines no
    constructor of its own.
    """

    __slots__ = ()


class _Interruption(Event):
    """Immediate event that throws an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process._value is not PENDING:
            raise RuntimeError(f"{process!r} has terminated and cannot be interrupted")
        if process is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env.schedule(self, priority=URGENT)
        self.callbacks.append(self._interrupt)

    def _interrupt(self, event: Event) -> None:
        if self.process._value is not PENDING:
            # The process terminated between scheduling and delivery.
            return
        # Unsubscribe the process from the event it currently waits on; it
        # will re-subscribe if it yields that event again.
        target = self.process._target
        if target is not None and target.callbacks is not None:
            if self.process._resume in target.callbacks:
                target.callbacks.remove(self.process._resume)
        self.process._resume(self)


class Process(Event):
    """An event-yielding coroutine executing on an environment.

    The process itself is an event that triggers when the generator returns
    (successfully, with the generator's return value) or raises (failed with
    that exception).
    """

    __slots__ = ("_generator", "_target", "name", "_resume", "_send")

    def __init__(self, env, generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Pre-bound hot-path callables: the resume callback is appended to
        # an event's callback list on every suspension and ``send`` is
        # called on every resumption, so binding them per use would
        # allocate a method object per event.
        resume = self._resume = self._do_resume
        self._send = generator.send
        init = _Initialize.__new__(_Initialize)
        init.env = env
        init.callbacks = [resume]
        init._value = None
        init._ok = True
        init._defused = False
        env.schedule(init, URGENT)
        self._target: Optional[Event] = init
        self.name = name or getattr(generator, "__name__", "process")

    @property
    def target(self) -> Optional[Event]:
        """The event the process currently waits for, if suspended."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True until the generator has terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        _Interruption(self, cause)

    def _do_resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``.

        Reached through the pre-bound ``self._resume`` alias the
        constructor installs (see there).
        """
        env = self.env
        env._active_proc = self
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._send(event._value)
                else:
                    # The waited-on event failed: throw its exception into the
                    # generator.  Mark it defused: the process took delivery.
                    event._defused = True
                    exc = event._value
                    if isinstance(exc, BaseException):
                        next_event = self._generator.throw(exc)
                    else:  # pragma: no cover - defensive
                        next_event = self._generator.throw(RuntimeError(exc))
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except StopProcess as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self._defused = False
                env.schedule(self)
                break

            try:
                # One attribute load doubles as the is-it-an-Event check:
                # only events carry ``callbacks``.
                callbacks = next_event.callbacks
            except AttributeError:
                gen = self._generator
                self._generator.close()
                self._ok = False
                self._value = RuntimeError(
                    f"{gen!r} yielded {next_event!r}, expected an Event"
                )
                self._defused = False
                env.schedule(self)
                break

            if callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: continue immediately with its value.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.is_alive else "dead"
        return f"<Process({self.name}) object at {id(self):#x} [{state}]>"
