"""Shared-resource primitives for :mod:`repro.simkit`.

Three classic primitives, mirroring SimPy's semantics:

* :class:`Resource` — a semaphore with ``capacity`` slots and a FIFO (or
  priority) wait queue.  Models servers, NICs, connection pools.
* :class:`Container` — a continuous quantity (tokens, bytes of budget).
* :class:`Store` — a queue of discrete Python objects.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, List, Optional

from .events import Event

__all__ = [
    "Request",
    "Release",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "PreemptiveResource",
    "Preempted",
    "Container",
    "Store",
    "FilterStore",
]


class Request(Event):
    """Request event for one slot of a :class:`Resource`.

    Usable as a context manager: the slot is released on exit. ::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "proc")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc = self.env.active_process
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot if granted, or withdraw from the wait queue."""
        self.resource.release(self)


class Release(Event):
    """Immediate event confirming the release of a request's slot."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.request = request
        resource._do_release(self)
        self.succeed()


class Resource:
    """A semaphore with ``capacity`` slots and a FIFO wait queue."""

    __slots__ = ("env", "_capacity", "users", "queue")

    request_cls = Request

    def __init__(self, env, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        #: Requests currently holding a slot.
        self.users: List[Request] = []
        #: Requests waiting for a slot, in grant order.
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request a slot; the returned event fires once granted."""
        return self.request_cls(self)

    def release(self, request: Request) -> Release:
        """Release the slot held by ``request`` (or cancel a pending one)."""
        return Release(self, request)

    # -- internal ------------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _do_release(self, release: Release) -> None:
        request = release.request
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif request in self.queue:
            self.queue.remove(request)
        # Releasing an unknown/already-released request is a no-op, which
        # makes the context-manager protocol safe to nest with explicit
        # releases.

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.pop(0)
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} capacity={self._capacity} "
                f"count={self.count} queued={len(self.queue)}>")


class PriorityRequest(Request):
    """Request with a ``priority`` (lower first) and FIFO tie-breaking."""

    __slots__ = ("priority", "time", "key")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self.time = resource.env.now
        self.key = (priority, next(resource._tiebreak))
        super().__init__(resource)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by request priority."""

    __slots__ = ("_tiebreak",)

    request_cls = PriorityRequest

    def __init__(self, env, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._tiebreak = count()

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)
            self.queue.sort(key=lambda r: r.key)  # type: ignore[attr-defined]


class Preempted:
    """Cause attached to the Interrupt a preempted process receives."""

    __slots__ = ("by", "usage_since")

    def __init__(self, by, usage_since: float) -> None:
        #: The request that preempted us.
        self.by = by
        #: Simulation time at which the victim acquired the slot.
        self.usage_since = usage_since

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Preempted(by={self.by!r}, usage_since={self.usage_since})"


class PreemptiveRequest(PriorityRequest):
    """Priority request that may evict a lower-priority slot holder."""

    __slots__ = ("preempt",)

    def __init__(self, resource: "PreemptiveResource", priority: int = 0,
                 preempt: bool = True) -> None:
        self.preempt = preempt
        super().__init__(resource, priority)


class PreemptiveResource(PriorityResource):
    """A :class:`PriorityResource` whose requests may preempt users.

    When full, an arriving request with ``preempt=True`` evicts the
    *worst* current user (highest priority value, most recent tie-break)
    if that user's priority is strictly worse than the newcomer's.  The
    victim's process receives an :class:`~repro.simkit.Interrupt` whose
    cause is a :class:`Preempted` record.
    """

    __slots__ = ()

    request_cls = PreemptiveRequest

    def request(self, priority: int = 0, preempt: bool = True  # type: ignore[override]
                ) -> PreemptiveRequest:
        return PreemptiveRequest(self, priority, preempt)

    def _do_request(self, request: Request) -> None:
        if (len(self.users) >= self._capacity
                and getattr(request, "preempt", False)):
            # Find the worst current user (largest key sorts last).
            victim = max(self.users, key=lambda r: getattr(r, "key", (0, 0)))
            if getattr(victim, "key", (0, 0)) > request.key:  # type: ignore[attr-defined]
                self.users.remove(victim)
                if victim.proc is not None and victim.proc.is_alive:
                    victim.proc.interrupt(
                        Preempted(by=request, usage_since=victim.time))
        super()._do_request(request)


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._trigger()


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._trigger()


class Container:
    """A continuous quantity with optional capacity bound.

    ``put(x)`` blocks while the container would overflow; ``get(x)`` blocks
    while fewer than ``x`` units are available.
    """

    __slots__ = ("env", "_capacity", "_level", "_put_waiters", "_get_waiters")

    def __init__(self, env, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if not (0 <= init <= capacity):
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._put_waiters: List[_ContainerPut] = []
        self._get_waiters: List[_ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> _ContainerPut:
        return _ContainerPut(self, amount)

    def get(self, amount: float) -> _ContainerGet:
        return _ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progressed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Container level={self._level}/{self._capacity}>"


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._trigger()


class _StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._get_waiters.append(self)
        store._trigger()


class Store:
    """A FIFO queue of Python objects with optional capacity bound."""

    __slots__ = ("env", "_capacity", "items", "_put_waiters", "_get_waiters")

    def __init__(self, env, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[_StorePut] = []
        self._get_waiters: List[_StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, item: Any) -> _StorePut:
        return _StorePut(self, item)

    def get(self) -> _StoreGet:
        return _StoreGet(self)

    def _match(self, get: _StoreGet) -> Optional[int]:
        """Index of the first item satisfying the get, or None."""
        if get.filter is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if get.filter(item):
                return i
        return None

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit puts while there is room.
            while self._put_waiters and len(self.items) < self._capacity:
                put = self._put_waiters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve gets in FIFO order; a blocked filter-get does not block
            # later gets that can be satisfied.
            remaining: List[_StoreGet] = []
            for get in self._get_waiters:
                idx = self._match(get)
                if idx is None:
                    remaining.append(get)
                else:
                    item = self.items.pop(idx)
                    get.succeed(item)
                    progressed = True
            self._get_waiters = remaining

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} items={len(self.items)}>"


class FilterStore(Store):
    """A :class:`Store` whose gets may specify a predicate."""

    __slots__ = ()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> _StoreGet:  # type: ignore[override]
        return _StoreGet(self, filter)
