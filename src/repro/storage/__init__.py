"""The Windows Azure (2012) storage data planes: Blob, Queue, Table.

This package contains backend-agnostic *state machines* implementing the
semantics of the three storage services the paper benchmarks.  They are
wrapped with timing/concurrency by:

* :mod:`repro.sim` — simulated clients on the DES cluster model, and
* :mod:`repro.emulator` — a thread-safe real-time local emulator.
"""

from .account import StorageAccountState
from .blob import (
    BlobProperties,
    BlobServiceState,
    BlockBlobState,
    ContainerState,
    PageBlobState,
)
from .clock import Clock, ManualClock, SimClock, WallClock
from .content import (
    BytesContent,
    CompositeContent,
    Content,
    SyntheticContent,
    ZeroContent,
    as_content,
    concat,
    random_content,
)
from .errors import (
    AccountCapacityExceededError,
    AuthenticationFailedError,
    BatchError,
    BlobNotFoundError,
    BlockNotFoundError,
    BlockTooLargeError,
    ContainerNotFoundError,
    EntityNotFoundError,
    EntityTooLargeError,
    ETagMismatchError,
    InvalidNameError,
    InvalidOperationError,
    InvalidPageRangeError,
    LeaseConflictError,
    MessageNotFoundError,
    MessageTooLargeError,
    OutOfRangeError,
    PayloadTooLargeError,
    PreconditionFailedError,
    QueueNotFoundError,
    ResourceExistsError,
    ResourceNotFoundError,
    RETRYABLE_ERRORS,
    OperationTimedOutError,
    ServerBusyError,
    StorageError,
    TransientServerError,
    TableNotFoundError,
    TooManyBlocksError,
    TooManyPropertiesError,
)
from .etag import WILDCARD_ETAG
from .limits import GB, KB, LIMITS_2010, LIMITS_2012, MB, TB, ServiceLimits
from .queue import QueueMessage, QueueServiceState, QueueState
from .table import (
    BatchOperation,
    Entity,
    QueryResult,
    TableServiceState,
    TableState,
    entity_size,
    parse_filter,
)

__all__ = [
    # account & limits
    "StorageAccountState",
    "ServiceLimits",
    "LIMITS_2012",
    "LIMITS_2010",
    "KB",
    "MB",
    "GB",
    "TB",
    # clocks
    "Clock",
    "WallClock",
    "ManualClock",
    "SimClock",
    # content
    "Content",
    "BytesContent",
    "SyntheticContent",
    "CompositeContent",
    "ZeroContent",
    "as_content",
    "concat",
    "random_content",
    # blob
    "BlobServiceState",
    "ContainerState",
    "BlockBlobState",
    "PageBlobState",
    "BlobProperties",
    # queue
    "QueueServiceState",
    "QueueState",
    "QueueMessage",
    # table
    "TableServiceState",
    "TableState",
    "Entity",
    "entity_size",
    "QueryResult",
    "BatchOperation",
    "parse_filter",
    # etag
    "WILDCARD_ETAG",
    # errors
    "StorageError",
    "ServerBusyError",
    "TransientServerError",
    "OperationTimedOutError",
    "RETRYABLE_ERRORS",
    "ResourceNotFoundError",
    "ContainerNotFoundError",
    "BlobNotFoundError",
    "QueueNotFoundError",
    "TableNotFoundError",
    "EntityNotFoundError",
    "MessageNotFoundError",
    "ResourceExistsError",
    "PreconditionFailedError",
    "ETagMismatchError",
    "InvalidNameError",
    "InvalidOperationError",
    "PayloadTooLargeError",
    "MessageTooLargeError",
    "EntityTooLargeError",
    "BlockTooLargeError",
    "TooManyBlocksError",
    "TooManyPropertiesError",
    "InvalidPageRangeError",
    "BlockNotFoundError",
    "OutOfRangeError",
    "LeaseConflictError",
    "AccountCapacityExceededError",
    "AuthenticationFailedError",
    "BatchError",
]
