"""A storage account: the unit of capacity and scalability targets.

One account owns a blob service, a queue service and a table service and
tracks total stored bytes against the 100 TB account limit the paper quotes.
The account is purely the *data plane*; throttling against the per-second
scalability targets (5,000 tx/s, 3 GB/s, …) is enforced by the cluster
model (:mod:`repro.cluster`) which wraps these state machines with timing.
"""

from __future__ import annotations

from typing import Optional

from .blob import BlobServiceState
from .clock import Clock, ManualClock
from .errors import AccountCapacityExceededError
from .limits import LIMITS_2012, ServiceLimits
from .naming import validate_account_name
from .queue import QueueServiceState
from .table import TableServiceState

__all__ = ["StorageAccountState"]


class StorageAccountState:
    """Data-plane state of one storage account (blob + queue + table)."""

    def __init__(self, name: str, clock: Optional[Clock] = None,
                 limits: ServiceLimits = LIMITS_2012, *,
                 fifo_jitter_seed: Optional[int] = None) -> None:
        self.name = validate_account_name(name)
        self.clock: Clock = clock if clock is not None else ManualClock()
        self.limits = limits
        self._bytes_used = 0
        self.blobs = BlobServiceState(self.clock, limits, account=self)
        self.queues = QueueServiceState(
            self.clock, limits, account=self, fifo_jitter_seed=fifo_jitter_seed
        )
        self.tables = TableServiceState(self.clock, limits, account=self)

    # -- capacity accounting ------------------------------------------------
    @property
    def bytes_used(self) -> int:
        """Bytes currently stored across all three services."""
        return self._bytes_used

    def adjust_usage(self, delta: int) -> None:
        """Apply a change in stored bytes, enforcing the account capacity.

        Raises :class:`AccountCapacityExceededError` (and leaves usage
        unchanged) if the new total would exceed the 100 TB account limit.
        """
        new_total = self._bytes_used + delta
        if new_total > self.limits.account_capacity_bytes:
            raise AccountCapacityExceededError(
                f"account {self.name!r} would store {new_total} B, exceeding "
                f"the {self.limits.account_capacity_bytes} B capacity"
            )
        self._bytes_used = max(0, new_total)

    def recompute_usage(self) -> int:
        """Recount stored bytes from the services (diagnostic/invariant)."""
        return (self.blobs.total_bytes()
                + self.queues.total_bytes()
                + self.tables.total_bytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<StorageAccountState {self.name!r} "
                f"bytes_used={self._bytes_used}>")
