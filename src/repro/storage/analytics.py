"""Windows Azure Storage Analytics (August 2011), as instrumentation.

Storage Analytics shipped right before the paper's measurement window: the
service could log every request and aggregate hourly capacity/transaction
metrics.  This module reproduces that shape as an opt-in observer over the
simulated fabric — benchmark runs can be audited the way a 2012 operator
would have audited them, and the metrics tables give the repo's own
dashboards something faithful to read.

* :class:`RequestLog` — the per-request log (operation, target, payload
  size, end-to-end and server latency, HTTP-ish status).
* :class:`MetricsAggregator` — hourly rollups per service and operation:
  request counts, error counts, availability, average latencies, ingress
  and egress bytes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "RequestRecord",
    "RequestLog",
    "HourlyMetrics",
    "MetricsAggregator",
    "attach_analytics",
    "ResilienceSummary",
    "resilience_summary",
]


@dataclass(frozen=True)
class RequestRecord:
    """One logged storage request (one line of the 2011 $logs format)."""

    time: float
    service: str
    operation: str
    partition: str
    nbytes: int
    end_to_end_latency: float
    server_latency: float
    status_code: int
    error_code: str = ""
    #: Direction of the payload: writes are account ingress, reads egress.
    is_write: bool = False

    @property
    def ok(self) -> bool:
        return self.status_code < 400

    @property
    def throttled(self) -> bool:
        return self.status_code == 503


class RequestLog:
    """Append-only request log with simple query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._records: List[RequestRecord] = []
        self.capacity = capacity
        self.dropped = 0

    def append(self, record: RequestRecord) -> None:
        if self.capacity is not None and len(self._records) >= self.capacity:
            # Like the real service's retention limit: oldest entries go.
            self._records.pop(0)
            self.dropped += 1
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(self, *, service: Optional[str] = None,
                operation: Optional[str] = None,
                since: float = float("-inf"),
                until: float = float("inf")) -> List[RequestRecord]:
        """Filtered view of the log."""
        out = []
        for r in self._records:
            if service is not None and r.service != service:
                continue
            if operation is not None and r.operation != operation:
                continue
            if not (since <= r.time < until):
                continue
            out.append(r)
        return out

    def error_rate(self, **filters) -> float:
        records = self.records(**filters)
        if not records:
            return 0.0
        return sum(1 for r in records if not r.ok) / len(records)


@dataclass
class HourlyMetrics:
    """One hour's rollup for one (service, operation) pair."""

    hour: int
    service: str
    operation: str
    total_requests: int = 0
    total_errors: int = 0
    total_throttles: int = 0
    total_bytes: int = 0
    #: Payload bytes split by direction (ingress = writes, egress = reads);
    #: ``total_ingress + total_egress == total_bytes`` always holds.
    total_ingress: int = 0
    total_egress: int = 0
    _latency_sum: float = 0.0
    _server_latency_sum: float = 0.0

    def observe(self, record: RequestRecord) -> None:
        self.total_requests += 1
        if not record.ok:
            self.total_errors += 1
        if record.throttled:
            self.total_throttles += 1
        self.total_bytes += record.nbytes
        if record.is_write:
            self.total_ingress += record.nbytes
        else:
            self.total_egress += record.nbytes
        self._latency_sum += record.end_to_end_latency
        self._server_latency_sum += record.server_latency

    @property
    def availability(self) -> float:
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.total_errors / self.total_requests

    @property
    def average_latency(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self._latency_sum / self.total_requests

    @property
    def average_server_latency(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self._server_latency_sum / self.total_requests


class MetricsAggregator:
    """Hourly metrics rollups keyed by (hour, service, operation)."""

    def __init__(self, hour_seconds: float = 3600.0) -> None:
        if hour_seconds <= 0:
            raise ValueError("hour_seconds must be > 0")
        self.hour_seconds = hour_seconds
        self._cells: Dict[Tuple[int, str, str], HourlyMetrics] = {}

    def observe(self, record: RequestRecord) -> None:
        hour = int(record.time // self.hour_seconds)
        for op_key in (record.operation, "*"):
            key = (hour, record.service, op_key)
            cell = self._cells.get(key)
            if cell is None:
                cell = HourlyMetrics(hour, record.service, op_key)
                self._cells[key] = cell
            cell.observe(record)

    def cell(self, hour: int, service: str,
             operation: str = "*") -> Optional[HourlyMetrics]:
        return self._cells.get((hour, service, operation))

    def hours(self) -> List[int]:
        return sorted({h for h, _, _ in self._cells})

    def services(self) -> List[str]:
        """Service names that have observed any traffic."""
        return sorted({s for _, s, _ in self._cells})

    def service_totals(self, service: str) -> HourlyMetrics:
        """All-hours aggregate for one service."""
        total = HourlyMetrics(-1, service, "*")
        for (h, s, op), cell in self._cells.items():
            if s == service and op == "*":
                total.total_requests += cell.total_requests
                total.total_errors += cell.total_errors
                total.total_throttles += cell.total_throttles
                total.total_bytes += cell.total_bytes
                total.total_ingress += cell.total_ingress
                total.total_egress += cell.total_egress
                total._latency_sum += cell._latency_sum
                total._server_latency_sum += cell._server_latency_sum
        return total


def attach_analytics(target, *, log: Optional[RequestLog] = None,
                     metrics: Optional[MetricsAggregator] = None
                     ) -> Tuple[RequestLog, MetricsAggregator]:
    """Instrument a backend in place; returns ``(log, metrics)``.

    ``target`` is anything exposing an operation ``pipeline`` — a
    :class:`~repro.cluster.model.StorageCluster`, a
    :class:`~repro.sim.clients.SimStorageAccount`, or an
    :class:`~repro.emulator.clients.EmulatorAccount`.  An
    :class:`~repro.pipeline.interceptors.AnalyticsInterceptor` is inserted
    ahead of the fault stage, so every operation — successes, throttle
    rejections, injected faults, timeouts — is logged and aggregated,
    exactly as the August 2011 Storage Analytics release would have.
    """
    # Imported here, not at module level: repro.pipeline depends on this
    # module for the record types, and layering flows pipeline -> storage.
    from ..pipeline.interceptors import AnalyticsInterceptor

    log = log if log is not None else RequestLog()
    metrics = metrics if metrics is not None else MetricsAggregator()
    pipeline = getattr(target, "pipeline", None)
    if pipeline is None:
        raise TypeError(
            f"attach_analytics needs an object with an operation pipeline "
            f"(StorageCluster, SimStorageAccount, or EmulatorAccount); "
            f"got {target!r}")
    pipeline.add(AnalyticsInterceptor(log, metrics), before="faults")
    return log, metrics


@dataclass(frozen=True)
class ResilienceSummary:
    """Observed availability plus per-policy retry accounting for one run.

    Ties together the three instrumentation layers of a robustness
    experiment: Storage Analytics (what the service observed), the retry
    policy's :class:`~repro.resilience.RetryStats` (what the client paid),
    and the fault plan's occurrence counts (what was injected).
    """

    policy: str
    #: Client-side attempts (first tries + retries).
    attempts: int
    #: Back-off sleeps taken.
    retries: int
    #: Retryable failures surfaced to the application.
    giveups: int
    #: Total simulated seconds slept between attempts.
    total_backoff: float
    #: attempts / logical ops — the paper's 1.0 means "no retry storm".
    retry_amplification: float
    #: Observed availability per service, from the analytics rollups.
    availability: Dict[str, float]
    #: Injected fault occurrences per fault kind (empty without a plan).
    faults_injected: Dict[str, int]
    #: Circuit-breaker trips (0 without a breaker).
    breaker_trips: int = 0

    def to_text(self) -> str:
        avail = ", ".join(f"{s}={v:.3f}" for s, v in
                          sorted(self.availability.items())) or "n/a"
        faults = ", ".join(f"{k}={v}" for k, v in
                           sorted(self.faults_injected.items())) or "none"
        return (f"policy={self.policy} attempts={self.attempts} "
                f"retries={self.retries} giveups={self.giveups} "
                f"backoff={self.total_backoff:.1f}s "
                f"amplification={self.retry_amplification:.3f} "
                f"availability[{avail}] faults[{faults}] "
                f"trips={self.breaker_trips}")


def resilience_summary(metrics: MetricsAggregator, *, policy=None,
                       plan=None, breaker=None) -> ResilienceSummary:
    """Fold a run's resilience counters into one reportable record.

    ``policy`` is a :class:`repro.resilience.RetryPolicy` (or anything
    with a compatible ``stats``), ``plan`` a
    :class:`repro.faults.FaultPlan`, ``breaker`` a
    :class:`repro.resilience.CircuitBreaker`; each is optional.
    """
    stats = getattr(policy, "stats", None)
    availability = {
        service: metrics.service_totals(service).availability
        for service in metrics.services()
    }
    faults = {}
    if plan is not None:
        faults = {kind.value: n for kind, n in sorted(
            plan.counts.items(), key=lambda kv: kv[0].value)}
    return ResilienceSummary(
        policy=stats.policy if stats is not None else "none",
        attempts=stats.attempts if stats is not None else 0,
        retries=stats.retries if stats is not None else 0,
        giveups=stats.giveups if stats is not None else 0,
        total_backoff=stats.total_backoff if stats is not None else 0.0,
        retry_amplification=stats.amplification if stats is not None else 1.0,
        availability=availability,
        faults_injected=faults,
        breaker_trips=breaker.trips if breaker is not None else 0,
    )
