"""Shared Access Signatures (SAS), 2012-era blob flavour.

Azure's 2012 answer to delegated access: the account owner HMAC-signs a
*string-to-sign* naming a resource, a permission set and a validity window;
the bearer presents the signature with its query parameters and the service
recomputes and compares.  No token state is stored server-side — revocation
happens by rotating the account key.

This module reproduces that protocol:

* :class:`AccountKey` — a named base64 secret (accounts had ``key1``/``key2``
  to allow rotation);
* :func:`generate_sas` — build a signed :class:`SasToken` for a container
  or blob with permissions from ``rwdl`` and a validity window;
* :meth:`SasToken.authorize` — server-side validation: signature, window,
  resource scope (a container token covers its blobs), permission.

:class:`AuthorizedBlobClient` wraps an emulator blob client and enforces a
token on every call — the integration point application code would use.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Optional

from .errors import StorageError

__all__ = [
    "AccountKey",
    "SasToken",
    "SasError",
    "generate_sas",
    "AuthorizedBlobClient",
    "PERMISSION_ORDER",
]

#: Canonical permission order of the 2012 SAS format.
PERMISSION_ORDER = "rwdl"  # read, write, delete, list

_API_VERSION = "2012-02-12"


class SasError(StorageError):
    """Authentication/authorization failure (403)."""

    status_code = 403
    error_code = "AuthenticationFailed"


@dataclass(frozen=True)
class AccountKey:
    """One of a storage account's two signing keys."""

    account: str
    name: str
    secret: bytes

    @staticmethod
    def generate(account: str, name: str = "key1") -> "AccountKey":
        return AccountKey(account, name, secrets.token_bytes(32))

    @property
    def base64(self) -> str:
        return base64.b64encode(self.secret).decode()


def _canonical_resource(account: str, container: str,
                        blob: Optional[str]) -> str:
    path = f"/{account}/{container}"
    if blob:
        path += f"/{blob}"
    return path


def _string_to_sign(permissions: str, start: float, expiry: float,
                    resource: str) -> bytes:
    return "\n".join([
        permissions,
        f"{start:.3f}",
        f"{expiry:.3f}",
        resource,
        _API_VERSION,
    ]).encode()


def _sign(key: AccountKey, message: bytes) -> str:
    digest = hmac.new(key.secret, message, hashlib.sha256).digest()
    return base64.b64encode(digest).decode()


@dataclass(frozen=True)
class SasToken:
    """A signed grant: resource scope + permissions + validity window."""

    account: str
    container: str
    blob: Optional[str]       # None -> whole-container token
    permissions: str
    start: float
    expiry: float
    signature: str
    key_name: str

    # -- validation -----------------------------------------------------
    def _covers_resource(self, container: str, blob: Optional[str]) -> bool:
        if container != self.container:
            return False
        if self.blob is None:
            return True  # container scope covers every blob in it
        return blob == self.blob

    def authorize(self, key: AccountKey, *, container: str,
                  blob: Optional[str], permission: str, now: float) -> None:
        """Raise :class:`SasError` unless this token allows the access.

        ``permission`` is one of ``r``/``w``/``d``/``l``.  The service
        recomputes the signature with its copy of the key, so a tampered
        token (permissions, window, or scope) fails closed.
        """
        if key.account != self.account or key.name != self.key_name:
            raise SasError("token signed with an unknown key")
        expected = _sign(key, _string_to_sign(
            self.permissions, self.start, self.expiry,
            _canonical_resource(self.account, self.container, self.blob)))
        if not hmac.compare_digest(expected, self.signature):
            raise SasError("signature mismatch")
        if not (self.start <= now < self.expiry):
            raise SasError(
                f"token valid [{self.start:.3f}, {self.expiry:.3f}), now {now:.3f}")
        if not self._covers_resource(container, blob):
            raise SasError(
                f"token scoped to {self.container!r}/{self.blob or '*'} does "
                f"not cover {container!r}/{blob or '*'}")
        if permission not in self.permissions:
            raise SasError(
                f"permission {permission!r} not in granted {self.permissions!r}")


def generate_sas(key: AccountKey, *, container: str,
                 blob: Optional[str] = None, permissions: str,
                 start: float, expiry: float) -> SasToken:
    """Sign a SAS token with an account key.

    ``permissions`` must be a subset of ``rwdl`` in canonical order.
    """
    if not permissions:
        raise ValueError("permissions must not be empty")
    filtered = "".join(p for p in PERMISSION_ORDER if p in permissions)
    if filtered != permissions:
        raise ValueError(
            f"permissions {permissions!r} must be a subset of "
            f"{PERMISSION_ORDER!r} in canonical order")
    if expiry <= start:
        raise ValueError("expiry must be after start")
    signature = _sign(key, _string_to_sign(
        permissions, start, expiry,
        _canonical_resource(key.account, container, blob)))
    return SasToken(
        account=key.account, container=container, blob=blob,
        permissions=permissions, start=start, expiry=expiry,
        signature=signature, key_name=key.name,
    )


class AuthorizedBlobClient:
    """An emulator blob client gated by a SAS token.

    Wraps :class:`repro.emulator.EmulatorBlobClient`; every call first
    authorizes the token against the live clock, then delegates.  Only the
    operations a 2012 blob SAS could grant are exposed.
    """

    def __init__(self, account, token: SasToken, key: AccountKey) -> None:
        self._account = account
        self._inner = account.blob_client()
        self._token = token
        self._key = key

    def _authorize(self, container: str, blob: Optional[str],
                   permission: str) -> None:
        self._token.authorize(
            self._key, container=container, blob=blob,
            permission=permission, now=self._account.state.clock.now())

    # -- reads ---------------------------------------------------------------
    def download_block_blob(self, container: str, blob: str):
        self._authorize(container, blob, "r")
        return self._inner.download_block_blob(container, blob)

    def get_block(self, container: str, blob: str, index: int):
        self._authorize(container, blob, "r")
        return self._inner.get_block(container, blob, index)

    def get_page(self, container: str, blob: str, offset: int, length: int):
        self._authorize(container, blob, "r")
        return self._inner.get_page(container, blob, offset, length)

    def list_blobs(self, container: str, prefix: str = ""):
        self._authorize(container, None, "l")
        return self._inner.list_blobs(container, prefix)

    # -- writes --------------------------------------------------------------
    def put_block(self, container: str, blob: str, block_id: str, data):
        self._authorize(container, blob, "w")
        self._inner.put_block(container, blob, block_id, data)

    def put_block_list(self, container: str, blob: str, block_ids, *,
                       merge: bool = False):
        self._authorize(container, blob, "w")
        self._inner.put_block_list(container, blob, block_ids, merge=merge)

    def upload_blob(self, container: str, blob: str, data):
        self._authorize(container, blob, "w")
        self._inner.upload_blob(container, blob, data)

    def put_page(self, container: str, blob: str, offset: int, data):
        self._authorize(container, blob, "w")
        self._inner.put_page(container, blob, offset, data)

    # -- deletes -------------------------------------------------------------
    def delete_blob(self, container: str, blob: str):
        self._authorize(container, blob, "d")
        self._inner.delete_blob(container, blob)
