"""Blob service data plane (block blobs, page blobs, containers)."""

from .state import (
    BlobProperties,
    BlobServiceState,
    BlobSnapshot,
    BlockBlobState,
    ContainerState,
    PageBlobState,
)

__all__ = [
    "BlobServiceState",
    "ContainerState",
    "BlockBlobState",
    "PageBlobState",
    "BlobProperties",
    "BlobSnapshot",
]
